//! Network-lifetime estimate: the §1/§6 energy motivation made concrete.
//!
//! Every node starts with the same battery. Maintaining the topology costs
//! each node power proportional to `radiusⁿ` per unit time (it must reach
//! its farthest neighbor). The first battery to die marks the end of the
//! network's full service life. Topology control multiplies that lifetime
//! by reducing the radii — this example quantifies the factor.
//!
//! ```sh
//! cargo run --example network_lifetime
//! ```

use cbtc::core::{run_centralized, CbtcConfig, Network};
use cbtc::geom::Alpha;
use cbtc::graph::metrics::node_radii;
use cbtc::workloads::{RandomPlacement, Scenario};

fn main() {
    let scenario = Scenario::paper_default();
    let exponent = 2.0;
    let trials = 10u64;

    println!(
        "network lifetime — {} nodes, {} trials, maintenance cost ∝ radius^{exponent}\n",
        scenario.node_count, trials
    );
    println!(
        "{:<30} {:>16} {:>16}",
        "configuration", "first-death ×", "mean-drain ×"
    );

    let configs: Vec<(&str, Option<CbtcConfig>)> = vec![
        ("max power", None),
        ("basic CBTC(5π/6)", Some(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS))),
        (
            "CBTC(5π/6) + shrink-back",
            Some(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS).with_shrink_back()),
        ),
        (
            "CBTC(5π/6) all applicable",
            Some(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
        ),
        (
            "CBTC(2π/3) all optimizations",
            Some(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
        ),
    ];

    // Baseline drain: every node spends R^n per unit time.
    let generator = RandomPlacement::from_scenario(&scenario);
    for (label, config) in configs {
        let mut first_death_factor = 0.0;
        let mut mean_drain_factor = 0.0;
        for seed in 0..trials {
            let network: Network = generator.generate(seed);
            let r = network.max_range();
            let baseline_power = r.powf(exponent);
            let radii = match &config {
                None => vec![r; network.len()],
                Some(c) => {
                    let run = run_centralized(&network, c);
                    node_radii(run.final_graph(), network.layout(), r)
                }
            };
            // Lifetime until the hungriest node dies, relative to max power.
            let worst = radii
                .iter()
                .map(|rad| rad.powf(exponent))
                .fold(0.0f64, f64::max);
            first_death_factor += baseline_power / worst.max(1.0);
            let mean: f64 =
                radii.iter().map(|rad| rad.powf(exponent)).sum::<f64>() / radii.len() as f64;
            mean_drain_factor += baseline_power / mean.max(1.0);
        }
        println!(
            "{:<30} {:>15.2}x {:>15.2}x",
            label,
            first_death_factor / trials as f64,
            mean_drain_factor / trials as f64
        );
    }

    println!("\nReading the table: the *first-death* column is limited by boundary");
    println!("nodes (someone always needs a long link), while the *mean drain* shows");
    println!("the fleet-wide saving — an order of magnitude with all optimizations.");
    println!("This is the §6 observation that reducing per-node power tends to extend");
    println!("network lifetime, with the caveat that worst-case nodes improve less.");
}
