//! Network lifetime under real traffic: the §1/§6 energy motivation made
//! concrete with the `cbtc-energy` subsystem.
//!
//! Earlier revisions of this example estimated lifetime from a closed-form
//! `radiusⁿ` drain. This version simulates it: every node starts with the
//! same battery, packets flow between random pairs each epoch along
//! minimum-energy routes, and every alive node pays idle listening plus
//! maintenance beaconing at its broadcast-radius power. Nodes die, the
//! survivors reconfigure, and the network eventually partitions. The table
//! reports how much longer each CBTC configuration keeps the network
//! alive than running everyone at maximum power.
//!
//! ```sh
//! cargo run --release --example network_lifetime
//! ```

use cbtc::core::CbtcConfig;
use cbtc::energy::{lifetime_experiment, LifetimeConfig, TopologyPolicy};
use cbtc::geom::Alpha;
use cbtc::workloads::Scenario;

fn main() {
    let mut scenario = Scenario::paper_default();
    scenario.trials = 10;
    let mut config = LifetimeConfig::paper_default();
    // A tenth of the default battery keeps the example fast while the
    // factors stay representative.
    config.initial_energy /= 10.0;

    println!(
        "network lifetime — {} nodes × {} trials, {} packets/epoch, uniform traffic\n",
        scenario.node_count, scenario.trials, config.packets_per_epoch
    );
    println!(
        "{:<30} {:>16} {:>8} {:>16} {:>8}",
        "configuration", "first death", "×", "partition", "×"
    );

    let policies: Vec<(TopologyPolicy, &str)> = vec![
        (TopologyPolicy::MaxPower, "max power"),
        (
            TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)),
            "basic CBTC(5π/6)",
        ),
        (
            TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS).with_shrink_back()),
            "CBTC(5π/6) + shrink-back",
        ),
        (
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            "CBTC(5π/6) all applicable",
        ),
        (
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
            "CBTC(2π/3) all optimizations",
        ),
    ];
    let policy_list: Vec<TopologyPolicy> = policies.iter().map(|(p, _)| *p).collect();

    let results = lifetime_experiment(&scenario, &policy_list, config, 0);
    let baseline = results.first().expect("max power row").clone();
    for (agg, (_, label)) in results.iter().zip(&policies) {
        println!(
            "{:<30} {:>9.1} ±{:<5.1} {:>7.2}x {:>9.1} ±{:<5.1} {:>7.2}x",
            label,
            agg.first_death.mean,
            agg.first_death.std,
            agg.first_death.mean / baseline.first_death.mean.max(1.0),
            agg.partition.mean,
            agg.partition.std,
            agg.partition.mean / baseline.partition.mean.max(1.0),
        );
    }

    println!("\nReading the table: *first death* is when the hungriest node empties —");
    println!("under max power every node pays standby at p(R), so it dies early; CBTC");
    println!("nodes only sustain their farthest kept neighbor. *Partition* is when the");
    println!("surviving topology first disconnects, ending full service. This is the");
    println!("§6 observation measured under real traffic instead of a closed form.");
}
