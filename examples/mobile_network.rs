//! A mobile ad-hoc network under the §4 reconfiguration protocol: nodes
//! roam (random waypoint), one crashes, one joins late — the NDP beacons
//! and the join/leave/angle-change rules keep the topology connectivity-
//! preserving throughout.
//!
//! ```sh
//! cargo run --example mobile_network
//! ```

use cbtc::core::protocol::GrowthConfig;
use cbtc::core::reconfig::{collect_topology, NdpConfig, ReconfigNode};
use cbtc::geom::Alpha;
use cbtc::graph::{connectivity, metrics, unit_disk::unit_disk_graph, NodeId};
use cbtc::radio::{PathLoss, Power, PowerLaw, PowerSchedule};
use cbtc::sim::{Engine, FaultConfig, SimTime};
use cbtc::workloads::{RandomPlacement, RandomWaypoint};

fn main() {
    let count = 20;
    let side = 900.0;
    let model = PowerLaw::paper_default();
    let layout = RandomPlacement::new(count, side, side, model.max_range()).generate_layout(5);

    let growth = GrowthConfig {
        alpha: Alpha::FIVE_PI_SIXTHS,
        schedule: PowerSchedule::doubling(Power::new(100.0), model.max_power()),
        ack_timeout: 3,
        model,
    };
    let ndp = NdpConfig::new(10, 3, 0.05);
    let nodes: Vec<ReconfigNode> = (0..count).map(|_| ReconfigNode::new(growth, ndp)).collect();

    // The last node joins only at t = 400.
    let mut starts = vec![SimTime::ZERO; count];
    starts[count - 1] = SimTime::new(400);

    let mut engine = Engine::with_start_times(
        layout.clone(),
        model,
        nodes,
        FaultConfig::reliable_synchronous(),
        &starts,
    );
    let mut mobility = RandomWaypoint::new(side, side, 0.5, 2.0, 20.0, count, 99);
    let mut roaming_layout = layout;

    // Crash node 3 at t = 600.
    engine.schedule_crash(NodeId::new(3), SimTime::new(600));

    println!("t      edges  avg-deg  partition-ok  reruns");
    for phase in 1..=8u64 {
        let deadline = SimTime::new(phase * 200);
        engine.run_until(deadline);

        // Roam: advance the waypoint model and push positions into the
        // engine (the radio sees the new geometry immediately; the
        // protocol finds out via beacons).
        mobility.advance(&mut roaming_layout, 40.0);
        for (id, p) in roaming_layout.iter() {
            engine.move_node(id, p);
        }
        // Let the NDP catch up with the move before measuring.
        engine.run_until(SimTime::new(phase * 200 + 150));

        let topo = collect_topology(&engine);
        // Ground truth: the unit-disk graph over live nodes.
        let mut full = unit_disk_graph(engine.layout(), model.max_range());
        for v in 0..count as u32 {
            let v = NodeId::new(v);
            if !engine.is_alive(v) || !started_by(&starts, v, engine.now()) {
                let nbrs: Vec<NodeId> = full.neighbors(v).collect();
                for w in nbrs {
                    full.remove_edge(v, w);
                }
            }
        }
        let ok = connectivity::same_partition(&topo, &full);
        let reruns: u32 = engine.nodes().iter().map(ReconfigNode::reruns).sum();
        println!(
            "{:<6} {:<6} {:<8.2} {:<13} {}",
            engine.now(),
            topo.edge_count(),
            metrics::average_degree(&topo),
            if ok { "yes" } else { "lagging" },
            reruns,
        );
    }
    println!("\n(\"lagging\" is expected transiently right after a move, before the");
    println!("next beacon round detects it — §4 guarantees convergence once the");
    println!("topology stabilizes, which the final rows demonstrate.)");
}

fn started_by(starts: &[SimTime], v: NodeId, now: SimTime) -> bool {
    starts[v.index()] <= now
}
