//! Walks through the paper's two exact constructions:
//!
//! * **Example 2.1 / Figure 2** — the neighbor relation `N_α` is not
//!   symmetric, which is why `E_α` must take the symmetric closure;
//! * **Theorem 2.4 / Figure 5** — for `α = 5π/6 + ε`, `CBTC(α)` can
//!   disconnect a connected network, proving the 5π/6 threshold tight.
//!
//! ```sh
//! cargo run --example paper_constructions
//! ```

use cbtc::core::{run_basic, Network};
use cbtc::geom::constructions::{Example21, Theorem24};
use cbtc::geom::Alpha;
use cbtc::graph::{traversal, Layout, NodeId};

fn main() {
    example_2_1();
    println!();
    theorem_2_4();
}

fn example_2_1() {
    println!("=== Example 2.1 (Figure 2): N_α is not symmetric ===\n");
    let alpha = Alpha::FIVE_PI_SIXTHS;
    let ex = Example21::new(500.0, alpha).expect("valid parameters");
    println!("α = {alpha}, ε = {:.5} rad, R = {}", ex.epsilon, ex.r);
    for (name, p) in [
        ("u0", ex.u0),
        ("u1", ex.u1),
        ("u2", ex.u2),
        ("u3", ex.u3),
        ("v ", ex.v),
    ] {
        println!("  {name} at ({:8.2}, {:8.2})", p.x, p.y);
    }

    let network = Network::with_paper_radio(Layout::new(ex.points()));
    let outcome = run_basic(&network, alpha);
    let u0 = NodeId::new(Example21::U0 as u32);
    let v = NodeId::new(Example21::V as u32);

    println!("\nAfter running CBTC(α):");
    println!(
        "  N_α(u0) = {:?}  (v is NOT discovered: u0 stops at radius {:.1} < R)",
        outcome.view(u0).neighbor_ids(),
        outcome.view(u0).grow_radius
    );
    println!(
        "  N_α(v)  = {:?}  (v is a boundary node at max power)",
        outcome.view(v).neighbor_ids()
    );
    assert!(outcome.view(v).discovered(u0));
    assert!(!outcome.view(u0).discovered(v));
    println!("\n  ⇒ (v, u0) ∈ N_α but (u0, v) ∉ N_α — the relation is asymmetric.");
    println!(
        "  The symmetric closure E_α restores the edge: {}",
        outcome.symmetric_closure().has_edge(u0, v)
    );
}

fn theorem_2_4() {
    println!("=== Theorem 2.4 (Figure 5): α > 5π/6 can disconnect ===\n");
    let eps = 0.1;
    let t = Theorem24::new(500.0, eps).expect("valid parameters");
    println!(
        "α = 5π/6 + {eps} = {:.4} rad, two 4-node clusters, d(u0, v0) = R exactly",
        t.alpha.radians()
    );

    let network = Network::with_paper_radio(Layout::new(t.points()));
    let full = network.max_power_graph();
    println!(
        "\nMax-power graph G_R: {} components (connected: the only bridge is u0–v0)",
        traversal::component_count(&full)
    );

    let broken = run_basic(&network, t.alpha);
    let g_alpha = broken.symmetric_closure();
    println!(
        "G_α with α = 5π/6 + ε: {} components — the bridge is GONE.",
        traversal::component_count(&g_alpha)
    );
    println!(
        "  u0 terminated at radius {:.1} < 500: its cones were covered by u1, u2, u3,",
        broken.view(NodeId::new(0)).grow_radius
    );
    println!("  so it never grew far enough to find v0.");
    assert_eq!(traversal::component_count(&g_alpha), 2);

    let tight = run_basic(&network, Alpha::FIVE_PI_SIXTHS);
    println!(
        "\nSame layout at exactly α = 5π/6: {} component(s) — Theorem 2.1 holds.",
        traversal::component_count(&tight.symmetric_closure())
    );
    assert_eq!(traversal::component_count(&tight.symmetric_closure()), 1);
}
