//! Quickstart: run CBTC on one of the paper's random networks and compare
//! the basic algorithm with each optimization stage.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cbtc::core::{run_centralized, CbtcConfig, Network};
use cbtc::geom::Alpha;
use cbtc::graph::{metrics, traversal};
use cbtc::workloads::{RandomPlacement, Scenario};

fn main() {
    // The paper's setup: 100 nodes, 1500×1500 field, max radius 500.
    let scenario = Scenario::paper_default();
    let network: Network = RandomPlacement::from_scenario(&scenario).generate(2026);
    let full = network.max_power_graph();
    let r = network.max_range();

    println!("network: {} nodes, R = {}", network.len(), r);
    println!(
        "max power graph: {} edges, avg degree {:.1}, {} component(s)\n",
        full.edge_count(),
        metrics::average_degree(&full),
        traversal::component_count(&full),
    );

    println!(
        "{:<34} {:>10} {:>12} {:>12}",
        "configuration", "avg degree", "avg radius", "connected?"
    );
    for (label, config) in [
        ("basic CBTC(5π/6)", CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)),
        ("basic CBTC(2π/3)", CbtcConfig::new(Alpha::TWO_PI_THIRDS)),
        (
            "CBTC(5π/6) + shrink-back",
            CbtcConfig::new(Alpha::FIVE_PI_SIXTHS).with_shrink_back(),
        ),
        (
            "CBTC(2π/3) all optimizations",
            CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS),
        ),
        (
            "CBTC(5π/6) all applicable",
            CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS),
        ),
    ] {
        let run = run_centralized(&network, &config);
        let g = run.final_graph();
        let preserved = run.preserves_connectivity_of(&full);
        println!(
            "{:<34} {:>10.2} {:>12.1} {:>12}",
            label,
            metrics::average_degree(g),
            metrics::average_radius(g, network.layout(), r),
            if preserved { "yes" } else { "NO!" },
        );
        assert!(preserved, "Theorem 2.1/3.x violated — this is a bug");
    }

    println!("\nEvery configuration preserved the connectivity of the max-power graph,");
    println!("as Theorems 2.1, 3.1, 3.2 and 3.6 guarantee.");
}
