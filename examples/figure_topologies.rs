//! Renders one random network under the eight configurations of the
//! paper's Figure 6 as SVG files in `out/figure6/`.
//!
//! ```sh
//! cargo run --example figure_topologies
//! ```

use std::fs;
use std::path::Path;

use cbtc::core::{run_centralized, CbtcConfig, Network};
use cbtc::geom::Alpha;
use cbtc::graph::metrics;
use cbtc::viz::{render_svg, SvgOptions};
use cbtc::workloads::{RandomPlacement, Scenario};

fn main() -> std::io::Result<()> {
    let scenario = Scenario::paper_default();
    let network: Network = RandomPlacement::from_scenario(&scenario).generate(1);
    let out_dir = Path::new("out/figure6");
    fs::create_dir_all(out_dir)?;

    let a56 = Alpha::FIVE_PI_SIXTHS;
    let a23 = Alpha::TWO_PI_THIRDS;
    let panels: Vec<(&str, String, Option<CbtcConfig>)> = vec![
        (
            "a_no_topology_control",
            "(a) no topology control".into(),
            None,
        ),
        (
            "b_basic_2pi3",
            "(b) α=2π/3, basic".into(),
            Some(CbtcConfig::new(a23)),
        ),
        (
            "c_basic_5pi6",
            "(c) α=5π/6, basic".into(),
            Some(CbtcConfig::new(a56)),
        ),
        (
            "d_shrink_2pi3",
            "(d) α=2π/3 with shrink-back".into(),
            Some(CbtcConfig::new(a23).with_shrink_back()),
        ),
        (
            "e_shrink_5pi6",
            "(e) α=5π/6 with shrink-back".into(),
            Some(CbtcConfig::new(a56).with_shrink_back()),
        ),
        (
            "f_shrink_asym_2pi3",
            "(f) α=2π/3, shrink-back + asymmetric removal".into(),
            Some(
                CbtcConfig::new(a23)
                    .with_shrink_back()
                    .with_asymmetric_removal()
                    .expect("2π/3 supports asymmetric removal"),
            ),
        ),
        (
            "g_all_5pi6",
            "(g) α=5π/6 with all applicable optimizations".into(),
            Some(CbtcConfig::all_applicable(a56)),
        ),
        (
            "h_all_2pi3",
            "(h) α=2π/3 with all optimizations".into(),
            Some(CbtcConfig::all_applicable(a23)),
        ),
    ];

    println!(
        "{:<28} {:>8} {:>10} {:>12}",
        "panel", "edges", "avg deg", "avg radius"
    );
    for (file, caption, config) in panels {
        let graph = match &config {
            None => network.max_power_graph(),
            Some(c) => {
                let run = run_centralized(&network, c);
                assert!(run.preserves_connectivity_of(&network.max_power_graph()));
                run.final_graph().clone()
            }
        };
        let options = SvgOptions {
            caption: Some(caption.clone()),
            ..SvgOptions::default()
        };
        let svg = render_svg(network.layout(), &graph, &options);
        let path = out_dir.join(format!("{file}.svg"));
        fs::write(&path, svg)?;
        println!(
            "{:<28} {:>8} {:>10.2} {:>12.1}   -> {}",
            file,
            graph.edge_count(),
            metrics::average_degree(&graph),
            metrics::average_radius(&graph, network.layout(), network.max_range()),
            path.display()
        );
    }
    println!("\nOpen the SVGs to compare with the paper's Figure 6 panels.");
    Ok(())
}
