//! Runs the *distributed* CBTC protocol of Figure 1 on the discrete-event
//! simulator — Hello broadcasts at doubling power, Acks with reception-
//! power-based estimates, the α-gap test — first on a reliable synchronous
//! channel, then on a lossy asynchronous one (§4's model).
//!
//! ```sh
//! cargo run --example distributed_protocol
//! ```

use cbtc::core::opt::shrink_back;
use cbtc::core::protocol::{collect_outcome, CbtcNode, GrowthConfig};
use cbtc::core::{run_basic, Network};
use cbtc::geom::Alpha;
use cbtc::graph::metrics;
use cbtc::radio::{PathLoss, Power, PowerSchedule};
use cbtc::sim::{Engine, FaultConfig, QuiescenceResult};
use cbtc::workloads::{RandomPlacement, Scenario};

fn main() {
    let scenario = Scenario::smoke();
    let network: Network = RandomPlacement::from_scenario(&scenario).generate(7);
    let model = *network.model();
    let alpha = Alpha::FIVE_PI_SIXTHS;

    println!(
        "{} nodes, R = {}, α = {alpha}\n",
        network.len(),
        network.max_range()
    );

    // --- Reliable synchronous channel (§2 model) -----------------------
    let config = GrowthConfig {
        alpha,
        schedule: PowerSchedule::doubling(Power::new(100.0), model.max_power()),
        ack_timeout: 3,
        model,
    };
    let nodes: Vec<CbtcNode> = (0..network.len())
        .map(|_| CbtcNode::new(config, false))
        .collect();
    let mut engine = Engine::new(
        network.layout().clone(),
        model,
        nodes,
        FaultConfig::reliable_synchronous(),
    );
    let result = engine.run_to_quiescence(1_000_000);
    assert!(matches!(result, QuiescenceResult::Quiescent(_)));

    let stats = engine.stats();
    println!("synchronous run:");
    println!("  terminated at {}", stats.last_event_time);
    println!(
        "  {} Hello broadcasts, {} Acks, {} deliveries",
        stats.broadcasts, stats.unicasts, stats.deliveries
    );
    println!("  total radiated energy: {:.2e}", stats.energy_spent);

    let distributed = shrink_back(&collect_outcome(&engine));
    let centralized = shrink_back(&run_basic(&network, alpha));
    let agree = network
        .layout()
        .node_ids()
        .all(|u| distributed.view(u).neighbor_ids() == centralized.view(u).neighbor_ids());
    println!(
        "  after shrink-back, distributed == centralized reference: {}",
        if agree { "yes" } else { "NO" }
    );
    assert!(agree);

    let g = distributed.symmetric_closure();
    println!(
        "  topology: {} edges, avg degree {:.2}, avg radius {:.1}\n",
        g.edge_count(),
        metrics::average_degree(&g),
        metrics::average_radius(&g, network.layout(), network.max_range()),
    );

    // --- Lossy asynchronous channel (§4 model) --------------------------
    let async_config = GrowthConfig {
        ack_timeout: 2 * 4 + 1, // latency up to 4 ticks each way
        ..config
    };
    let nodes: Vec<CbtcNode> = (0..network.len())
        .map(|_| CbtcNode::new(async_config, false))
        .collect();
    let mut engine = Engine::new(
        network.layout().clone(),
        model,
        nodes,
        FaultConfig::asynchronous(1, 4, 99)
            .with_loss(0.05)
            .with_duplication(0.02),
    );
    let result = engine.run_to_quiescence(1_000_000);
    assert!(matches!(result, QuiescenceResult::Quiescent(_)));
    let stats = engine.stats();
    println!("asynchronous run (latency 1–4, 5% loss, 2% duplication):");
    println!(
        "  terminated at {}; {} messages lost, {} duplicated",
        stats.last_event_time, stats.lost, stats.duplicated
    );
    let g = collect_outcome(&engine).symmetric_closure();
    println!(
        "  topology: {} edges (missing links are re-detected by the §4 beacons)",
        g.edge_count()
    );
    assert!(g.is_subgraph_of(&network.max_power_graph()));
}
