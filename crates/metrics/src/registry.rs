//! The registry and its instrument handles.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::LogHistogram;
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// A monotonic event counter.
///
/// Disabled handles (from [`MetricsRegistry::disabled`]) carry no storage
/// and every operation is a no-op — the hot-loop cost of an uninstalled
/// counter is one `Option` check.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (`0` for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A last-value (plus accumulate) gauge over `f64`.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Accumulates `delta` (a compare-exchange loop; gauges are updated
    /// at epoch granularity, not per event).
    pub fn add(&self, delta: f64) {
        let Some(cell) = &self.0 else { return };
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value (`0.0` for a disabled handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A shared handle to one registered [`LogHistogram`].
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<LogHistogram>>>);

impl Histogram {
    /// Whether this handle records anywhere (it came from an enabled
    /// registry). Callers use this to skip the wall-clock reads that
    /// produce the samples in the first place.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(hist) = &self.0 {
            hist.lock().expect("histogram poisoned").record(v);
        }
    }

    /// Folds a locally recorded shard in — the per-worker pattern: record
    /// into an owned [`LogHistogram`] with no lock traffic, merge once.
    pub fn merge_shard(&self, shard: &LogHistogram) {
        if let Some(hist) = &self.0 {
            hist.lock().expect("histogram poisoned").merge(shard);
        }
    }

    /// Runs `f`; when enabled, records the elapsed nanoseconds.
    #[inline]
    pub fn timed<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.0 {
            None => f(),
            Some(hist) => {
                let start = Instant::now();
                let result = f();
                let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                hist.lock().expect("histogram poisoned").record(nanos);
                result
            }
        }
    }

    /// A copy of the current histogram (empty for a disabled handle).
    pub fn load(&self) -> LogHistogram {
        self.0
            .as_ref()
            .map_or_else(LogHistogram::new, |h| h.lock().expect("poisoned").clone())
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "Histogram(disabled)"),
            Some(h) => write!(f, "Histogram({:?})", h.lock().expect("poisoned")),
        }
    }
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<LogHistogram>>>,
}

/// A cloneable handle to one shared metrics store — the form the engines
/// accept, mirroring `cbtc_trace::TraceHandle`.
///
/// The default ([`MetricsRegistry::disabled`]) registry is a no-op: every
/// instrument it hands out carries no storage, records nothing, and
/// reads no clock, so a run with metrics disabled is *bit-identical* to
/// one with no metrics code at all (the workspace property tests pin
/// this down across the churn, lifetime and phy paths). Instruments are
/// resolved by name once, at installation time — the hot loops touch
/// only the pre-resolved handles, never the name map.
///
/// # Example
///
/// ```
/// use cbtc_metrics::MetricsRegistry;
///
/// let registry = MetricsRegistry::enabled();
/// let events = registry.counter("service.events");
/// let latency = registry.histogram("service.nanos");
/// events.inc();
/// latency.record(1_250);
/// let snap = registry.snapshot();
/// assert_eq!(snap.counter("service.events"), Some(1));
/// assert_eq!(snap.histogram("service.nanos").unwrap().count, 1);
/// ```
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<Store>>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// The no-op registry (the default): hands out disabled instruments.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// A live registry backed by shared storage.
    pub fn enabled() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(Store::default()))),
        }
    }

    /// Whether instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter registered under `name` (created on first use;
    /// subsequent calls share the same cell).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .lock()
                    .expect("metrics store poisoned")
                    .counters
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .lock()
                    .expect("metrics store poisoned")
                    .gauges
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .lock()
                    .expect("metrics store poisoned")
                    .histograms
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// A point-in-time copy of every registered instrument, names sorted
    /// — deterministic for a deterministic run. A disabled registry
    /// snapshots to the empty [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let store = inner.lock().expect("metrics store poisoned");
        MetricsSnapshot {
            counters: store
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: store
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: store
                .histograms
                .iter()
                .map(|(k, h)| HistogramSnapshot::of(k, &h.lock().expect("histogram poisoned")))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_no_op() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("x");
        let g = registry.gauge("y");
        let h = registry.histogram("z");
        c.add(7);
        g.set(1.5);
        g.add(2.5);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert!(!h.enabled());
        assert!(h.load().is_empty());
        assert_eq!(h.timed(|| 42), 42);
        assert_eq!(registry.snapshot(), MetricsSnapshot::default());
        assert_eq!(
            MetricsRegistry::default().snapshot(),
            MetricsSnapshot::default(),
            "the default registry is the disabled one"
        );
    }

    #[test]
    fn instruments_share_storage_by_name() {
        let registry = MetricsRegistry::enabled();
        registry.counter("events").add(2);
        registry.counter("events").inc();
        assert_eq!(registry.counter("events").get(), 3);
        registry.gauge("cores").set(8.0);
        registry.gauge("cores").add(-2.0);
        assert_eq!(registry.gauge("cores").get(), 6.0);
        registry.histogram("lat").record(10);
        registry.histogram("lat").record(30);
        let h = registry.histogram("lat").load();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn timed_records_positive_nanos_when_enabled() {
        let registry = MetricsRegistry::enabled();
        let h = registry.histogram("t");
        assert!(h.enabled());
        let out = h.timed(|| std::hint::black_box((0..1000).sum::<u64>()));
        assert_eq!(out, 499_500);
        let loaded = h.load();
        assert_eq!(loaded.count(), 1);
        assert!(loaded.max() > 0);
    }

    #[test]
    fn merge_shard_folds_local_recordings() {
        let registry = MetricsRegistry::enabled();
        let h = registry.histogram("busy");
        let mut shard = LogHistogram::new();
        shard.record(5);
        shard.record(500);
        h.merge_shard(&shard);
        let loaded = h.load();
        assert_eq!(loaded.count(), 2);
        assert_eq!(loaded.min(), 5);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let registry = MetricsRegistry::enabled();
        registry.counter("b.count").inc();
        registry.counter("a.count").add(4);
        registry.gauge("g").set(2.25);
        registry.histogram("h").record(64);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.count".to_owned(), 4), ("b.count".to_owned(), 1)]
        );
        assert_eq!(snap.gauges, vec![("g".to_owned(), 2.25)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].name, "h");
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.counter("a.count"), Some(4));
        assert_eq!(snap.counter("missing"), None);
        assert!(snap.histogram("h").is_some());
    }

    #[test]
    fn clones_share_the_store() {
        let registry = MetricsRegistry::enabled();
        let clone = registry.clone();
        clone.counter("shared").inc();
        assert_eq!(registry.counter("shared").get(), 1);
    }
}
