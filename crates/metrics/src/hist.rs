//! The log-bucketed latency histogram.

use std::fmt;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantization
/// error of any recorded value by `2^-SUB_BITS` (≈ 3.1%).
const SUB_BITS: u32 = 5;

/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: the linear range
/// `0..SUB` plus `64 - SUB_BITS` octaves of `SUB` sub-buckets each.
const BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// An HDR-style log-bucketed histogram of `u64` samples (nanoseconds, set
/// sizes, counts — any non-negative magnitude).
///
/// Values below `32` land in exact unit-width buckets; above, each
/// power-of-two octave is split into 32 linear sub-buckets, so every
/// quantile is exact to within one sub-bucket (≤ 3.1% relative). The
/// recorded maximum and minimum are tracked exactly and quantiles are
/// clamped to them, so [`LogHistogram::max`] and the `q = 1.0` quantile
/// are always exact. Storage is one fixed `Vec` of bucket counts,
/// allocated at construction — recording is two adds and a `min`/`max`,
/// never an allocation.
///
/// Histograms [`merge`](LogHistogram::merge): per-worker shards recorded
/// independently and merged afterwards are bit-identical to one histogram
/// that saw every sample.
///
/// # Example
///
/// ```
/// use cbtc_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30] {
///     h.record(v);
/// }
/// assert_eq!(h.quantile(0.5), 20);
/// assert_eq!(h.max(), 30);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    /// Saturating sum of all recorded values (for the mean).
    sum: u64,
    /// Exact extremes; `min > max` encodes "empty".
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = (63 - v.leading_zeros()) - SUB_BITS;
        ((exp as usize + 1) << SUB_BITS) + ((v >> exp) as usize & (SUB - 1))
    }
}

/// The smallest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = (i >> SUB_BITS) as u32 - 1;
        ((SUB + (i & (SUB - 1))) as u64) << exp
    }
}

/// The largest value mapping to bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = (i >> SUB_BITS) as u32 - 1;
        // Parenthesized so the top bucket (low = 2^64 - 2^exp) reaches
        // u64::MAX without the intermediate sum overflowing.
        bucket_low(i) + ((1u64 << exp) - 1)
    }
}

impl LogHistogram {
    /// An empty histogram (one bucket-array allocation, nothing after).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram (a per-worker shard) into this one —
    /// bit-identical to having recorded the other's samples here.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]` (nearest-rank over the bucket
    /// counts): the upper bound of the bucket holding the rank, clamped
    /// to the exact recorded extremes. Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Rebuilds a histogram from its serialized form — the
    /// [`nonzero_buckets`](LogHistogram::nonzero_buckets) list plus the
    /// exact aggregates. The round trip `restore(h.nonzero_buckets(),
    /// h.sum(), h.min(), h.max()) == h` is exact for any histogram (an
    /// empty one is encoded by an empty bucket list), so snapshots taken
    /// on different shards can be merged *after* serialization with the
    /// same bit-identical guarantee as [`merge`](LogHistogram::merge) —
    /// the mechanism the sharded serve report uses to combine per-stream
    /// latency distributions.
    ///
    /// Each `(value, count)` pair is credited to the bucket containing
    /// `value`; `min`/`max` are trusted as the exact recorded extremes
    /// (ignored when the bucket list is empty).
    pub fn restore(buckets: &[(u64, u64)], sum: u64, min: u64, max: u64) -> Self {
        let mut h = LogHistogram::new();
        for &(low, c) in buckets {
            h.counts[bucket_index(low)] += c;
            h.count += c;
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// The non-empty buckets as `(lowest value of bucket, count)`, in
    /// ascending value order — the compact serialized form.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_ordered() {
        // Every bucket's low is its own index's low, highs touch the next
        // low, and the value→bucket map is monotone.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_low(i)), i, "low of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high of bucket {i}");
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        // The last bucket covers the top of the u64 range.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        // Exact unit buckets below the sub-bucket count.
        for v in 0..SUB as u64 {
            assert_eq!(bucket_low(bucket_index(v)), v);
            assert_eq!(bucket_high(bucket_index(v)), v);
        }
        // Spot checks at octave boundaries.
        for v in [31u64, 32, 33, 63, 64, 65, 127, 128, 1 << 20, (1 << 20) + 1] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "{v}");
        }
    }

    #[test]
    fn small_values_have_exact_quantiles() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.p50(), 20);
        assert_eq!(h.quantile(1.0), 30);
        assert_eq!(h.max(), 30);
        assert_eq!(h.min(), 10);
        assert_eq!(h.sum(), 60);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_one_subbucket() {
        // 1..=10_000 recorded once each: every quantile must land within
        // one sub-bucket (≤ 2^-5 relative) of the true order statistic.
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for q in [0.01f64, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = ((q * 10_000.0).ceil() as u64).clamp(1, 10_000);
            let approx = h.quantile(q);
            let err = approx.abs_diff(exact) as f64 / exact as f64;
            assert!(
                err <= 1.0 / SUB as f64,
                "q={q}: exact {exact}, got {approx} (err {err})"
            );
            assert!(approx >= exact, "bucket-high convention never undershoots");
        }
        assert_eq!(h.quantile(1.0), 10_000, "max is exact");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LogHistogram::new();
        let mut state = 9u64;
        for _ in 0..5_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(state >> 40);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
        }
        assert_eq!(*vals.last().unwrap(), h.max());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples: Vec<u64> = (0..2_000u64).map(|i| i * i % 77_777).collect();
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "merged shards equal the single histogram");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn record_n_and_extremes() {
        let mut h = LogHistogram::new();
        h.record_n(1_000, 99);
        h.record(5_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 5_000_000);
        // p99 is still in the 1_000 bucket (rank 99 of 100)…
        let p99 = h.p99();
        assert!((1_000..1_100).contains(&p99), "p99 = {p99}");
        // …and the top quantile reports the exact outlier.
        assert_eq!(h.quantile(1.0), 5_000_000);
        h.record_n(7, 0);
        assert_eq!(h.count(), 100, "recording zero samples is a no-op");
    }

    #[test]
    fn restore_round_trips_exactly() {
        let mut h = LogHistogram::new();
        let mut state = 3u64;
        for _ in 0..3_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(state >> 34);
        }
        h.record(0);
        h.record(u64::MAX / 5);
        let back = LogHistogram::restore(&h.nonzero_buckets(), h.sum(), h.min(), h.max());
        assert_eq!(back, h, "serialize→restore is the identity");
        // Empty restores empty regardless of the (ignored) aggregates.
        let empty = LogHistogram::restore(&[], 123, 45, 6);
        assert_eq!(empty, LogHistogram::new());
    }

    #[test]
    fn restored_shards_merge_like_live_ones() {
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 0..4_000u64 {
            let x = v * v % 99_991;
            whole.record(x);
            if v % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        let mut merged = LogHistogram::restore(&a.nonzero_buckets(), a.sum(), a.min(), a.max());
        merged.merge(&LogHistogram::restore(
            &b.nonzero_buckets(),
            b.sum(),
            b.min(),
            b.max(),
        ));
        assert_eq!(merged, whole, "post-serialization merge is bit-identical");
    }

    #[test]
    fn nonzero_buckets_round_trip_bucket_identity() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 31, 32, 1_000, 123_456_789] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        for &(low, _) in &buckets {
            assert_eq!(
                bucket_low(bucket_index(low)),
                low,
                "a bucket low is its own bucket's low"
            );
        }
        let lows: Vec<u64> = buckets.iter().map(|&(l, _)| l).collect();
        assert!(lows.windows(2).all(|w| w[0] < w[1]), "ascending");
    }
}
