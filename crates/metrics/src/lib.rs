//! Allocation-free runtime metrics for the CBTC workspace: monotonic
//! counters, `f64` gauges, and log-bucketed (HDR-style) latency
//! histograms with exact min/max, nearest-rank p50/p99/p999, and
//! mergeable per-worker shards, behind a cloneable [`MetricsRegistry`]
//! handle that is a strict no-op when disabled.
//!
//! The design contract mirrors `cbtc_trace::TraceHandle`: engines accept
//! a registry unconditionally, and a disabled registry hands out
//! instruments with no storage — no clock reads, no lock traffic, no
//! allocation — so metrics-on and metrics-off runs produce bit-identical
//! topologies, reports, and traces (property-tested across the churn,
//! lifetime, and phy paths). Instruments are resolved by name once at
//! installation time; hot loops only ever touch pre-resolved handles.
//!
//! # Paper map
//!
//! This crate is observability scaffolding around the reproduction of
//! *Li, Halpern, Bahl, Wang, Wattenhofer — "Analysis of a cone-based
//! distributed topology control algorithm for wireless multi-hop
//! networks" (PODC 2001)*; it measures the paper's structures rather
//! than defining new ones:
//!
//! | Paper concept | Instrumented here |
//! |---|---|
//! | §4 reconfiguration (join/leave/aChange) | per-event-kind latency histograms, affected-set sizes, cached-prefix replay vs grid-scan counters on `DeltaTopology` |
//! | §3 one-time construction | `par_map_with` worker busy time, chunk (steal) counts, detected cores / planned threads |
//! | §5 energy / lifetime experiments | per-epoch phase timings and ARQ expected-attempt totals in the lifetime engine |
//!
//! # Quantization
//!
//! [`LogHistogram`] stores 32 sub-buckets per power of two (values below
//! 32 are exact), bounding relative quantization error of any reported
//! quantile to ≤ 1/32 ≈ 3.1% while keeping the footprint fixed at ~15 KiB
//! — small enough for one private shard per worker thread, merged once
//! per fan-out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod snapshot;

pub use hist::LogHistogram;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
