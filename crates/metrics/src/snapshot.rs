//! Point-in-time serializable views of a registry.

use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;

/// The summary of one histogram at snapshot time.
///
/// `buckets` lists only occupied buckets as `(bucket_low, count)` pairs,
/// so the full distribution survives serialization without the ~2k
/// zero-bucket dead weight; percentiles are precomputed so consumers
/// (bench JSON, trace analyzers) never need the bucket layout.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered instrument name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest recorded sample (`0` when empty).
    pub min: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Median (nearest-rank over log buckets, ≤3.1% relative error).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Occupied buckets as `(bucket_low, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Summarizes `hist` under `name`.
    pub fn of(name: &str, hist: &LogHistogram) -> Self {
        HistogramSnapshot {
            name: name.to_owned(),
            count: hist.count(),
            sum: hist.sum(),
            min: hist.min(),
            max: hist.max(),
            p50: hist.p50(),
            p99: hist.p99(),
            p999: hist.p999(),
            buckets: hist.nonzero_buckets(),
        }
    }

    /// Arithmetic mean of the recorded samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Rebuilds the full histogram this snapshot summarized. Exact —
    /// [`LogHistogram::restore`] recovers every bucket count plus the
    /// exact sum/min/max, so quantiles of the rebuilt histogram equal
    /// quantiles of the original.
    pub fn to_histogram(&self) -> LogHistogram {
        LogHistogram::restore(&self.buckets, self.sum, self.min, self.max)
    }

    /// Folds `other` (a shard of the same logical series) into this
    /// snapshot: bucket counts add, `sum` saturates, extremes widen, and
    /// every percentile is recomputed over the merged distribution —
    /// bit-identical to snapshotting one histogram that saw both shards'
    /// samples. The name stays `self`'s.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut hist = self.to_histogram();
        hist.merge(&other.to_histogram());
        *self = HistogramSnapshot::of(&self.name, &hist);
    }
}

/// A point-in-time copy of every instrument in a [`MetricsRegistry`],
/// sorted by name — the unit that lands in `BENCH_reconfig.json` and,
/// as a final JSONL record, in schema-v3 traces.
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, ascending by name.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram summary, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no instrument was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter total registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge value registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram summary registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds another shard's snapshot into this one, by instrument name:
    ///
    /// * **counters** add — totals across shards;
    /// * **gauges** keep the maximum — every gauge in this workspace is
    ///   a level (cores detected, threads planned) where the widest
    ///   shard is the honest aggregate, not a sum of duplicates;
    /// * **histograms** bucket-merge exactly ([`HistogramSnapshot::merge`]),
    ///   with every percentile recomputed over the union.
    ///
    /// Instruments present in only one shard carry over unchanged; the
    /// result stays sorted by name. This is how the multi-stream serve
    /// report combines per-stream registry shards into one aggregate.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.gauges[i].1 = self.gauges[i].1.max(*v),
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for hist in &other.histograms {
            match self.histograms.binary_search_by(|h| h.name.cmp(&hist.name)) {
                Ok(i) => self.histograms[i].merge(hist),
                Err(i) => self.histograms.insert(i, hist.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(values: &[u64]) -> MetricsSnapshot {
        let mut hist = LogHistogram::new();
        for &v in values {
            hist.record(v);
        }
        MetricsSnapshot {
            counters: vec![("events".to_owned(), values.len() as u64)],
            gauges: vec![("cores".to_owned(), 8.5)],
            histograms: vec![HistogramSnapshot::of("latency", &hist)],
        }
    }

    #[test]
    fn histogram_snapshot_summarizes_faithfully() {
        let mut hist = LogHistogram::new();
        for v in [1, 2, 3, 1000, 5000] {
            hist.record(v);
        }
        let snap = HistogramSnapshot::of("x", &hist);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 6006);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 5000);
        assert_eq!(snap.p50, hist.p50());
        assert_eq!(snap.p999, hist.p999());
        assert_eq!(
            snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            5,
            "bucket counts cover every sample"
        );
        assert!((snap.mean() - 6006.0 / 5.0).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::of("e", &LogHistogram::new()).mean(), 0.0);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = sample_snapshot(&[10, 20, 30]);
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("events"), Some(3));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("cores"), Some(8.5));
        assert_eq!(snap.gauge("nope"), None);
        assert_eq!(snap.histogram("latency").unwrap().count, 3);
        assert!(snap.histogram("nope").is_none());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot(&[1, 31, 32, 33, 1_000_000, u64::MAX / 3]);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_merge_matches_single_registry() {
        // Two shards recorded separately, snapshotted, merged — against
        // one snapshot that saw everything.
        let mut whole = LogHistogram::new();
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        for v in 0..1_000u64 {
            let x = (v * 37) % 4_096;
            whole.record(x);
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        let mut left = MetricsSnapshot {
            counters: vec![("both".into(), 10), ("left_only".into(), 1)],
            gauges: vec![("cores".into(), 2.0)],
            histograms: vec![HistogramSnapshot::of("lat", &a)],
        };
        let right = MetricsSnapshot {
            counters: vec![("both".into(), 32), ("right_only".into(), 5)],
            gauges: vec![("cores".into(), 8.0), ("extra".into(), 1.5)],
            histograms: vec![HistogramSnapshot::of("lat", &b)],
        };
        left.merge(&right);
        assert_eq!(left.counter("both"), Some(42), "counters add");
        assert_eq!(left.counter("left_only"), Some(1));
        assert_eq!(left.counter("right_only"), Some(5));
        assert_eq!(left.gauge("cores"), Some(8.0), "gauges keep the max");
        assert_eq!(left.gauge("extra"), Some(1.5));
        assert_eq!(
            left.histogram("lat").unwrap(),
            &HistogramSnapshot::of("lat", &whole),
            "merged histogram snapshot equals the single-registry one"
        );
        assert!(left.counters.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(left.gauges.windows(2).all(|w| w[0].0 < w[1].0));
        // to_histogram round-trips the summary exactly.
        assert_eq!(
            HistogramSnapshot::of("lat", &left.histogram("lat").unwrap().to_histogram()),
            *left.histogram("lat").unwrap()
        );
    }

    proptest::proptest! {
        #[test]
        fn snapshot_json_round_trip(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
            let snap = sample_snapshot(&values);
            let json = serde_json::to_string(&snap).expect("serialize");
            let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
            proptest::prop_assert_eq!(back, snap);
        }
    }
}
