//! Point-in-time serializable views of a registry.

use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;

/// The summary of one histogram at snapshot time.
///
/// `buckets` lists only occupied buckets as `(bucket_low, count)` pairs,
/// so the full distribution survives serialization without the ~2k
/// zero-bucket dead weight; percentiles are precomputed so consumers
/// (bench JSON, trace analyzers) never need the bucket layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered instrument name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest recorded sample (`0` when empty).
    pub min: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Median (nearest-rank over log buckets, ≤3.1% relative error).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Occupied buckets as `(bucket_low, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Summarizes `hist` under `name`.
    pub fn of(name: &str, hist: &LogHistogram) -> Self {
        HistogramSnapshot {
            name: name.to_owned(),
            count: hist.count(),
            sum: hist.sum(),
            min: hist.min(),
            max: hist.max(),
            p50: hist.p50(),
            p99: hist.p99(),
            p999: hist.p999(),
            buckets: hist.nonzero_buckets(),
        }
    }

    /// Arithmetic mean of the recorded samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every instrument in a [`MetricsRegistry`],
/// sorted by name — the unit that lands in `BENCH_reconfig.json` and,
/// as a final JSONL record, in schema-v3 traces.
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, ascending by name.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram summary, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no instrument was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter total registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge value registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram summary registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(values: &[u64]) -> MetricsSnapshot {
        let mut hist = LogHistogram::new();
        for &v in values {
            hist.record(v);
        }
        MetricsSnapshot {
            counters: vec![("events".to_owned(), values.len() as u64)],
            gauges: vec![("cores".to_owned(), 8.5)],
            histograms: vec![HistogramSnapshot::of("latency", &hist)],
        }
    }

    #[test]
    fn histogram_snapshot_summarizes_faithfully() {
        let mut hist = LogHistogram::new();
        for v in [1, 2, 3, 1000, 5000] {
            hist.record(v);
        }
        let snap = HistogramSnapshot::of("x", &hist);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 6006);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 5000);
        assert_eq!(snap.p50, hist.p50());
        assert_eq!(snap.p999, hist.p999());
        assert_eq!(
            snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            5,
            "bucket counts cover every sample"
        );
        assert!((snap.mean() - 6006.0 / 5.0).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::of("e", &LogHistogram::new()).mean(), 0.0);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = sample_snapshot(&[10, 20, 30]);
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("events"), Some(3));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("cores"), Some(8.5));
        assert_eq!(snap.gauge("nope"), None);
        assert_eq!(snap.histogram("latency").unwrap().count, 3);
        assert!(snap.histogram("nope").is_none());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot(&[1, 31, 32, 33, 1_000_000, u64::MAX / 3]);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    proptest::proptest! {
        #[test]
        fn snapshot_json_round_trip(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
            let snap = sample_snapshot(&values);
            let json = serde_json::to_string(&snap).expect("serialize");
            let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
            proptest::prop_assert_eq!(back, snap);
        }
    }
}
