//! Property-based tests of the geometry substrate.

use std::f64::consts::TAU;

use cbtc_geom::coverage::ArcSet;
use cbtc_geom::gap::{has_alpha_gap, max_gap, widest_gap};
use cbtc_geom::triangle::{angle_at, largest_angle_faces_largest_side};
use cbtc_geom::{Alpha, Angle, Cone, Point2};
use proptest::prelude::*;

fn angles(max_len: usize) -> impl Strategy<Value = Vec<Angle>> {
    proptest::collection::vec(0.0f64..TAU, 0..max_len)
        .prop_map(|v| v.into_iter().map(Angle::new).collect())
}

fn alphas() -> impl Strategy<Value = Alpha> {
    (0.05f64..TAU).prop_map(|a| Alpha::new(a).unwrap())
}

fn points() -> impl Strategy<Value = Point2> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn angle_normalization_in_range(raw in -1e6f64..1e6) {
        let a = Angle::new(raw);
        prop_assert!(a.radians() >= 0.0);
        prop_assert!(a.radians() < TAU);
        // Adding full turns never changes the normalized value (beyond fp).
        let b = Angle::new(raw + TAU);
        prop_assert!(a.circular_distance(b) < 1e-6);
    }

    #[test]
    fn circular_distance_is_a_metric(x in 0.0f64..TAU, y in 0.0f64..TAU, z in 0.0f64..TAU) {
        let (a, b, c) = (Angle::new(x), Angle::new(y), Angle::new(z));
        prop_assert!((a.circular_distance(b) - b.circular_distance(a)).abs() < 1e-12);
        prop_assert!(a.circular_distance(a) == 0.0);
        prop_assert!(a.circular_distance(b) <= std::f64::consts::PI + 1e-12);
        // Triangle inequality.
        prop_assert!(
            a.circular_distance(c) <= a.circular_distance(b) + b.circular_distance(c) + 1e-9
        );
    }

    #[test]
    fn ccw_arcs_around_the_circle_sum_to_tau(x in 0.0f64..TAU, y in 0.0f64..TAU) {
        let (a, b) = (Angle::new(x), Angle::new(y));
        prop_assume!(a != b);
        prop_assert!((a.ccw_to(b) + b.ccw_to(a) - TAU).abs() < 1e-9);
    }

    #[test]
    fn max_gap_is_rotation_invariant(dirs in angles(24), shift in 0.0f64..TAU) {
        prop_assume!(!dirs.is_empty());
        let rotated: Vec<Angle> = dirs.iter().map(|d| d.rotated(shift)).collect();
        prop_assert!((max_gap(&dirs) - max_gap(&rotated)).abs() < 1e-6);
    }

    #[test]
    fn gaps_sum_to_tau(dirs in angles(24)) {
        prop_assume!(dirs.len() >= 2);
        let mut sorted = dirs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assume!(sorted.len() >= 2);
        let total: f64 = (0..sorted.len())
            .map(|i| sorted[i].ccw_to(sorted[(i + 1) % sorted.len()]))
            .sum();
        prop_assert!((total - TAU).abs() < 1e-9);
        prop_assert!(max_gap(&sorted) <= TAU);
        prop_assert!(max_gap(&sorted) >= TAU / sorted.len() as f64 - 1e-9);
    }

    #[test]
    fn adding_a_direction_never_widens_the_gap(dirs in angles(24), extra in 0.0f64..TAU) {
        let before = max_gap(&dirs);
        let mut more = dirs.clone();
        more.push(Angle::new(extra));
        prop_assert!(max_gap(&more) <= before + 1e-12);
    }

    #[test]
    fn widest_gap_agrees_with_max_gap(dirs in angles(24)) {
        prop_assume!(!dirs.is_empty());
        let (g, start) = widest_gap(&dirs).unwrap();
        prop_assert!((g - max_gap(&dirs)).abs() < 1e-12);
        // The reported start is one of the input directions.
        prop_assert!(dirs.contains(&start));
    }

    #[test]
    fn cover_measure_bounds(dirs in angles(16), alpha in alphas()) {
        let cover = ArcSet::cover(&dirs, alpha);
        let measure = cover.measure();
        prop_assert!((0.0..=TAU + 1e-9).contains(&measure));
        if dirs.is_empty() {
            prop_assert!(cover.is_empty());
        } else {
            // At least one arc's width, at most the sum of all widths.
            prop_assert!(measure >= alpha.radians().min(TAU) - 1e-9);
            prop_assert!(measure <= (dirs.len() as f64) * alpha.radians() + 1e-9);
        }
    }

    #[test]
    fn cover_contains_arc_centers_and_respects_gap_duality(
        dirs in angles(16),
        alpha in alphas(),
    ) {
        let cover = ArcSet::cover(&dirs, alpha);
        for d in &dirs {
            prop_assert!(cover.contains(*d));
        }
        let g = max_gap(&dirs);
        prop_assume!((g - alpha.radians()).abs() > 1e-6);
        prop_assert_eq!(cover.is_full(), !has_alpha_gap(&dirs, alpha));
    }

    #[test]
    fn cone_contains_its_target_and_boundary_symmetry(
        apex in points(),
        target in points(),
        alpha in alphas(),
    ) {
        prop_assume!(apex.distance(target) > 1e-6);
        let cone = Cone::bisected_by(apex, alpha, target);
        prop_assert!(cone.contains(target));
        // Mirroring the target across the bisector stays inside.
        let dir = apex.direction_to(target);
        let off = alpha.half() * 0.99;
        prop_assert!(cone.contains_direction(dir.rotated(off)));
        prop_assert!(cone.contains_direction(dir.rotated(-off)));
    }

    #[test]
    fn triangle_angles_sum_to_pi(a in points(), b in points(), c in points()) {
        prop_assume!(a.distance(b) > 1e-3 && b.distance(c) > 1e-3 && a.distance(c) > 1e-3);
        // Skip near-collinear triples where fp noise dominates.
        let area2 = ((b - a).cross(c - a)).abs();
        prop_assume!(area2 > 1e-3);
        let sum = angle_at(b, a, c) + angle_at(a, b, c) + angle_at(a, c, b);
        prop_assert!((sum - std::f64::consts::PI).abs() < 1e-6);
        prop_assert!(largest_angle_faces_largest_side(a, b, c));
    }

    #[test]
    fn direction_to_is_antisymmetric(a in points(), b in points()) {
        prop_assume!(a.distance(b) > 1e-6);
        let fwd = a.direction_to(b);
        let back = b.direction_to(a);
        prop_assert!(fwd.circular_distance(back.opposite()) < 1e-9);
    }
}
