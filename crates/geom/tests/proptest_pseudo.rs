//! Property-based equivalence of the trig-free pseudo-angle kernel with
//! the `Angle` (`atan2`) formulation: ordering, α-gap verdicts, and the
//! flat trackers, including ties at quadrant boundaries and collinear
//! directions.

use std::f64::consts::TAU;

use cbtc_geom::gap::{max_gap, FlatGapTracker, GapTracker};
use cbtc_geom::pseudo::{ConeTest, PseudoAngle, PseudoGapTracker};
use cbtc_geom::{Alpha, Angle, Vec2, EPS};
use proptest::prelude::*;

/// Non-zero direction vectors, biased toward the cases that break naive
/// angular code: exact axis rays, exact diagonals, and on-axis vectors
/// of random magnitude appear alongside generic components.
fn direction() -> impl Strategy<Value = Vec2> {
    (0u8..12, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(sel, x, y)| {
        let v = match sel {
            0 => Vec2::new(1.0, 0.0),
            1 => Vec2::new(0.0, 1.0),
            2 => Vec2::new(-1.0, 0.0),
            3 => Vec2::new(0.0, -1.0),
            4 => Vec2::new(1.0, 1.0),
            5 => Vec2::new(-1.0, 1.0),
            6 => Vec2::new(-1.0, -1.0),
            7 => Vec2::new(1.0, -1.0),
            8 => Vec2::new(x, 0.0),
            9 => Vec2::new(0.0, y),
            _ => Vec2::new(x, y),
        };
        if v.x == 0.0 && v.y == 0.0 {
            Vec2::new(1.0, 0.0)
        } else {
            v
        }
    })
}

fn directions(max_len: usize) -> impl Strategy<Value = Vec<Vec2>> {
    proptest::collection::vec(direction(), 0..max_len)
}

fn alphas() -> impl Strategy<Value = Alpha> {
    (0u8..5, 0.05f64..TAU).prop_map(|(sel, a)| match sel {
        0 => Alpha::TWO_PI_THIRDS,
        1 => Alpha::FIVE_PI_SIXTHS,
        _ => Alpha::new(a).unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sorting by pseudo-angle is sorting by true angle: the diamond map
    /// is strictly increasing in `atan2`, with the same tie class (equal
    /// direction) — collinear same-direction vectors compare equal, and
    /// opposite vectors do not.
    #[test]
    fn pseudo_order_matches_angle_order(a in direction(), b in direction()) {
        let (pa, pb) = (PseudoAngle::from_vector(a), PseudoAngle::from_vector(b));
        let angle_cmp = a.angle().radians().total_cmp(&b.angle().radians());
        // The diamond map and atan2 round independently, so only the
        // *class* of the comparison must agree: equality ⇔ same ray.
        let same_ray = a.cross(b) == 0.0 && a.dot(b) > 0.0;
        if same_ray {
            // Same ray up to positive scale: both orders may see rounding
            // in the divide; the pseudo values stay within one quadrant
            // and within 1 ulp of each other.
            prop_assert!((pa.value() - pb.value()).abs() < 1e-12);
        } else {
            prop_assert_eq!(pa.cmp(&pb), angle_cmp, "a={} b={}", a, b);
        }
    }

    /// The quadrant read from the pseudo-angle matches the quadrant of
    /// the true angle, axes included in the quadrant they open.
    #[test]
    fn pseudo_quadrant_matches_angle(v in direction()) {
        let q = PseudoAngle::from_vector(v).quadrant();
        let expected = match (v.x, v.y) {
            (x, y) if x > 0.0 && y >= 0.0 => 0,
            (x, y) if x <= 0.0 && y > 0.0 => 1,
            (x, y) if x < 0.0 && y <= 0.0 => 2,
            _ => 3,
        };
        prop_assert_eq!(q, expected, "{}", v);
    }

    /// The cone test agrees with the `ccw_to` comparison everywhere
    /// outside the floating-point tie band around the threshold.
    #[test]
    fn cone_test_matches_ccw_to(a in direction(), b in direction(), theta in 1e-3f64..TAU) {
        let gap = a.angle().ccw_to(b.angle());
        prop_assume!((gap - theta).abs() > 1e-9);
        let cone = ConeTest::new(theta);
        prop_assert_eq!(cone.exceeded_by(a, b), gap > theta, "a={} b={} θ={}", a, b, theta);
    }

    /// Collinear ties: the span from a direction to itself is 0 (never
    /// exceeds), to its opposite exactly π.
    #[test]
    fn cone_test_collinear_ties_are_exact(v in direction(), theta in 1e-3f64..TAU) {
        let cone = ConeTest::new(theta);
        prop_assert!(!cone.exceeded_by(v, v), "zero span never exceeds");
        // Power-of-two scaling keeps the cross product exactly zero.
        prop_assert!(!cone.exceeded_by(v, v * 4.0), "same ray, zero span");
        let opposite = Vec2::new(-v.x, -v.y);
        // cross = 0, dot < 0 ⇒ the span is *exactly* π on the query side.
        prop_assert_eq!(
            cone.exceeded_by(v, opposite),
            theta < std::f64::consts::PI,
            "θ={}", theta
        );
    }

    /// The pseudo tracker's α-gap verdict matches the `Angle` tracker
    /// after every insertion of the same stream, whenever no consecutive
    /// span sits inside the EPS tie band where the two roundings may
    /// legitimately disagree.
    #[test]
    fn pseudo_tracker_matches_angle_tracker(dirs in directions(24), alpha in alphas()) {
        let mut pseudo = PseudoGapTracker::new(alpha);
        let mut radian = GapTracker::new();
        let mut seen: Vec<Angle> = Vec::new();
        for v in dirs {
            pseudo.insert(v);
            let ang = v.angle();
            radian.insert(ang);
            seen.push(ang);
            // Skip verdict comparison while some span is within the tie
            // band of the strict threshold α + EPS.
            let g = max_gap(&seen);
            if (g - (alpha.radians() + EPS)).abs() < 1e-9 {
                continue;
            }
            prop_assert_eq!(
                pseudo.has_open_gap(),
                radian.has_alpha_gap(alpha),
                "after {} dirs, α={}", seen.len(), alpha.radians()
            );
        }
    }

    /// The flat radian tracker is **bit-identical** to the `BTreeSet`
    /// tracker — same max gap bits and same verdict after every
    /// insertion, for every α. (This is the invariant that lets the
    /// construction hot loop swap trackers without changing one output
    /// bit.)
    #[test]
    fn flat_tracker_bit_identical_to_btree_tracker(
        raw in proptest::collection::vec(0.0f64..TAU, 0..32),
        alpha in alphas(),
    ) {
        let mut flat = FlatGapTracker::new(alpha);
        let mut tree = GapTracker::new();
        for r in raw {
            let dir = Angle::new(r);
            flat.insert(dir);
            tree.insert(dir);
            prop_assert_eq!(flat.len(), tree.len());
            prop_assert_eq!(flat.max_gap().to_bits(), tree.max_gap().to_bits());
            prop_assert_eq!(flat.has_open_gap(), tree.has_alpha_gap(alpha));
        }
    }

    /// Insertion order is irrelevant for both flat trackers: any
    /// permutation of the same direction set yields the same verdict.
    #[test]
    fn tracker_verdicts_are_order_independent(dirs in directions(12), alpha in alphas()) {
        let mut forward = PseudoGapTracker::new(alpha);
        let mut backward = PseudoGapTracker::new(alpha);
        let mut flat_fwd = FlatGapTracker::new(alpha);
        let mut flat_bwd = FlatGapTracker::new(alpha);
        for v in &dirs {
            forward.insert(*v);
            flat_fwd.insert(v.angle());
        }
        for v in dirs.iter().rev() {
            backward.insert(*v);
            flat_bwd.insert(v.angle());
        }
        prop_assert_eq!(forward.has_open_gap(), backward.has_open_gap());
        prop_assert_eq!(forward.len(), backward.len());
        prop_assert_eq!(flat_fwd.max_gap().to_bits(), flat_bwd.max_gap().to_bits());
    }
}
