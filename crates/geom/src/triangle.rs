//! Triangle-angle helpers mirroring the side/angle facts used by the proofs.
//!
//! The paper repeatedly uses the elementary fact that *in a triangle, larger
//! sides are opposite larger angles* (e.g. to show `d(z, u) < d(u, v)` when
//! `∠zvu ≤ π/3` in Lemma 2.2). These helpers compute interior angles and let
//! the test-suite check those facts directly on the constructed point sets.

use crate::Point2;

/// The interior angle `∠abc` at vertex `b`, between rays `b→a` and `b→c`,
/// in `[0, π]`.
///
/// # Panics
///
/// Panics in debug builds when either ray is degenerate (`a == b` or
/// `c == b`).
///
/// # Example
///
/// ```
/// use cbtc_geom::{Point2, triangle::angle_at};
/// use std::f64::consts::FRAC_PI_2;
///
/// let right = angle_at(
///     Point2::new(1.0, 0.0),
///     Point2::new(0.0, 0.0),
///     Point2::new(0.0, 1.0),
/// );
/// assert!((right - FRAC_PI_2).abs() < 1e-12);
/// ```
pub fn angle_at(a: Point2, b: Point2, c: Point2) -> f64 {
    debug_assert!(a != b && c != b, "degenerate angle");
    let u = a - b;
    let v = c - b;
    // atan2 of cross/dot is numerically stabler than acos of the normalized
    // dot product near 0 and π.
    u.cross(v).abs().atan2(u.dot(v))
}

/// The length of the side opposite the given angle, by the law of cosines:
/// `c² = a² + b² − 2ab·cos(γ)`.
pub fn law_of_cosines(a: f64, b: f64, gamma: f64) -> f64 {
    (a * a + b * b - 2.0 * a * b * gamma.cos()).max(0.0).sqrt()
}

/// Checks the fact the proofs rely on: in triangle `xyz`, the side opposite
/// the largest interior angle is the longest side.
///
/// Returns `true` when the triangle is non-degenerate and the property holds
/// (it always does mathematically; this is an oracle for the test-suite and
/// for validating constructed figures).
pub fn largest_angle_faces_largest_side(x: Point2, y: Point2, z: Point2) -> bool {
    if y.distance(z) < crate::EPS || x.distance(z) < crate::EPS || x.distance(y) < crate::EPS {
        return false;
    }
    let sides = [
        (y.distance(z), angle_at(y, x, z)), // side yz opposite angle at x
        (x.distance(z), angle_at(x, y, z)), // side xz opposite angle at y
        (x.distance(y), angle_at(x, z, y)), // side xy opposite angle at z
    ];
    let max_side = sides
        .iter()
        .cloned()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("three sides");
    let max_angle = sides
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("three angles");
    // Allow ties within tolerance (isoceles / equilateral).
    max_side.1 + crate::EPS >= max_angle.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, FRAC_PI_4, PI};

    #[test]
    fn right_isoceles_angles() {
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!((angle_at(a, b, c) - FRAC_PI_2).abs() < 1e-12);
        assert!((angle_at(b, a, c) - FRAC_PI_4).abs() < 1e-12);
        assert!((angle_at(a, c, b) - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn equilateral_angles_are_pi_over_three() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.5, 3f64.sqrt() / 2.0);
        for (x, v, y) in [(b, a, c), (a, b, c), (a, c, b)] {
            assert!((angle_at(x, v, y) - FRAC_PI_3).abs() < 1e-12);
        }
    }

    #[test]
    fn straight_line_gives_pi_or_zero() {
        let a = Point2::new(-1.0, 0.0);
        let b = Point2::new(0.0, 0.0);
        let c = Point2::new(1.0, 0.0);
        assert!((angle_at(a, b, c) - PI).abs() < 1e-12);
        assert!(angle_at(c, b, Point2::new(2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn law_of_cosines_degenerates_to_pythagoras() {
        let c = law_of_cosines(3.0, 4.0, FRAC_PI_2);
        assert!((c - 5.0).abs() < 1e-12);
        // γ = 0 gives |a − b|.
        assert!((law_of_cosines(3.0, 4.0, 0.0) - 1.0).abs() < 1e-12);
        // γ = π gives a + b.
        assert!((law_of_cosines(3.0, 4.0, PI) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn interior_angles_sum_to_pi() {
        let a = Point2::new(0.3, -1.2);
        let b = Point2::new(4.0, 2.0);
        let c = Point2::new(-2.0, 3.5);
        let sum = angle_at(b, a, c) + angle_at(a, b, c) + angle_at(a, c, b);
        assert!((sum - PI).abs() < 1e-9);
    }

    #[test]
    fn side_angle_ordering_oracle() {
        assert!(largest_angle_faces_largest_side(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(1.0, 2.0),
        ));
        // Degenerate triangles are rejected.
        assert!(!largest_angle_faces_largest_side(
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
        ));
    }

    #[test]
    fn lemma_2_2_side_fact() {
        // If ∠zvu ≤ π/3 and d(v,z) < d(u,v) then d(z,u) < d(u,v): the side
        // zu cannot be the (strictly) largest because its opposite angle
        // ∠zvu is not the largest. Numeric spot-check of the fact used in
        // the Lemma 2.2 proof.
        let u = Point2::new(0.0, 0.0);
        let v = Point2::new(10.0, 0.0);
        // z at angle 50° < 60° from v, closer than d(u,v).
        let z = Point2::new(
            10.0 - 6.0 * 50f64.to_radians().cos(),
            6.0 * 50f64.to_radians().sin(),
        );
        assert!(angle_at(z, v, u) < FRAC_PI_3);
        assert!(v.distance(z) < u.distance(v));
        assert!(z.distance(u) < u.distance(v));
    }
}
