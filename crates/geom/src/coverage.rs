//! Angular coverage sets: the `coverα(dir)` operator of §3.1.
//!
//! The shrink-back optimization lets a boundary node drop its
//! highest-power discovery rounds *as long as the angular coverage does not
//! change*. Coverage of a direction set `dir` under degree `α` is
//!
//! ```text
//! coverα(dir) = { θ : ∃ θ′ ∈ dir,  |θ − θ′| mod 2π ≤ α/2 }
//! ```
//!
//! i.e. the union of closed arcs of width `α` centered at each direction.
//! [`ArcSet`] represents such unions canonically so that coverage equality
//! (`coverα(dir_i) = coverα(dir_k)`) can be decided exactly.

use std::f64::consts::TAU;
use std::fmt;

use crate::{Alpha, Angle, EPS};

/// A canonical union of closed arcs on the unit circle.
///
/// Invariants: arcs are stored sorted by start angle, pairwise disjoint and
/// non-touching (touching arcs are merged), with at most one arc wrapping
/// through `2π` (stored with `end > 2π`). The full circle is a dedicated
/// state.
///
/// # Example
///
/// ```
/// use cbtc_geom::{Alpha, Angle, coverage::ArcSet};
/// use std::f64::consts::PI;
///
/// let dirs = [Angle::ZERO, Angle::new(PI)];
/// let cover = ArcSet::cover(&dirs, Alpha::new(PI)?);
/// assert!(cover.is_full()); // two arcs of width π centered 0 and π
/// # Ok::<(), cbtc_geom::InvalidAlphaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArcSet {
    /// `(start, end)` pairs with `0 ≤ start < 2π`, `start < end ≤ start+2π`.
    /// Empty with `full == true` means the entire circle.
    arcs: Vec<(f64, f64)>,
    full: bool,
}

impl ArcSet {
    /// The empty set.
    pub fn empty() -> Self {
        ArcSet {
            arcs: Vec::new(),
            full: false,
        }
    }

    /// The full circle.
    pub fn full_circle() -> Self {
        ArcSet {
            arcs: Vec::new(),
            full: true,
        }
    }

    /// Builds an arc set from raw `(start, width)` arcs.
    ///
    /// Arcs of non-positive width are ignored; widths of `2π` or more make
    /// the set the full circle.
    pub fn from_arcs<I>(arcs: I) -> Self
    where
        I: IntoIterator<Item = (Angle, f64)>,
    {
        let mut spans: Vec<(f64, f64)> = Vec::new();
        for (start, width) in arcs {
            if width <= 0.0 {
                continue;
            }
            if width >= TAU - EPS {
                return ArcSet::full_circle();
            }
            let s = start.radians();
            spans.push((s, s + width));
        }
        Self::normalize(spans)
    }

    /// The paper's `coverα(dir)`: the union of closed arcs of width `α`
    /// centered at each direction in `dirs`.
    pub fn cover(dirs: &[Angle], alpha: Alpha) -> Self {
        let half = alpha.half();
        ArcSet::from_arcs(dirs.iter().map(|d| (d.rotated(-half), alpha.radians())))
    }

    fn normalize(mut spans: Vec<(f64, f64)>) -> Self {
        if spans.is_empty() {
            return ArcSet::empty();
        }
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Linear merge of overlapping or touching spans.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 + EPS => {
                    last.1 = last.1.max(e);
                }
                _ => merged.push((s, e)),
            }
        }
        // Fold the wrap-around of the final span onto the front spans.
        let (first_s, _) = merged[0];
        let last = merged.len() - 1;
        if merged[last].1 >= TAU {
            let overhang = merged[last].1 - TAU;
            if overhang + EPS >= first_s {
                // The wrapping span reaches (or passes) the first span:
                // absorb front spans until a real gap appears.
                let mut reach = overhang;
                let mut absorbed = 0;
                for &(s, e) in merged.iter().take(last) {
                    if s <= reach + EPS {
                        reach = reach.max(e);
                        absorbed += 1;
                    } else {
                        break;
                    }
                }
                if absorbed == last || reach + EPS >= merged[last].0 {
                    // Everything merged into one circuit: check fullness.
                    if reach + TAU + EPS >= merged[last].0 + TAU && merged[last].0 <= reach + EPS {
                        return ArcSet::full_circle();
                    }
                }
                merged[last].1 = reach + TAU;
                merged.drain(..absorbed);
                // Re-check fullness: the remaining wrap arc may now span 2π.
                let n = merged.len();
                if n == 1 && merged[0].1 - merged[0].0 >= TAU - EPS {
                    return ArcSet::full_circle();
                }
            }
        }
        // Move a wrapping arc to the end if normalization reordered things.
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));
        ArcSet {
            arcs: merged,
            full: false,
        }
    }

    /// Whether this set is the full circle.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Whether this set is empty.
    pub fn is_empty(&self) -> bool {
        !self.full && self.arcs.is_empty()
    }

    /// Total angular measure covered, in `[0, 2π]`.
    pub fn measure(&self) -> f64 {
        if self.full {
            TAU
        } else {
            self.arcs.iter().map(|(s, e)| e - s).sum()
        }
    }

    /// Number of disjoint arcs (0 for empty, and 1 for the full circle).
    pub fn arc_count(&self) -> usize {
        if self.full {
            1
        } else {
            self.arcs.len()
        }
    }

    /// Whether the angle `theta` is covered.
    pub fn contains(&self, theta: Angle) -> bool {
        if self.full {
            return true;
        }
        let t = theta.radians();
        self.arcs
            .iter()
            .any(|&(s, e)| (t >= s - EPS && t <= e + EPS) || t + TAU <= e + EPS)
    }

    /// Whether the closed arc starting at `start` with width `width` is
    /// entirely covered.
    ///
    /// Because stored arcs are disjoint with real gaps between them, a
    /// contiguous query arc is covered iff a single stored arc contains it.
    pub fn contains_arc(&self, start: Angle, width: f64) -> bool {
        if self.full {
            return true;
        }
        if width <= 0.0 {
            return self.contains(start);
        }
        if width >= TAU - EPS {
            return false; // a non-full set cannot cover the whole circle
        }
        let qs = start.radians();
        let qe = qs + width;
        for &(s, e) in &self.arcs {
            for shift in [0.0, TAU] {
                if qs + shift >= s - EPS && qe + shift <= e + EPS {
                    return true;
                }
            }
        }
        false
    }

    /// Whether every arc of `other` is covered by `self`.
    pub fn covers(&self, other: &ArcSet) -> bool {
        if self.full {
            return true;
        }
        if other.full {
            return false;
        }
        other
            .arcs
            .iter()
            .all(|&(s, e)| self.contains_arc(Angle::new(s.rem_euclid(TAU)), e - s))
    }

    /// Whether two arc sets cover the same angles (mutual inclusion, with
    /// [`EPS`] tolerance at arc endpoints).
    pub fn same_coverage(&self, other: &ArcSet) -> bool {
        self.covers(other) && other.covers(self)
    }
}

impl Default for ArcSet {
    fn default() -> Self {
        ArcSet::empty()
    }
}

impl fmt::Display for ArcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.full {
            return write!(f, "[full circle]");
        }
        if self.arcs.is_empty() {
            return write!(f, "[empty]");
        }
        let parts: Vec<String> = self
            .arcs
            .iter()
            .map(|(s, e)| format!("[{s:.4}, {e:.4}]"))
            .collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

/// Convenience wrapper: `coverα(dirs_a) = coverα(dirs_b)`.
///
/// This is the exact test the shrink-back phase performs when deciding how
/// many power levels can be dropped.
pub fn same_cover(dirs_a: &[Angle], dirs_b: &[Angle], alpha: Alpha) -> bool {
    ArcSet::cover(dirs_a, alpha).same_coverage(&ArcSet::cover(dirs_b, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::has_alpha_gap;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn angles(v: &[f64]) -> Vec<Angle> {
        v.iter().copied().map(Angle::new).collect()
    }

    #[test]
    fn empty_and_full() {
        let e = ArcSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.measure(), 0.0);
        assert!(!e.contains(Angle::ZERO));
        let f = ArcSet::full_circle();
        assert!(f.is_full());
        assert_eq!(f.measure(), TAU);
        assert!(f.contains(Angle::new(3.0)));
        assert!(f.covers(&e));
        assert!(!e.covers(&f));
    }

    #[test]
    fn single_arc_membership() {
        let a = ArcSet::from_arcs([(Angle::new(1.0), 0.5)]);
        assert!(a.contains(Angle::new(1.0)));
        assert!(a.contains(Angle::new(1.25)));
        assert!(a.contains(Angle::new(1.5)));
        assert!(!a.contains(Angle::new(1.6)));
        assert!(!a.contains(Angle::new(0.9)));
        assert!((a.measure() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_arcs_merge() {
        let a = ArcSet::from_arcs([(Angle::new(0.0), 1.0), (Angle::new(0.5), 1.0)]);
        assert_eq!(a.arc_count(), 1);
        assert!((a.measure() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn touching_arcs_merge() {
        let a = ArcSet::from_arcs([(Angle::new(0.0), 1.0), (Angle::new(1.0), 1.0)]);
        assert_eq!(a.arc_count(), 1);
        assert!((a.measure() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_arcs_stay_disjoint() {
        let a = ArcSet::from_arcs([(Angle::new(0.0), 0.5), (Angle::new(2.0), 0.5)]);
        assert_eq!(a.arc_count(), 2);
        assert!((a.measure() - 1.0).abs() < 1e-12);
        assert!(!a.contains(Angle::new(1.0)));
    }

    #[test]
    fn wraparound_arc_membership() {
        // Arc from 350° spanning 20°: covers 355° and 5°.
        let a = ArcSet::from_arcs([(Angle::from_degrees(350.0), 20f64.to_radians())]);
        assert!(a.contains(Angle::from_degrees(355.0)));
        assert!(a.contains(Angle::from_degrees(5.0)));
        assert!(!a.contains(Angle::from_degrees(15.0)));
        assert!(!a.contains(Angle::from_degrees(345.0)));
    }

    #[test]
    fn wraparound_merges_with_front_arc() {
        // [350°, 10°] and [5°, 30°] must merge into [350°, 30°].
        let a = ArcSet::from_arcs([
            (Angle::from_degrees(350.0), 20f64.to_radians()),
            (Angle::from_degrees(5.0), 25f64.to_radians()),
        ]);
        assert_eq!(a.arc_count(), 1);
        assert!((a.measure() - 40f64.to_radians()).abs() < 1e-9);
        assert!(a.contains(Angle::from_degrees(25.0)));
        assert!(!a.contains(Angle::from_degrees(31.0)));
    }

    #[test]
    fn arcs_covering_whole_circle_become_full() {
        let a = ArcSet::from_arcs([
            (Angle::new(0.0), 2.5),
            (Angle::new(2.0), 2.5),
            (Angle::new(4.0), 2.5),
        ]);
        assert!(a.is_full());
    }

    #[test]
    fn cover_full_circle_iff_no_alpha_gap() {
        // The bridge between gap detection and coverage: coverα(dir) is the
        // full circle iff there is no α-gap.
        let alpha = Alpha::TWO_PI_THIRDS;
        let no_gap = angles(&[0.0, 2.0, 4.0]); // max gap ≈ 2.28 > 2π/3? 2π−4 ≈ 2.28 > 2.094 — gap!
        let gapped = has_alpha_gap(&no_gap, alpha);
        assert_eq!(!ArcSet::cover(&no_gap, alpha).is_full(), gapped);

        let tight = angles(&[0.0, TAU / 3.0, 2.0 * TAU / 3.0]);
        assert!(!has_alpha_gap(&tight, alpha));
        assert!(ArcSet::cover(&tight, alpha).is_full());
    }

    #[test]
    fn contains_arc_within_and_across() {
        let a = ArcSet::from_arcs([(Angle::new(1.0), 1.0)]);
        assert!(a.contains_arc(Angle::new(1.2), 0.5));
        assert!(a.contains_arc(Angle::new(1.0), 1.0));
        assert!(!a.contains_arc(Angle::new(1.2), 1.0));
        // Wrapping query against a wrapping arc.
        let w = ArcSet::from_arcs([(Angle::from_degrees(340.0), 40f64.to_radians())]);
        assert!(w.contains_arc(Angle::from_degrees(350.0), 20f64.to_radians()));
        assert!(!w.contains_arc(Angle::from_degrees(350.0), 40f64.to_radians()));
    }

    #[test]
    fn same_cover_detects_redundant_directions() {
        let alpha = Alpha::FIVE_PI_SIXTHS;
        // A direction in the middle of an already-covered arc adds nothing.
        let base = angles(&[0.0, 1.0]);
        let with_extra = angles(&[0.0, 0.5, 1.0]);
        assert!(same_cover(&base, &with_extra, alpha));
        // A far-away direction does add coverage.
        let with_far = angles(&[0.0, 1.0, PI]);
        assert!(!same_cover(&base, &with_far, alpha));
    }

    #[test]
    fn coverage_subset_relation() {
        let alpha = Alpha::TWO_PI_THIRDS;
        let small = ArcSet::cover(&angles(&[0.0]), alpha);
        let big = ArcSet::cover(&angles(&[0.0, FRAC_PI_2]), alpha);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(small.covers(&small.clone()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArcSet::full_circle().to_string(), "[full circle]");
        assert_eq!(ArcSet::empty().to_string(), "[empty]");
        let a = ArcSet::from_arcs([(Angle::new(0.0), 1.0)]);
        assert!(a.to_string().contains("∪") || a.to_string().contains("[0.0000"));
    }
}
