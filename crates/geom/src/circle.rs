//! Circles and circle–circle intersection.
//!
//! The paper's proofs reason about `circ(u, r)`, the circle centered at `u`
//! with radius `r` — most prominently in the Theorem 2.4 construction, where
//! the points `s` and `s′` are the intersections of the two radius-`R`
//! circles centered at `u0` and `v0`.

use serde::{Deserialize, Serialize};

use crate::{Point2, EPS};

/// A circle in the plane: `circ(center, radius)` in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center point.
    pub center: Point2,
    /// Radius (non-negative).
    pub radius: f64,
}

/// Result of intersecting two circles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircleIntersection {
    /// The circles do not meet (separate or one strictly inside the other),
    /// or they are coincident (infinitely many common points).
    None,
    /// The circles touch at exactly one point.
    Tangent(Point2),
    /// The circles meet at two points. The points are ordered so that the
    /// first lies counter-clockwise of the center line from `self` to
    /// `other` (positive half-plane).
    Two(Point2, Point2),
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point2, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Whether `p` lies inside or on the circle (closed disc).
    pub fn contains(&self, p: Point2) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius + EPS
    }

    /// Whether `p` lies strictly outside the circle, beyond tolerance.
    pub fn strictly_outside(&self, p: Point2) -> bool {
        self.center.distance_squared(p) > self.radius * self.radius + EPS
    }

    /// Intersects two circles.
    ///
    /// Coincident circles are reported as [`CircleIntersection::None`]
    /// because no finite set of points represents them.
    pub fn intersect(&self, other: &Circle) -> CircleIntersection {
        let d = self.center.distance(other.center);
        let (r0, r1) = (self.radius, other.radius);
        if d < EPS {
            return CircleIntersection::None; // concentric (or coincident)
        }
        if d > r0 + r1 + EPS || d < (r0 - r1).abs() - EPS {
            return CircleIntersection::None;
        }
        // Distance from self.center to the chord's foot along the center
        // line, by the standard two-circle formula.
        let a = (d * d + r0 * r0 - r1 * r1) / (2.0 * d);
        let h2 = r0 * r0 - a * a;
        let dir = (other.center - self.center) / d;
        let foot = self.center + dir * a;
        if h2 <= EPS {
            return CircleIntersection::Tangent(foot);
        }
        let h = h2.sqrt();
        // Perpendicular to the center line, counter-clockwise.
        let perp = crate::Vec2::new(-dir.y, dir.x);
        CircleIntersection::Two(foot + perp * h, foot - perp * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_intersection_of_equal_circles() {
        // The Theorem 2.4 setting: radius-R circles centered R apart meet at
        // (R/2, ±R·√3/2).
        let r = 500.0;
        let c0 = Circle::new(Point2::new(0.0, 0.0), r);
        let c1 = Circle::new(Point2::new(r, 0.0), r);
        match c0.intersect(&c1) {
            CircleIntersection::Two(s, s_prime) => {
                assert!((s.x - r / 2.0).abs() < 1e-9);
                assert!((s.y - r * 3f64.sqrt() / 2.0).abs() < 1e-9);
                assert!((s_prime.x - r / 2.0).abs() < 1e-9);
                assert!((s_prime.y + r * 3f64.sqrt() / 2.0).abs() < 1e-9);
                // Both points lie on both circles.
                for p in [s, s_prime] {
                    assert!((c0.center.distance(p) - r).abs() < 1e-9);
                    assert!((c1.center.distance(p) - r).abs() < 1e-9);
                }
            }
            other => panic!("expected two intersections, got {other:?}"),
        }
    }

    #[test]
    fn tangent_circles() {
        let c0 = Circle::new(Point2::new(0.0, 0.0), 1.0);
        let c1 = Circle::new(Point2::new(2.0, 0.0), 1.0);
        match c0.intersect(&c1) {
            CircleIntersection::Tangent(p) => {
                assert!((p.x - 1.0).abs() < 1e-9);
                assert!(p.y.abs() < 1e-9);
            }
            other => panic!("expected tangency, got {other:?}"),
        }
    }

    #[test]
    fn internal_tangency() {
        let c0 = Circle::new(Point2::new(0.0, 0.0), 2.0);
        let c1 = Circle::new(Point2::new(1.0, 0.0), 1.0);
        match c0.intersect(&c1) {
            CircleIntersection::Tangent(p) => {
                assert!((p.x - 2.0).abs() < 1e-9);
                assert!(p.y.abs() < 1e-9);
            }
            other => panic!("expected tangency, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_and_nested_circles() {
        let c0 = Circle::new(Point2::new(0.0, 0.0), 1.0);
        let far = Circle::new(Point2::new(5.0, 0.0), 1.0);
        assert_eq!(c0.intersect(&far), CircleIntersection::None);
        let inside = Circle::new(Point2::new(0.1, 0.0), 0.2);
        assert_eq!(c0.intersect(&inside), CircleIntersection::None);
        let concentric = Circle::new(Point2::new(0.0, 0.0), 2.0);
        assert_eq!(c0.intersect(&concentric), CircleIntersection::None);
    }

    #[test]
    fn containment_tests() {
        let c = Circle::new(Point2::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point2::new(1.0, 1.0)));
        assert!(c.contains(Point2::new(3.0, 1.0))); // boundary
        assert!(!c.contains(Point2::new(3.1, 1.0)));
        assert!(c.strictly_outside(Point2::new(4.0, 4.0)));
        assert!(!c.strictly_outside(Point2::new(2.0, 2.0)));
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_rejected() {
        let _ = Circle::new(Point2::ORIGIN, -1.0);
    }

    #[test]
    fn intersection_points_ordered_ccw_first() {
        let c0 = Circle::new(Point2::new(0.0, 0.0), 5.0);
        let c1 = Circle::new(Point2::new(6.0, 0.0), 5.0);
        if let CircleIntersection::Two(a, b) = c0.intersect(&c1) {
            assert!(a.y > 0.0);
            assert!(b.y < 0.0);
        } else {
            panic!("expected two intersections");
        }
    }
}
