//! Angles normalized to `[0, 2π)` with circular arithmetic.

use std::f64::consts::TAU;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An angle in radians, always normalized to the half-open interval
/// `[0, 2π)`.
///
/// Directions (`dir_u(v)` in the paper) and angular positions are represented
/// with this type so that circular comparisons — "is there a gap of more than
/// α between consecutive directions?" — cannot silently operate on
/// un-normalized values.
///
/// Ordering compares the normalized values, which corresponds to
/// counter-clockwise order starting from the positive x-axis.
///
/// # Example
///
/// ```
/// use cbtc_geom::Angle;
/// use std::f64::consts::PI;
///
/// let a = Angle::new(-PI / 2.0); // normalized to 3π/2
/// assert!((a.radians() - 3.0 * PI / 2.0).abs() < 1e-12);
/// assert!((a.circular_distance(Angle::ZERO) - PI / 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle (positive x-axis).
    pub const ZERO: Angle = Angle(0.0);

    /// Creates an angle from radians, normalizing into `[0, 2π)`.
    ///
    /// Accepts any finite value, including negative angles and values beyond
    /// a full turn.
    ///
    /// # Panics
    ///
    /// Panics if `radians` is not finite.
    pub fn new(radians: f64) -> Self {
        assert!(radians.is_finite(), "angle must be finite, got {radians}");
        let mut r = radians % TAU;
        if r < 0.0 {
            r += TAU;
        }
        // `-1e-20 % TAU` can round to TAU itself; fold it back to 0.
        if r >= TAU {
            r = 0.0;
        }
        Angle(r)
    }

    /// Creates an angle from degrees.
    pub fn from_degrees(degrees: f64) -> Self {
        Angle::new(degrees.to_radians())
    }

    /// The normalized value in radians, in `[0, 2π)`.
    pub fn radians(self) -> f64 {
        self.0
    }

    /// The normalized value in degrees, in `[0, 360)`.
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// The counter-clockwise arc length from `self` to `other`, in
    /// `[0, 2π)`.
    ///
    /// This is the "gap" between two consecutive directions when sweeping
    /// counter-clockwise, exactly the quantity scanned by the `gap-α` test.
    pub fn ccw_to(self, other: Angle) -> f64 {
        let d = other.0 - self.0;
        if d < 0.0 {
            d + TAU
        } else {
            d
        }
    }

    /// The undirected circular distance between two angles, in `[0, π]`.
    ///
    /// This is `|θ − θ′| mod 2π` folded into `[0, π]`, the metric used by the
    /// coverage operator `coverα(dir)` in §3.1.
    pub fn circular_distance(self, other: Angle) -> f64 {
        let d = (self.0 - other.0).abs();
        d.min(TAU - d)
    }

    /// Rotates by `delta` radians (counter-clockwise when positive).
    pub fn rotated(self, delta: f64) -> Angle {
        Angle::new(self.0 + delta)
    }

    /// The diametrically opposite direction (`self + π`).
    pub fn opposite(self) -> Angle {
        self.rotated(std::f64::consts::PI)
    }

    /// Total order on normalized values.
    ///
    /// `Angle` stores a finite, normalized `f64`, so the order is total even
    /// though `f64` itself only implements `PartialOrd`.
    pub fn total_cmp(&self, other: &Angle) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::ZERO
    }
}

impl Eq for Angle {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Angle {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} rad", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, PI};

    #[test]
    fn normalization_wraps_into_range() {
        assert_eq!(Angle::new(0.0).radians(), 0.0);
        assert!((Angle::new(TAU + 1.0).radians() - 1.0).abs() < 1e-12);
        assert!((Angle::new(-FRAC_PI_2).radians() - 1.5 * PI).abs() < 1e-12);
        assert_eq!(Angle::new(TAU).radians(), 0.0);
        assert!((Angle::new(-3.0 * TAU + 0.5).radians() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_negative_does_not_produce_tau() {
        let a = Angle::new(-1e-300);
        assert!(a.radians() < TAU);
        assert!(a.radians() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = Angle::new(f64::NAN);
    }

    #[test]
    fn degrees_round_trip() {
        let a = Angle::from_degrees(150.0);
        assert!((a.degrees() - 150.0).abs() < 1e-12);
        assert!((a.radians() - 5.0 * PI / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ccw_to_measures_counterclockwise_arc() {
        let a = Angle::new(FRAC_PI_2);
        let b = Angle::new(PI);
        assert!((a.ccw_to(b) - FRAC_PI_2).abs() < 1e-12);
        assert!((b.ccw_to(a) - 1.5 * PI).abs() < 1e-12);
        assert_eq!(a.ccw_to(a), 0.0);
    }

    #[test]
    fn circular_distance_is_symmetric_and_folded() {
        let a = Angle::new(0.1);
        let b = Angle::new(TAU - 0.1);
        assert!((a.circular_distance(b) - 0.2).abs() < 1e-12);
        assert!((b.circular_distance(a) - 0.2).abs() < 1e-12);
        let c = Angle::new(PI);
        assert!((Angle::ZERO.circular_distance(c) - PI).abs() < 1e-12);
    }

    #[test]
    fn opposite_is_involutive() {
        let a = Angle::new(FRAC_PI_3);
        assert!(a.opposite().opposite().circular_distance(a) < 1e-12);
        assert!((a.circular_distance(a.opposite()) - PI).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_ccw_from_positive_x_axis() {
        let mut v = vec![Angle::new(3.0), Angle::new(1.0), Angle::new(2.0)];
        v.sort();
        assert_eq!(v, vec![Angle::new(1.0), Angle::new(2.0), Angle::new(3.0)]);
    }

    #[test]
    fn rotated_composes() {
        let a = Angle::new(1.0).rotated(2.0).rotated(-0.5);
        assert!((a.radians() - 2.5).abs() < 1e-12);
    }
}
