//! Cones of a given angular degree, as used throughout the paper's proofs.

use serde::{Deserialize, Serialize};

use crate::{Alpha, Angle, Point2};

/// A cone of degree `α` with a given apex and bisector direction.
///
/// `cone(u, α, v)` in the paper is the cone of degree `α` with apex `u`
/// bisected by the ray from `u` through `v` (Figure 3); it is the region the
/// proof of Lemma 2.2 reasons about. Membership here is *angular*: a point
/// belongs to the cone when its direction from the apex deviates from the
/// bisector by at most `α/2` (distance from the apex is not restricted).
///
/// # Example
///
/// ```
/// use cbtc_geom::{Alpha, Cone, Point2};
///
/// let u = Point2::new(0.0, 0.0);
/// let v = Point2::new(1.0, 0.0);
/// let cone = Cone::bisected_by(u, Alpha::TWO_PI_THIRDS, v);
/// assert!(cone.contains(Point2::new(1.0, 1.0)));   // 45° off-axis < 60°
/// assert!(!cone.contains(Point2::new(-1.0, 0.1))); // behind the apex
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cone {
    apex: Point2,
    bisector: Angle,
    degree: Alpha,
}

impl Cone {
    /// Creates a cone from its apex, bisector direction and degree.
    pub fn new(apex: Point2, bisector: Angle, degree: Alpha) -> Self {
        Cone {
            apex,
            bisector,
            degree,
        }
    }

    /// The paper's `cone(u, α, v)`: the cone of degree `α` with apex `u`
    /// bisected by the line through `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `u == v` (the bisector is undefined).
    pub fn bisected_by(u: Point2, degree: Alpha, v: Point2) -> Self {
        Cone::new(u, u.direction_to(v), degree)
    }

    /// The apex of the cone.
    pub fn apex(&self) -> Point2 {
        self.apex
    }

    /// The bisector direction.
    pub fn bisector(&self) -> Angle {
        self.bisector
    }

    /// The angular degree of the cone.
    pub fn degree(&self) -> Alpha {
        self.degree
    }

    /// Whether direction `dir` (as seen from the apex) falls inside the
    /// cone, boundary included.
    pub fn contains_direction(&self, dir: Angle) -> bool {
        self.bisector.circular_distance(dir) <= self.degree.half() + crate::EPS
    }

    /// Whether point `p` falls inside the cone, boundary included.
    ///
    /// The apex itself is considered contained.
    pub fn contains(&self, p: Point2) -> bool {
        if p == self.apex {
            return true;
        }
        self.contains_direction(self.apex.direction_to(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn cone_to_east(alpha: Alpha) -> Cone {
        Cone::bisected_by(Point2::ORIGIN, alpha, Point2::new(1.0, 0.0))
    }

    #[test]
    fn membership_is_angular_not_radial() {
        let c = cone_to_east(Alpha::TWO_PI_THIRDS);
        // Any distance along the bisector is inside.
        assert!(c.contains(Point2::new(1e-9, 0.0)));
        assert!(c.contains(Point2::new(1e9, 0.0)));
    }

    #[test]
    fn boundary_directions_are_contained() {
        let c = cone_to_east(Alpha::TWO_PI_THIRDS);
        // Exactly α/2 = 60° off-axis.
        let on_edge = Point2::new(0.5, 0.5 * 3.0_f64.sqrt());
        assert!(c.contains(on_edge));
        let just_outside = Point2::ORIGIN.offset(Angle::new(PI / 3.0 + 1e-6), 1.0);
        assert!(!c.contains(just_outside));
    }

    #[test]
    fn apex_is_contained() {
        let c = cone_to_east(Alpha::FIVE_PI_SIXTHS);
        assert!(c.contains(Point2::ORIGIN));
    }

    #[test]
    fn full_circle_cone_contains_everything() {
        let full = Alpha::new(2.0 * PI).unwrap();
        let c = cone_to_east(full);
        for k in 0..16 {
            let dir = Angle::new(k as f64 * PI / 8.0);
            assert!(c.contains(Point2::ORIGIN.offset(dir, 3.0)));
        }
    }

    #[test]
    fn bisected_by_points_at_target() {
        let u = Point2::new(2.0, 3.0);
        let v = Point2::new(5.0, 7.0);
        let c = Cone::bisected_by(u, Alpha::TWO_PI_THIRDS, v);
        assert!(c.contains(v));
        assert_eq!(c.apex(), u);
        assert!(c.bisector().circular_distance(u.direction_to(v)) < 1e-15);
    }

    #[test]
    fn wraparound_membership() {
        // Cone pointing along +x axis: directions slightly below the axis
        // (angle ≈ 2π − ε) must be contained.
        let c = cone_to_east(Alpha::TWO_PI_THIRDS);
        assert!(c.contains(Point2::new(1.0, -0.1)));
        assert!(c.contains(Point2::new(1.0, 0.1)));
    }
}
