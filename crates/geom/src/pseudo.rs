//! Trig-free circular ordering and cone tests: pseudo-angles.
//!
//! The CBTC growing phase (§3, Figure 1) asks two angular questions per
//! discovery: *where does this direction sit among the ones already seen*
//! (ordering), and *does the counter-clockwise span between two
//! consecutive directions exceed α* (the cone / α-gap test). Both are
//! usually answered by materializing real angles with `atan2` — the
//! single most expensive instruction in the construction hot loop.
//!
//! This module answers both questions **without trigonometry**:
//!
//! * [`PseudoAngle`] — the "diamond angle": a monotone, order-preserving
//!   map of a direction vector onto `[0, 4)` costing one divide, used to
//!   *sort* directions exactly as their `atan2` angles would sort;
//! * [`ConeTest`] — the §3 cone test `∠ccw(u→v) > θ` evaluated from the
//!   cross/dot products' sign-quadrant plus one linear form in
//!   `(cos θ, sin θ)` (precomputed once per α), used to *compare a span
//!   against α* with two multiplies;
//! * [`PseudoGapTracker`] — the incremental α-gap test of the growing
//!   phase built from the two: a flat direction set sorted by
//!   pseudo-angle whose consecutive spans are classified by [`ConeTest`],
//!   so a node's entire growth runs zero `atan2` calls.
//!
//! Real angles stay available lazily — callers that need `dir_u(v)` for
//! the protocol layer (angle-of-arrival, coverage, serialization) compute
//! them where needed via [`crate::Vec2::angle`].
//!
//! ## Equivalence to the `Angle` path, and its limits
//!
//! Mathematically the diamond map is strictly increasing in the true
//! angle and the cone test computes the exact sign of `sin(φ − θ)`, so
//! both agree with the `atan2`-based formulation *exactly* — the
//! property tests in `tests/proptest_pseudo.rs` exercise ordering,
//! verdicts, axis/diagonal boundaries and collinear ties. In floating
//! point each side rounds differently, so verdicts can differ for spans
//! within ~1 ulp of the threshold. The default construction keys its
//! flat tracker on radians ([`crate::gap::FlatGapTracker`]) precisely so
//! the shipped statistics stay *bit-identical* to the historical path;
//! this kernel is the measured trig-free alternative (see the
//! `hot_paths` microbenches) whose verdicts agree everywhere outside
//! that ulp band — which the [`crate::EPS`] tolerance (1e-9, ~10⁷ ulps
//! at π) keeps empty in practice.

use std::cmp::Ordering;
use std::f64::consts::TAU;

use crate::{Alpha, Vec2};

/// A pseudo-angle ("diamond angle"): the direction of a non-zero vector
/// mapped monotonically onto `[0, 4)`, quadrant by quadrant, with one
/// divide and no trigonometry.
///
/// The map sends the positive x-axis to `0`, the positive y-axis to `1`,
/// the negative x-axis to `2` and the negative y-axis to `3`; within each
/// quadrant it is a strictly increasing rational function of the true
/// angle, so sorting by pseudo-angle sorts by angle.
///
/// # Example
///
/// ```
/// use cbtc_geom::pseudo::PseudoAngle;
/// use cbtc_geom::Vec2;
///
/// let east = PseudoAngle::from_vector(Vec2::new(1.0, 0.0));
/// let north = PseudoAngle::from_vector(Vec2::new(0.0, 1.0));
/// let west = PseudoAngle::from_vector(Vec2::new(-2.0, 0.0));
/// assert_eq!(east.value(), 0.0);
/// assert_eq!(north.value(), 1.0);
/// assert_eq!(west.value(), 2.0);
/// assert!(east < north && north < west);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PseudoAngle(f64);

impl PseudoAngle {
    /// The pseudo-angle of the direction `(dx, dy)`.
    ///
    /// Scale-invariant: `(2dx, 2dy)` maps to the same value up to
    /// rounding of the single divide.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on the zero vector (its direction is
    /// undefined, exactly as for [`crate::Vec2::angle`]).
    pub fn from_components(dx: f64, dy: f64) -> Self {
        debug_assert!(
            dx != 0.0 || dy != 0.0,
            "pseudo-angle of the zero vector is undefined"
        );
        // Quadrant assignment matches `atan2`'s: boundaries (the axes)
        // belong to the quadrant they open, so each axis maps exactly to
        // an integer and the branches cover every non-zero vector.
        let value = if dx > 0.0 && dy >= 0.0 {
            dy / (dx + dy)
        } else if dx <= 0.0 && dy > 0.0 {
            1.0 + (-dx) / (dy - dx)
        } else if dx < 0.0 && dy <= 0.0 {
            2.0 + (-dy) / (-dx - dy)
        } else {
            3.0 + dx / (dx - dy)
        };
        PseudoAngle(value)
    }

    /// The pseudo-angle of a displacement vector.
    pub fn from_vector(v: Vec2) -> Self {
        Self::from_components(v.x, v.y)
    }

    /// The raw value in `[0, 4)`.
    ///
    /// Pseudo-units are *not* radians: only the order (and the quadrant
    /// integer part) carries meaning.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The quadrant of the direction, `0..=3`, counting counter-clockwise
    /// from the positive x-axis (axes included in the quadrant they
    /// open).
    pub fn quadrant(self) -> u8 {
        self.0 as u8
    }

    /// Total order on pseudo-angle values (the values are always finite).
    pub fn total_cmp(&self, other: &PseudoAngle) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Eq for PseudoAngle {}

impl PartialOrd for PseudoAngle {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PseudoAngle {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

/// The §3 cone test with a precomputed threshold: *is the
/// counter-clockwise angle from one direction to another strictly greater
/// than θ?* — evaluated per pair from two products and a sign, with no
/// trigonometry after construction.
///
/// Construction computes `(cos θ, sin θ)` once (the only trig calls) and
/// classifies θ into a quadrant by their signs using the same convention
/// as the query side. A query computes `c = cross(a, b)` and
/// `d = dot(a, b)`, reads the quadrant of the ccw angle `φ ∈ [0, 2π)`
/// from the signs of `(c, d)`, and resolves same-quadrant cases by the
/// sign of `c·cos θ − d·sin θ = |a||b|·sin(φ − θ)` (exact within a
/// quadrant, where `|φ − θ| < π/2`).
///
/// # Example
///
/// ```
/// use cbtc_geom::pseudo::ConeTest;
/// use cbtc_geom::Vec2;
/// use std::f64::consts::FRAC_PI_2;
///
/// let quarter = ConeTest::new(FRAC_PI_2);
/// let east = Vec2::new(1.0, 0.0);
/// assert!(!quarter.exceeded_by(east, Vec2::new(0.0, 1.0))); // exactly π/2
/// assert!(quarter.exceeded_by(east, Vec2::new(-1.0, 1.0))); // 3π/4
/// assert!(!quarter.exceeded_by(east, Vec2::new(1.0, 1.0))); // π/4
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ConeTest {
    cos: f64,
    sin: f64,
    /// Quadrant of θ under the query-side sign convention.
    quadrant: u8,
    /// θ ≥ 2π can never be exceeded by a ccw angle in `[0, 2π)`.
    never: bool,
}

impl ConeTest {
    /// A cone test for the threshold `theta` radians, `theta ∈ (0, 2π]`
    /// (values ≥ 2π are never exceeded; the α-gap callers reach them for
    /// `α = 2π`).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not finite or not positive — a non-positive
    /// threshold would make the zero span `φ = 0` "exceed", which no
    /// caller of a cone test means.
    pub fn new(theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta > 0.0,
            "cone threshold must be finite and positive, got {theta}"
        );
        if theta >= TAU {
            return ConeTest {
                cos: 1.0,
                sin: 0.0,
                quadrant: 3,
                never: true,
            };
        }
        // Snap the representable axis constants to exact unit vectors:
        // `sin(π)` rounds to +1.2e-16, which would shift an exactly-axial
        // threshold into the previous quadrant by ~1 ulp. Cone thresholds
        // of exactly π/2, π or 3π/2 are common in tests and theory code.
        const THREE_HALVES_PI: f64 = 3.0 * std::f64::consts::FRAC_PI_2;
        let (sin, cos) = if theta == std::f64::consts::FRAC_PI_2 {
            (1.0, 0.0)
        } else if theta == std::f64::consts::PI {
            (0.0, -1.0)
        } else if theta == THREE_HALVES_PI {
            (-1.0, 0.0)
        } else {
            theta.sin_cos()
        };
        // Same sign convention as `quadrant_of(c, d)` with c = sin θ,
        // d = cos θ. Residual near-axis rounding of non-snapped
        // thresholds stays self-consistent: the effective threshold is
        // the angle of the computed (cos, sin) pair, and both the
        // quadrant and the linear form below are exact for it.
        let quadrant = Self::quadrant_of(sin, cos);
        ConeTest {
            cos,
            sin,
            quadrant,
            never: false,
        }
    }

    /// The cone test for the strict α-gap threshold `α +`[`crate::EPS`] —
    /// the trig-free counterpart of [`crate::gap::has_alpha_gap`]'s
    /// comparison.
    pub fn for_alpha(alpha: Alpha) -> Self {
        Self::new(alpha.radians() + crate::EPS)
    }

    /// Quadrant in `0..=3` of the ccw angle whose sine has the sign of
    /// `c` and cosine the sign of `d` (both zero never happens for
    /// non-zero vectors). Boundaries: an angle on an axis belongs to the
    /// quadrant it opens, matching [`PseudoAngle::quadrant`].
    fn quadrant_of(c: f64, d: f64) -> u8 {
        if c >= 0.0 && d > 0.0 {
            0
        } else if c > 0.0 && d <= 0.0 {
            1
        } else if c <= 0.0 && d < 0.0 {
            2
        } else {
            3
        }
    }

    /// Whether the counter-clockwise angle from `from` to `to` strictly
    /// exceeds the threshold.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either vector is zero.
    pub fn exceeded_by(self, from: Vec2, to: Vec2) -> bool {
        debug_assert!(from != Vec2::ZERO && to != Vec2::ZERO);
        self.exceeded(from.cross(to), from.dot(to))
    }

    /// [`ConeTest::exceeded_by`] from a precomputed cross product `c` and
    /// dot product `d` — for callers that already have them.
    pub fn exceeded(self, c: f64, d: f64) -> bool {
        if self.never {
            return false;
        }
        let q = Self::quadrant_of(c, d);
        match q.cmp(&self.quadrant) {
            Ordering::Less => false,
            Ordering::Greater => true,
            // Same quadrant: sign of |a||b|·sin(φ − θ), exact there.
            Ordering::Equal => c * self.cos - d * self.sin > 0.0,
        }
    }
}

/// The incremental α-gap test of the growing phase with **zero `atan2`
/// calls**: directions are kept sorted by [`PseudoAngle`], and each
/// consecutive span is classified against α by one [`ConeTest`].
///
/// This is the trig-free sibling of [`crate::gap::FlatGapTracker`]: the
/// same flat sorted-vec layout and the same O(1) open-gap count per
/// insertion (an insertion splits exactly one span into two), but keyed
/// on pseudo-angles with spans judged from cross/dot signs instead of
/// radian differences. Verdicts agree with the `Angle` path except for
/// spans within ~1 ulp of the threshold (see the module docs); the
/// property suite checks agreement across random and exact-boundary
/// layouts.
///
/// Directions are deduplicated by pseudo-angle bits — the same rule as
/// the `Angle` trackers' dedup by normalized-radian bits, transported
/// through the diamond map.
///
/// # Example
///
/// ```
/// use cbtc_geom::pseudo::PseudoGapTracker;
/// use cbtc_geom::{Alpha, Vec2};
///
/// let mut t = PseudoGapTracker::new(Alpha::TWO_PI_THIRDS);
/// assert!(t.has_open_gap());
/// for (x, y) in [(1.0, 0.0), (-0.5, 0.866_025_403_784_438_7), (-0.5, -0.866_025_403_784_438_7)] {
///     t.insert(Vec2::new(x, y));
/// }
/// // Three directions 2π/3 apart: no gap of more than 2π/3 remains.
/// assert!(!t.has_open_gap());
/// ```
#[derive(Debug, Clone)]
pub struct PseudoGapTracker {
    /// Distinct directions in ccw order: `(pseudo-angle bits, vector)`.
    dirs: Vec<(u64, Vec2)>,
    cone: ConeTest,
    /// Number of consecutive-direction spans (wrap-around included)
    /// exceeding the threshold; meaningful when `dirs.len() ≥ 2`.
    open: usize,
    /// Whether the full-circle gap of an empty/singleton set exceeds α.
    full_circle_open: bool,
}

impl PseudoGapTracker {
    /// An empty tracker for the strict α-gap threshold `α +`
    /// [`crate::EPS`].
    pub fn new(alpha: Alpha) -> Self {
        let mut t = PseudoGapTracker {
            dirs: Vec::new(),
            cone: ConeTest::for_alpha(alpha),
            open: 0,
            full_circle_open: false,
        };
        t.reset(alpha);
        t
    }

    /// Forgets all directions and re-arms for `alpha`, keeping the
    /// allocation — the scratch-reuse entry point.
    pub fn reset(&mut self, alpha: Alpha) {
        self.dirs.clear();
        self.cone = ConeTest::for_alpha(alpha);
        self.open = 0;
        // A full 2π sweep exceeds α + EPS for every α < 2π; mirrors
        // `TAU > α + EPS` on the radian path (false only for α = 2π).
        self.full_circle_open = TAU > alpha.radians() + crate::EPS;
    }

    /// Number of *distinct* directions tracked.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether no direction has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// Inserts a direction vector. Duplicates (by pseudo-angle) are
    /// no-ops.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on the zero vector.
    pub fn insert(&mut self, dir: Vec2) {
        let key = PseudoAngle::from_vector(dir).value().to_bits();
        let i = self.dirs.partition_point(|&(k, _)| k < key);
        if self.dirs.get(i).is_some_and(|&(k, _)| k == key) {
            return;
        }
        match self.dirs.len() {
            0 => {}
            1 => {
                let other = self.dirs[0].1;
                self.open = usize::from(self.cone.exceeded_by(other, dir))
                    + usize::from(self.cone.exceeded_by(dir, other));
            }
            n => {
                let pred = if i == 0 {
                    self.dirs[n - 1].1
                } else {
                    self.dirs[i - 1].1
                };
                let succ = if i == n {
                    self.dirs[0].1
                } else {
                    self.dirs[i].1
                };
                self.open -= usize::from(self.cone.exceeded_by(pred, succ));
                self.open += usize::from(self.cone.exceeded_by(pred, dir));
                self.open += usize::from(self.cone.exceeded_by(dir, succ));
            }
        }
        self.dirs.insert(i, (key, dir));
    }

    /// The incremental `gap-α(Du)` verdict: `true` iff some cone of
    /// degree α around the node contains no inserted direction.
    pub fn has_open_gap(&self) -> bool {
        if self.dirs.len() < 2 {
            self.full_circle_open
        } else {
            self.open > 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::GapTracker;
    use crate::Point2;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, PI};

    #[test]
    fn axes_map_to_integers() {
        for (v, expect) in [
            (Vec2::new(1.0, 0.0), 0.0),
            (Vec2::new(0.0, 1.0), 1.0),
            (Vec2::new(-1.0, 0.0), 2.0),
            (Vec2::new(0.0, -1.0), 3.0),
            (Vec2::new(3.0, 3.0), 0.5),
            (Vec2::new(-2.0, 2.0), 1.5),
            (Vec2::new(-5.0, -5.0), 2.5),
            (Vec2::new(4.0, -4.0), 3.5),
        ] {
            assert_eq!(PseudoAngle::from_vector(v).value(), expect, "{v}");
        }
    }

    #[test]
    fn scale_invariant_on_representable_scalings() {
        let v = Vec2::new(3.0, -7.0);
        let a = PseudoAngle::from_vector(v);
        let b = PseudoAngle::from_vector(v * 4.0);
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_matches_atan2_on_a_fan() {
        // 96 directions spread over the full circle, deliberately
        // including near-axis rays.
        let vectors: Vec<Vec2> = (0..96)
            .map(|k| {
                let a = k as f64 * TAU / 96.0 + 1e-3;
                Vec2::new(a.cos(), a.sin())
            })
            .collect();
        let mut by_pseudo = vectors.clone();
        by_pseudo.sort_by(|a, b| PseudoAngle::from_vector(*a).cmp(&PseudoAngle::from_vector(*b)));
        let mut by_angle = vectors;
        by_angle.sort_by(|a, b| a.angle().total_cmp(&b.angle()));
        assert_eq!(by_pseudo, by_angle);
    }

    #[test]
    fn quadrants_agree_with_angle() {
        // Exact integer vectors, one interior ray and one opening axis
        // per quadrant — no trig rounding on either side.
        for (v, expect) in [
            (Vec2::new(1.0, 0.0), 0),
            (Vec2::new(2.0, 1.0), 0),
            (Vec2::new(0.0, 1.0), 1),
            (Vec2::new(-1.0, 2.0), 1),
            (Vec2::new(-1.0, 0.0), 2),
            (Vec2::new(-2.0, -1.0), 2),
            (Vec2::new(0.0, -1.0), 3),
            (Vec2::new(1.0, -2.0), 3),
        ] {
            assert_eq!(PseudoAngle::from_vector(v).quadrant(), expect, "{v}");
            let q_true = (v.angle().radians() / FRAC_PI_2) as u8 % 4;
            assert_eq!(PseudoAngle::from_vector(v).quadrant(), q_true, "{v}");
        }
    }

    #[test]
    fn cone_test_matches_ccw_to_away_from_ties() {
        let thetas = [0.3, FRAC_PI_2, FRAC_PI_3, 2.0, PI, 4.0, 6.0];
        for &theta in &thetas {
            let cone = ConeTest::new(theta);
            for i in 0..40 {
                for j in 0..40 {
                    let (a, b) = (i as f64 * TAU / 40.0, j as f64 * TAU / 40.0 + 0.013);
                    let (va, vb) = (Vec2::new(a.cos(), a.sin()), Vec2::new(b.cos(), b.sin()));
                    let gap = va.angle().ccw_to(vb.angle());
                    if (gap - theta).abs() < 1e-9 {
                        continue; // ulp-band: the two formulations may differ
                    }
                    assert_eq!(
                        cone.exceeded_by(va, vb),
                        gap > theta,
                        "theta={theta} a={a} b={b} gap={gap}"
                    );
                }
            }
        }
    }

    #[test]
    fn cone_test_exact_at_axis_boundaries() {
        let half = ConeTest::new(PI);
        let east = Vec2::new(1.0, 0.0);
        assert!(!half.exceeded_by(east, Vec2::new(-1.0, 0.0))); // exactly π
        assert!(half.exceeded_by(east, Vec2::new(-1.0, -1e-9))); // just past π
        assert!(!half.exceeded_by(east, Vec2::new(-1.0, 1e-9))); // just short
        let full = ConeTest::new(TAU);
        assert!(!full.exceeded_by(east, Vec2::new(0.0, -1.0)));
        assert!(!full.exceeded_by(east, Vec2::new(1.0, -1e-12)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = ConeTest::new(0.0);
    }

    #[test]
    fn tracker_matches_angle_tracker_on_a_stream() {
        // Pseudo-random unit vectors; after every insertion the pseudo
        // tracker's verdict must match the radian tracker's.
        let alpha = Alpha::FIVE_PI_SIXTHS;
        let mut pseudo = PseudoGapTracker::new(alpha);
        let mut radian = GapTracker::new();
        let origin = Point2::ORIGIN;
        for i in 0..128 {
            let a = (i as f64 * 0.754_877_666_246_692_8).fract() * TAU;
            let p = Point2::new(a.cos() * 10.0, a.sin() * 10.0);
            pseudo.insert(p - origin);
            radian.insert(origin.direction_to(p));
            assert_eq!(
                pseudo.has_open_gap(),
                radian.has_alpha_gap(alpha),
                "after {} insertions",
                i + 1
            );
            assert_eq!(pseudo.len(), radian.len());
        }
    }

    #[test]
    fn tracker_exact_three_cover_and_reset() {
        let alpha = Alpha::TWO_PI_THIRDS;
        let mut t = PseudoGapTracker::new(alpha);
        assert!(t.is_empty() && t.has_open_gap());
        let third = TAU / 3.0;
        for k in 0..3 {
            let a = k as f64 * third;
            t.insert(Vec2::new(a.cos(), a.sin()));
        }
        assert_eq!(t.len(), 3);
        assert!(!t.has_open_gap(), "gaps of exactly 2π/3 are not α-gaps");
        t.reset(alpha);
        assert!(t.is_empty() && t.has_open_gap());
        // Duplicates are no-ops.
        t.insert(Vec2::new(1.0, 0.0));
        t.insert(Vec2::new(1.0, 0.0));
        assert_eq!(t.len(), 1);
        assert!(t.has_open_gap(), "a single direction leaves a 2π sweep");
    }

    #[test]
    fn full_circle_alpha_never_opens() {
        let tau_alpha = Alpha::new(TAU).unwrap();
        let mut t = PseudoGapTracker::new(tau_alpha);
        assert!(!t.has_open_gap(), "no gap can exceed 2π");
        t.insert(Vec2::new(1.0, 0.0));
        assert!(!t.has_open_gap());
        t.insert(Vec2::new(0.0, 1.0));
        assert!(!t.has_open_gap());
    }
}
