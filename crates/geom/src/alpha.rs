//! The validated cone-degree parameter `α`.

use std::f64::consts::{PI, TAU};
use std::fmt;

use serde::{Deserialize, Serialize};

/// The cone-degree parameter `α ∈ (0, 2π]` taken by `CBTC(α)`.
///
/// The paper's analysis distinguishes three regimes:
///
/// * `α ≤ 2π/3` — connectivity is preserved even by the *largest symmetric
///   subset* `E⁻_α` of `N_α` (asymmetric edge removal, Theorem 3.2);
/// * `α ≤ 5π/6` — connectivity is preserved by the symmetric closure `E_α`
///   (Theorem 2.1), and `5π/6` is tight (Theorem 2.4);
/// * `α > 5π/6` — connectivity may be lost.
///
/// The distinguished constants [`Alpha::TWO_PI_THIRDS`] and
/// [`Alpha::FIVE_PI_SIXTHS`] mark the first two thresholds.
///
/// # Example
///
/// ```
/// use cbtc_geom::Alpha;
///
/// let a = Alpha::FIVE_PI_SIXTHS;
/// assert!(a.preserves_connectivity());
/// assert!(!a.supports_asymmetric_removal());
/// assert!(Alpha::TWO_PI_THIRDS.supports_asymmetric_removal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Alpha(f64);

impl Alpha {
    /// `α = 2π/3`: the largest degree for which asymmetric edge removal
    /// (keeping only mutual edges, §3.2) still preserves connectivity.
    pub const TWO_PI_THIRDS: Alpha = Alpha(2.0 * PI / 3.0);

    /// `α = 5π/6`: the tight connectivity threshold of Theorems 2.1/2.4.
    pub const FIVE_PI_SIXTHS: Alpha = Alpha(5.0 * PI / 6.0);

    /// Creates a validated cone degree.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAlphaError`] when `radians` is not finite or lies
    /// outside `(0, 2π]`.
    pub fn new(radians: f64) -> Result<Self, InvalidAlphaError> {
        if !radians.is_finite() || radians <= 0.0 || radians > TAU {
            return Err(InvalidAlphaError { radians });
        }
        Ok(Alpha(radians))
    }

    /// Creates a cone degree without validation.
    ///
    /// Intended for compile-time constants and tests; invalid values will
    /// make gap tests meaningless rather than cause memory unsafety.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-range input.
    pub fn new_unchecked(radians: f64) -> Self {
        debug_assert!(radians.is_finite() && radians > 0.0 && radians <= TAU);
        Alpha(radians)
    }

    /// The cone degree in radians.
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Half of the cone degree (`α/2`), the half-width used by cone
    /// membership and coverage tests.
    pub fn half(self) -> f64 {
        self.0 / 2.0
    }

    /// Whether Theorem 2.1 applies: `α ≤ 5π/6` guarantees that the symmetric
    /// closure `G_α` preserves the connectivity of `G_R`.
    ///
    /// A small tolerance absorbs rounding in values computed as, e.g.,
    /// `150.0_f64.to_radians()`.
    pub fn preserves_connectivity(self) -> bool {
        self.0 <= Alpha::FIVE_PI_SIXTHS.0 + crate::EPS
    }

    /// Whether Theorem 3.2 applies: `α ≤ 2π/3` allows dropping *all*
    /// asymmetric edges (using `E⁻_α` instead of `E_α`) while preserving
    /// connectivity.
    pub fn supports_asymmetric_removal(self) -> bool {
        self.0 <= Alpha::TWO_PI_THIRDS.0 + crate::EPS
    }
}

impl fmt::Display for Alpha {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render the two canonical values symbolically for readability in
        // experiment output.
        if (self.0 - Alpha::FIVE_PI_SIXTHS.0).abs() < 1e-12 {
            write!(f, "5π/6")
        } else if (self.0 - Alpha::TWO_PI_THIRDS.0).abs() < 1e-12 {
            write!(f, "2π/3")
        } else {
            write!(f, "{:.4} rad", self.0)
        }
    }
}

/// Error returned by [`Alpha::new`] for values outside `(0, 2π]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidAlphaError {
    radians: f64,
}

impl InvalidAlphaError {
    /// The rejected value.
    pub fn radians(&self) -> f64 {
        self.radians
    }
}

impl fmt::Display for InvalidAlphaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cone degree must be a finite value in (0, 2π], got {}",
            self.radians
        )
    }
}

impl std::error::Error for InvalidAlphaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_values() {
        assert!((Alpha::FIVE_PI_SIXTHS.radians() - 5.0 * PI / 6.0).abs() < 1e-15);
        assert!((Alpha::TWO_PI_THIRDS.radians() - 2.0 * PI / 3.0).abs() < 1e-15);
        assert_eq!(Alpha::FIVE_PI_SIXTHS.to_string(), "5π/6");
        assert_eq!(Alpha::TWO_PI_THIRDS.to_string(), "2π/3");
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(Alpha::new(0.0).is_err());
        assert!(Alpha::new(-1.0).is_err());
        assert!(Alpha::new(TAU + 0.1).is_err());
        assert!(Alpha::new(f64::INFINITY).is_err());
        assert!(Alpha::new(f64::NAN).is_err());
        assert!(Alpha::new(TAU).is_ok());
        assert!(Alpha::new(1e-12).is_ok());
    }

    #[test]
    fn threshold_predicates() {
        assert!(Alpha::TWO_PI_THIRDS.preserves_connectivity());
        assert!(Alpha::FIVE_PI_SIXTHS.preserves_connectivity());
        assert!(!Alpha::new(5.0 * PI / 6.0 + 0.01)
            .unwrap()
            .preserves_connectivity());

        assert!(Alpha::TWO_PI_THIRDS.supports_asymmetric_removal());
        assert!(!Alpha::FIVE_PI_SIXTHS.supports_asymmetric_removal());
        assert!(Alpha::new(2.0 * PI / 3.0 - 0.01)
            .unwrap()
            .supports_asymmetric_removal());
    }

    #[test]
    fn radians_computed_from_degrees_pass_thresholds() {
        // 150° expressed via to_radians() must still count as ≤ 5π/6.
        let a = Alpha::new(150.0_f64.to_radians()).unwrap();
        assert!(a.preserves_connectivity());
        let b = Alpha::new(120.0_f64.to_radians()).unwrap();
        assert!(b.supports_asymmetric_removal());
    }

    #[test]
    fn error_reports_value() {
        let e = Alpha::new(-2.0).unwrap_err();
        assert_eq!(e.radians(), -2.0);
        assert!(e.to_string().contains("-2"));
    }

    #[test]
    fn half_is_half() {
        assert!((Alpha::FIVE_PI_SIXTHS.half() - 5.0 * PI / 12.0).abs() < 1e-15);
    }
}
