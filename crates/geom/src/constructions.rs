//! The paper's exact point constructions.
//!
//! Two figures in the paper are *constructions* — carefully placed point
//! sets witnessing a claim:
//!
//! * **Example 2.1 / Figure 2** — `N_α` need not be symmetric: for
//!   `2π/3 < α ≤ 5π/6` there is a 5-node placement with
//!   `(v, u0) ∈ N_α` but `(u0, v) ∉ N_α`.
//! * **Theorem 2.4 / Figure 5** — for `α = 5π/6 + ε` there is an 8-node
//!   placement whose max-power graph `G_R` is connected while `G_α` is not.
//!
//! Both are reproduced here *exactly* (solving the paper's constraints in
//! closed form) so the test-suite and the `figure2_figure5` experiment can
//! check every stated property and run the actual algorithm on them.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, PI};
use std::fmt;

use crate::{Alpha, Angle, Point2};

/// Error returned when a construction parameter is outside the range the
/// paper's argument needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructionError {
    what: String,
}

impl ConstructionError {
    fn new(what: impl Into<String>) -> Self {
        ConstructionError { what: what.into() }
    }
}

impl fmt::Display for ConstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid construction parameter: {}", self.what)
    }
}

impl std::error::Error for ConstructionError {}

/// Example 2.1 (Figure 2): asymmetry of the neighbor relation `N_α`.
///
/// Five nodes `u0, u1, u2, u3, v` with `d(u0, v) = R`, placed so that when
/// every node runs `CBTC(α)` with `2π/3 < α ≤ 5π/6`:
///
/// * `N_α(u0) = {u1, u2, u3}` — `u0` stops growing before reaching `v`;
/// * `N_α(v) = {u0}` — `v` reaches max power and only finds `u0`;
///
/// hence `(v, u0) ∈ N_α` but `(u0, v) ∉ N_α`, showing why `E_α` must take
/// the symmetric closure.
///
/// The paper's parameter `ε = α/2 − π/3 ∈ (0, π/12]` is derived from `α`.
#[derive(Debug, Clone, PartialEq)]
pub struct Example21 {
    /// Max communication radius `R`.
    pub r: f64,
    /// The cone degree `α ∈ (2π/3, 5π/6]` the example is built for.
    pub alpha: Alpha,
    /// The derived `ε = α/2 − π/3`.
    pub epsilon: f64,
    /// Node `u0` (at the origin).
    pub u0: Point2,
    /// Node `u1`, above the `u0–v` line at angle `π/3 + ε`.
    pub u1: Point2,
    /// Node `u2`, mirror of `u1` below the line.
    pub u2: Point2,
    /// Node `u3`, behind `u0` at distance `R/2`.
    pub u3: Point2,
    /// Node `v`, at distance exactly `R` from `u0`.
    pub v: Point2,
}

impl Example21 {
    /// Builds the construction for radius `r` and cone degree `alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `r > 0` and `2π/3 < α ≤ 5π/6` (the range for
    /// which the paper's example applies).
    pub fn new(r: f64, alpha: Alpha) -> Result<Self, ConstructionError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(ConstructionError::new(format!(
                "radius {r} must be positive"
            )));
        }
        let a = alpha.radians();
        if a <= 2.0 * FRAC_PI_3 + 1e-12 || a > 5.0 * PI / 6.0 + 1e-12 {
            return Err(ConstructionError::new(format!(
                "Example 2.1 requires 2π/3 < α ≤ 5π/6, got {alpha}"
            )));
        }
        let epsilon = a / 2.0 - FRAC_PI_3;
        let u0 = Point2::ORIGIN;
        let v = Point2::new(r, 0.0);
        // Triangle u0–v–u1: angle π/3+ε at u0, π/3−ε at v, π/3 at u1.
        // Law of sines with side u0–v = R opposite the angle at u1.
        let d_u01 = r * (FRAC_PI_3 - epsilon).sin() / FRAC_PI_3.sin();
        let u1 = u0.offset(Angle::new(FRAC_PI_3 + epsilon), d_u01);
        let u2 = u0.offset(Angle::new(-(FRAC_PI_3 + epsilon)), d_u01);
        let u3 = Point2::new(-r / 2.0, 0.0);
        Ok(Example21 {
            r,
            alpha,
            epsilon,
            u0,
            u1,
            u2,
            u3,
            v,
        })
    }

    /// The five nodes in the order `[u0, u1, u2, u3, v]`.
    pub fn points(&self) -> Vec<Point2> {
        vec![self.u0, self.u1, self.u2, self.u3, self.v]
    }

    /// Index of `u0` in [`Self::points`].
    pub const U0: usize = 0;
    /// Index of `v` in [`Self::points`].
    pub const V: usize = 4;
}

/// Theorem 2.4 (Figure 5): for `α = 5π/6 + ε`, `CBTC(α)` can disconnect a
/// connected graph.
///
/// Eight nodes in two clusters (`u0..u3` and `v0..v3`) with `d(u0,v0) = R`
/// and **every other** cross-cluster distance strictly greater than `R`, so
/// `(u0, v0)` is the only inter-cluster edge of `G_R`. The placement makes
/// `u0` (resp. `v0`) terminate `CBTC(α)` at power below `p(R)` — the cone
/// towards the other cluster is covered by `u1/u2/u3` — so the bridging edge
/// disappears from `G_α` and the clusters disconnect.
///
/// The v-cluster is the u-cluster rotated by `π` about the midpoint of
/// `u0–v0`, exactly as in the paper's symmetric figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem24 {
    /// Max communication radius `R`.
    pub r: f64,
    /// The slack `ε > 0`; the construction defeats `α = 5π/6 + ε`.
    pub epsilon: f64,
    /// The cone degree `α = 5π/6 + ε` this construction defeats.
    pub alpha: Alpha,
    /// u-cluster: `u0` at the origin.
    pub u0: Point2,
    /// `u1` straight above `u0` (`∠u1·u0·v0 = π/2`).
    pub u1: Point2,
    /// `u2` at angle `π/2 + α` from the `u0→v0` direction, distance `R/2`.
    pub u2: Point2,
    /// `u3` on the horizontal line through `s′` (the lower intersection of
    /// the two radius-`R` circles), slightly left of `s′`.
    pub u3: Point2,
    /// v-cluster: `v0` at `(R, 0)`.
    pub v0: Point2,
    /// Rotated image of `u1`.
    pub v1: Point2,
    /// Rotated image of `u2`.
    pub v2: Point2,
    /// Rotated image of `u3`.
    pub v3: Point2,
}

impl Theorem24 {
    /// Builds the construction for radius `r` and slack `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `r > 0` and `0 < ε ≤ π/6` (so that
    /// `α = 5π/6 + ε ≤ π`, matching the paper's `min(α, π)` step).
    pub fn new(r: f64, epsilon: f64) -> Result<Self, ConstructionError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(ConstructionError::new(format!(
                "radius {r} must be positive"
            )));
        }
        if !(epsilon.is_finite() && epsilon > 0.0 && epsilon <= PI / 6.0) {
            return Err(ConstructionError::new(format!(
                "Theorem 2.4 requires 0 < ε ≤ π/6, got {epsilon}"
            )));
        }
        let alpha = Alpha::new(5.0 * PI / 6.0 + epsilon)
            .map_err(|e| ConstructionError::new(e.to_string()))?;

        let u0 = Point2::ORIGIN;
        let v0 = Point2::new(r, 0.0);

        // u3 sits on the line y = −√3·R/2 (through s′, parallel to u0v0) at
        // polar angle −(π/3 + ε/2) from u0, giving ∠u3·u0·u1 = 5π/6 + ε/2,
        // safely between 5π/6 and α = 5π/6 + ε.
        let theta3 = FRAC_PI_3 + epsilon / 2.0;
        let d_u3 = (3f64.sqrt() * r / 2.0) / theta3.sin();
        let u3 = u0.offset(Angle::new(-theta3), d_u3);
        // How far left of s′ = (R/2, −√3R/2) that lands.
        let delta = r / 2.0 - u3.x;
        debug_assert!(delta > 0.0);

        // u1 close enough to u0 that d(u3, v1) > R (paper: "choose d(v0,v1)
        // sufficiently small"); d ≤ δ/2 suffices (see DESIGN.md §5).
        let d_u1 = (r / 4.0).min(delta / 2.0);
        let u1 = Point2::new(0.0, d_u1);

        // u2 at angle π/2 + min(α, π) = π/2 + α (α ≤ π here), distance R/2.
        let u2 = u0.offset(Angle::new(FRAC_PI_2 + alpha.radians()), r / 2.0);

        // v-cluster: rotate the u-cluster by π about the midpoint of u0v0.
        let mid = u0.midpoint(v0);
        let v1 = u1.rotated_around(mid, PI);
        let v2 = u2.rotated_around(mid, PI);
        let v3 = u3.rotated_around(mid, PI);

        Ok(Theorem24 {
            r,
            epsilon,
            alpha,
            u0,
            u1,
            u2,
            u3,
            v0,
            v1,
            v2,
            v3,
        })
    }

    /// The eight nodes in the order `[u0, u1, u2, u3, v0, v1, v2, v3]`.
    pub fn points(&self) -> Vec<Point2> {
        vec![
            self.u0, self.u1, self.u2, self.u3, self.v0, self.v1, self.v2, self.v3,
        ]
    }

    /// Indices of the u-cluster within [`Self::points`].
    pub const U_CLUSTER: [usize; 4] = [0, 1, 2, 3];
    /// Indices of the v-cluster within [`Self::points`].
    pub const V_CLUSTER: [usize; 4] = [4, 5, 6, 7];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangle::angle_at;

    const R: f64 = 500.0;

    fn alpha(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    mod example21 {
        use super::*;

        #[test]
        fn rejects_out_of_range_alpha() {
            assert!(Example21::new(R, Alpha::TWO_PI_THIRDS).is_err());
            assert!(Example21::new(R, alpha(PI)).is_err());
            assert!(Example21::new(-1.0, Alpha::FIVE_PI_SIXTHS).is_err());
            assert!(Example21::new(R, Alpha::FIVE_PI_SIXTHS).is_ok());
            assert!(Example21::new(R, alpha(2.0 * FRAC_PI_3 + 0.05)).is_ok());
        }

        #[test]
        fn epsilon_in_paper_range() {
            for a in [2.0 * FRAC_PI_3 + 0.01, 2.4, 5.0 * PI / 6.0] {
                let ex = Example21::new(R, alpha(a)).unwrap();
                assert!(ex.epsilon > 0.0 && ex.epsilon < PI / 12.0 + 1e-9);
            }
        }

        #[test]
        fn stated_angles_hold() {
            let ex = Example21::new(R, Alpha::FIVE_PI_SIXTHS).unwrap();
            let e = ex.epsilon;
            // (1) ∠v·u0·u1 = ∠v·u0·u2 = π/3 + ε = α/2.
            assert!((angle_at(ex.v, ex.u0, ex.u1) - (FRAC_PI_3 + e)).abs() < 1e-9);
            assert!((angle_at(ex.v, ex.u0, ex.u2) - (FRAC_PI_3 + e)).abs() < 1e-9);
            assert!((angle_at(ex.v, ex.u0, ex.u1) - ex.alpha.half()).abs() < 1e-9);
            // (2) ∠u1·v·u0 = ∠u2·v·u0 = π/3 − ε, so ∠v·u1·u0 = π/3.
            assert!((angle_at(ex.u1, ex.v, ex.u0) - (FRAC_PI_3 - e)).abs() < 1e-9);
            assert!((angle_at(ex.v, ex.u1, ex.u0) - FRAC_PI_3).abs() < 1e-9);
            // (3) ∠v·u0·u3 = π.
            assert!((angle_at(ex.v, ex.u0, ex.u3) - PI).abs() < 1e-9);
            // (4) d(u0, u3) = R/2.
            assert!((ex.u0.distance(ex.u3) - R / 2.0).abs() < 1e-9);
        }

        #[test]
        fn stated_distances_hold() {
            for a in [2.2, 2.5, 5.0 * PI / 6.0] {
                let ex = Example21::new(R, alpha(a)).unwrap();
                // d(u0, v) = R exactly.
                assert!((ex.u0.distance(ex.v) - R).abs() < 1e-9);
                // d(u1, v) > R > d(u0, u1); same for u2.
                assert!(ex.u1.distance(ex.v) > R);
                assert!(ex.u0.distance(ex.u1) < R);
                assert!(ex.u2.distance(ex.v) > R);
                assert!(ex.u0.distance(ex.u2) < R);
            }
        }

        #[test]
        fn u1_u2_mirror_symmetric() {
            let ex = Example21::new(R, alpha(2.6)).unwrap();
            assert!((ex.u1.x - ex.u2.x).abs() < 1e-9);
            assert!((ex.u1.y + ex.u2.y).abs() < 1e-9);
        }

        #[test]
        fn points_order_and_indices() {
            let ex = Example21::new(R, Alpha::FIVE_PI_SIXTHS).unwrap();
            let pts = ex.points();
            assert_eq!(pts.len(), 5);
            assert_eq!(pts[Example21::U0], ex.u0);
            assert_eq!(pts[Example21::V], ex.v);
        }
    }

    mod theorem24 {
        use super::*;

        #[test]
        fn rejects_out_of_range_epsilon() {
            assert!(Theorem24::new(R, 0.0).is_err());
            assert!(Theorem24::new(R, -0.1).is_err());
            assert!(Theorem24::new(R, PI / 6.0 + 0.01).is_err());
            assert!(Theorem24::new(0.0, 0.1).is_err());
            assert!(Theorem24::new(R, 0.1).is_ok());
            assert!(Theorem24::new(R, PI / 6.0).is_ok());
        }

        #[test]
        fn bridging_edge_has_length_exactly_r() {
            for eps in [0.01, 0.1, 0.3, PI / 6.0] {
                let t = Theorem24::new(R, eps).unwrap();
                assert!((t.u0.distance(t.v0) - R).abs() < 1e-9, "eps={eps}");
            }
        }

        #[test]
        fn clusters_within_radius_of_their_center() {
            for eps in [0.01, 0.1, 0.3] {
                let t = Theorem24::new(R, eps).unwrap();
                for p in [t.u1, t.u2, t.u3] {
                    assert!(t.u0.distance(p) < R, "u-cluster point beyond R, eps={eps}");
                }
                for p in [t.v1, t.v2, t.v3] {
                    assert!(t.v0.distance(p) < R, "v-cluster point beyond R, eps={eps}");
                }
            }
        }

        #[test]
        fn all_other_cross_cluster_distances_exceed_r() {
            for eps in [0.01, 0.05, 0.1, 0.3, PI / 6.0] {
                let t = Theorem24::new(R, eps).unwrap();
                let us = [t.u0, t.u1, t.u2, t.u3];
                let vs = [t.v0, t.v1, t.v2, t.v3];
                for (i, &u) in us.iter().enumerate() {
                    for (j, &v) in vs.iter().enumerate() {
                        if i + j >= 1 {
                            assert!(
                                u.distance(v) > R,
                                "d(u{i}, v{j}) = {} ≤ R for eps={eps}",
                                u.distance(v)
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn stated_angles_hold() {
            let t = Theorem24::new(R, 0.1).unwrap();
            // ∠u1·u0·v0 = π/2.
            assert!((angle_at(t.u1, t.u0, t.v0) - FRAC_PI_2).abs() < 1e-9);
            // ∠v1·v0·u0 = π/2, opposite side of the line.
            assert!((angle_at(t.v1, t.v0, t.u0) - FRAC_PI_2).abs() < 1e-9);
            assert!(t.u1.y * t.v1.y < 0.0);
            // ∠u1·u0·u2 = α (= min(α, π)).
            assert!((angle_at(t.u1, t.u0, t.u2) - t.alpha.radians()).abs() < 1e-9);
            // ∠u3·u0·u1 strictly between 5π/6 and α.
            let a31 = angle_at(t.u3, t.u0, t.u1);
            assert!(a31 > 5.0 * PI / 6.0 && a31 < t.alpha.radians());
            // ∠v0·u0·u2 ≥ π/2 (so u2 is far from the v-side).
            assert!(angle_at(t.v0, t.u0, t.u2) >= FRAC_PI_2 - 1e-9);
        }

        #[test]
        fn u3_lies_on_line_through_s_prime() {
            let t = Theorem24::new(R, 0.2).unwrap();
            // s′ = (R/2, −√3R/2); u3 on y = −√3R/2, left of s′.
            assert!((t.u3.y + 3f64.sqrt() * R / 2.0).abs() < 1e-9);
            assert!(t.u3.x < R / 2.0);
            // d(u0, u3) < R, d(v0, u3) > R.
            assert!(t.u0.distance(t.u3) < R);
            assert!(t.v0.distance(t.u3) > R);
        }

        #[test]
        fn v_cluster_is_rotation_of_u_cluster() {
            let t = Theorem24::new(R, 0.15).unwrap();
            let mid = t.u0.midpoint(t.v0);
            for (u, v) in [(t.u0, t.v0), (t.u1, t.v1), (t.u2, t.v2), (t.u3, t.v3)] {
                let rotated = u.rotated_around(mid, PI);
                assert!(rotated.distance(v) < 1e-9);
            }
        }

        #[test]
        fn no_alpha_gap_at_u0_without_v0() {
            // The crux: u0's three cluster-mates alone cover every α-cone,
            // so u0 stops growing before reaching v0.
            use crate::gap::has_alpha_gap;
            for eps in [0.01, 0.1, 0.3] {
                let t = Theorem24::new(R, eps).unwrap();
                let dirs: Vec<Angle> = [t.u1, t.u2, t.u3]
                    .iter()
                    .map(|p| t.u0.direction_to(*p))
                    .collect();
                assert!(
                    !has_alpha_gap(&dirs, t.alpha),
                    "u0 should have no α-gap from its cluster, eps={eps}"
                );
                // But with 5π/6 itself (no slack) there IS a gap — the
                // construction only defeats α strictly above the threshold.
                assert!(has_alpha_gap(&dirs, Alpha::FIVE_PI_SIXTHS));
            }
        }

        #[test]
        fn points_order_matches_clusters() {
            let t = Theorem24::new(R, 0.1).unwrap();
            let pts = t.points();
            assert_eq!(pts.len(), 8);
            for &i in &Theorem24::U_CLUSTER {
                assert!(pts[i].distance(t.u0) < R);
            }
            for &i in &Theorem24::V_CLUSTER {
                assert!(pts[i].distance(t.v0) < R);
            }
        }
    }
}
