//! # cbtc-geom
//!
//! 2-D computational geometry substrate for the cone-based topology control
//! (CBTC) algorithm of Li, Halpern, Bahl, Wang and Wattenhofer (PODC 2001).
//!
//! This crate provides everything geometric that the algorithm and its
//! analysis rely on:
//!
//! * [`Point2`] / [`Vec2`] — planar points and displacement vectors;
//! * [`Angle`] — an angle normalized to `[0, 2π)` with circular arithmetic;
//! * [`Alpha`] — the validated cone-degree parameter `α ∈ (0, 2π]`, with the
//!   paper's two distinguished values [`Alpha::FIVE_PI_SIXTHS`] and
//!   [`Alpha::TWO_PI_THIRDS`];
//! * [`Cone`] — the cone `cone(u, α, v)` of degree `α` bisected by the ray
//!   from `u` through `v` (Lemma 2.2's central object);
//! * [`gap`] — the α-gap test over direction sets, the predicate that drives
//!   the CBTC growing phase (batch, and incremental via [`gap::GapTracker`]
//!   and the flat allocation-free [`gap::FlatGapTracker`]);
//! * [`pseudo`] — trig-free circular ordering and cone tests
//!   ([`pseudo::PseudoAngle`], [`pseudo::ConeTest`]): the α-gap machinery
//!   with zero `atan2` in the hot loop;
//! * [`coverage`] — the angular coverage operator `coverα(dir)` used by the
//!   shrink-back optimization (§3.1);
//! * [`circle`] — circle intersection, used by the Theorem 2.4 lower-bound
//!   construction;
//! * [`triangle`] — triangle-angle helpers mirroring the side/angle facts the
//!   proofs invoke;
//! * [`constructions`] — the paper's exact point sets: Example 2.1
//!   (asymmetry of `N_α`) and Theorem 2.4 (disconnection for `α > 5π/6`).
//!
//! # Paper map
//!
//! | module | implements |
//! |--------|------------|
//! | [`Point2`], [`Angle`] | §1 problem statement: nodes in the plane, `dir_u(v)` |
//! | [`Alpha`] | the parameter `α` with the §2 (5π/6) and §3.2 (2π/3) thresholds |
//! | [`cone`], [`triangle`], [`circle`] | the geometric objects of the §2 proofs (Lemma 2.2, Theorem 2.4) |
//! | [`gap`] | the α-gap termination test of Figure 1 (batch, incremental via [`gap::GapTracker`], and the flat O(1)-per-insert [`gap::FlatGapTracker`] the construction hot loop runs) |
//! | [`pseudo`] | the §3 cone test `∠ccw(u→v) > θ` from cross/dot sign-quadrants ([`pseudo::ConeTest`]), diamond-angle ordering ([`pseudo::PseudoAngle`]), and the zero-`atan2` α-gap tracker ([`pseudo::PseudoGapTracker`]) |
//! | [`coverage`] | `coverα(dir)` of §3.1 (shrink-back) |
//! | [`constructions`] | Example 2.1 / Figure 2 and Theorem 2.4 / Figure 5 |
//!
//! # Example
//!
//! ```
//! use cbtc_geom::{Angle, Alpha, gap::has_alpha_gap};
//!
//! // Three directions 2π/3 apart leave no gap larger than 2π/3 …
//! let dirs = [Angle::ZERO, Angle::new(2.0943951023931953), Angle::new(4.1887902047863905)];
//! assert!(!has_alpha_gap(&dirs, Alpha::TWO_PI_THIRDS));
//! // … but any two of them leave a gap larger than 5π/6.
//! assert!(has_alpha_gap(&dirs[..2], Alpha::FIVE_PI_SIXTHS));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alpha;
mod angle;
mod point;

pub mod circle;
pub mod cone;
pub mod constructions;
pub mod coverage;
pub mod gap;
pub mod pseudo;
pub mod triangle;

pub use alpha::{Alpha, InvalidAlphaError};
pub use angle::Angle;
pub use cone::Cone;
pub use point::{Point2, Vec2};

/// Crate-wide absolute tolerance for comparisons between derived floating
/// point quantities (arc endpoints, squared distances after subtraction).
///
/// Raw coordinates and angles are compared exactly; the tolerance is applied
/// only where values have been produced by chains of arithmetic and exact
/// equality would be brittle.
pub const EPS: f64 = 1e-9;
