//! The α-gap test over sets of directions.
//!
//! CBTC's growing phase is driven by a single predicate: *is there a gap of
//! more than α between the angles of two consecutive discovered neighbors?*
//! By the observation in §2 of the paper this holds iff there is a cone of
//! degree α centered at the node containing no discovered neighbor.

use std::f64::consts::TAU;

use crate::{Alpha, Angle};

/// The largest counter-clockwise gap between consecutive directions, in
/// radians.
///
/// Returns `2π` for an empty set (the whole circle is one gap) and for a
/// single direction (the circle minus a point is still a `2π` sweep back to
/// itself).
///
/// # Example
///
/// ```
/// use cbtc_geom::{Angle, gap::max_gap};
/// use std::f64::consts::PI;
///
/// let dirs = [Angle::ZERO, Angle::new(PI / 2.0)];
/// assert!((max_gap(&dirs) - 1.5 * PI).abs() < 1e-12);
/// assert_eq!(max_gap(&[]), 2.0 * PI);
/// ```
pub fn max_gap(directions: &[Angle]) -> f64 {
    match directions.len() {
        0 => TAU,
        1 => TAU,
        _ => {
            let mut sorted: Vec<Angle> = directions.to_vec();
            sorted.sort();
            let mut largest: f64 = 0.0;
            for w in sorted.windows(2) {
                largest = largest.max(w[0].ccw_to(w[1]));
            }
            // Wrap-around gap from the last direction back to the first.
            let last = sorted[sorted.len() - 1];
            let first = sorted[0];
            if last == first {
                // Sorted and extremes equal ⇒ all directions identical:
                // the circle minus one point is a full 2π sweep.
                return TAU;
            }
            largest.max(last.ccw_to(first))
        }
    }
}

/// The paper's `gap-α(Du)` test: `true` iff there is a gap of **more than**
/// `α` between two consecutive directions, i.e. iff some cone of degree `α`
/// around the node contains no direction from the set.
///
/// The comparison is strict (gaps of exactly `α` do not count), matching the
/// termination condition of the algorithm in Figure 1. A tiny tolerance
/// absorbs floating-point noise so that a gap within [`crate::EPS`] of `α`
/// is treated as exactly `α`.
///
/// # Example
///
/// ```
/// use cbtc_geom::{Alpha, Angle, gap::has_alpha_gap};
/// use std::f64::consts::PI;
///
/// // Four directions at right angles: largest gap is π/2.
/// let dirs: Vec<Angle> = (0..4).map(|k| Angle::new(k as f64 * PI / 2.0)).collect();
/// assert!(!has_alpha_gap(&dirs, Alpha::new(PI / 2.0)?));
/// assert!(has_alpha_gap(&dirs, Alpha::new(PI / 2.0 - 0.01)?));
/// # Ok::<(), cbtc_geom::InvalidAlphaError>(())
/// ```
pub fn has_alpha_gap(directions: &[Angle], alpha: Alpha) -> bool {
    max_gap(directions) > alpha.radians() + crate::EPS
}

/// Like [`has_alpha_gap`], but also reports where the widest gap begins.
///
/// Returns `(gap, start)` where `start` is the direction after which the
/// widest counter-clockwise gap opens, or `None` when the set is empty.
/// Useful for diagnostics and for the reconfiguration logic, which wants to
/// know *where* coverage was lost after a `leave` event.
pub fn widest_gap(directions: &[Angle]) -> Option<(f64, Angle)> {
    if directions.is_empty() {
        return None;
    }
    let mut sorted: Vec<Angle> = directions.to_vec();
    sorted.sort();
    let mut best_gap = 0.0;
    let mut best_start = sorted[0];
    let n = sorted.len();
    for i in 0..n {
        let a = sorted[i];
        let b = sorted[(i + 1) % n];
        let g = if n == 1 { TAU } else { a.ccw_to(b) };
        // For n > 1 with duplicate extremes ccw_to(a, a) == 0, which is fine.
        if g > best_gap {
            best_gap = g;
            best_start = a;
        }
    }
    if n == 1 {
        return Some((TAU, sorted[0]));
    }
    // All directions identical: the gap is the full circle starting there.
    if best_gap == 0.0 {
        return Some((TAU, sorted[0]));
    }
    Some((best_gap, best_start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, PI};

    fn angles(v: &[f64]) -> Vec<Angle> {
        v.iter().copied().map(Angle::new).collect()
    }

    #[test]
    fn empty_and_singleton_have_full_gap() {
        assert_eq!(max_gap(&[]), TAU);
        assert_eq!(max_gap(&angles(&[1.0])), TAU);
        assert!(has_alpha_gap(&[], Alpha::FIVE_PI_SIXTHS));
        assert!(has_alpha_gap(&angles(&[0.3]), Alpha::FIVE_PI_SIXTHS));
    }

    #[test]
    fn evenly_spread_directions() {
        // k evenly spaced directions: max gap 2π/k.
        for k in 2..12usize {
            let dirs: Vec<Angle> = (0..k)
                .map(|i| Angle::new(i as f64 * TAU / k as f64))
                .collect();
            let expect = TAU / k as f64;
            assert!(
                (max_gap(&dirs) - expect).abs() < 1e-9,
                "k={k}: {} vs {expect}",
                max_gap(&dirs)
            );
        }
    }

    #[test]
    fn gap_test_is_strict_at_alpha() {
        // Directions exactly 2π/3 apart: gap == α == 2π/3, no α-gap.
        let dirs = angles(&[0.0, TAU / 3.0, 2.0 * TAU / 3.0]);
        assert!(!has_alpha_gap(&dirs, Alpha::TWO_PI_THIRDS));
        // Remove one: the gap becomes 4π/3 > 2π/3.
        assert!(has_alpha_gap(&dirs[..2], Alpha::TWO_PI_THIRDS));
    }

    #[test]
    fn wraparound_gap_detected() {
        // Directions at 350° and 10°: the big gap spans 340° through the
        // middle of the circle, not across 0.
        let dirs = angles(&[350f64.to_radians(), 10f64.to_radians()]);
        let g = max_gap(&dirs);
        assert!((g - 340f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn duplicates_do_not_confuse_the_scan() {
        let dirs = angles(&[1.0, 1.0, 1.0, 1.0 + PI]);
        assert!((max_gap(&dirs) - PI).abs() < 1e-12);
        let same = angles(&[2.0, 2.0]);
        assert_eq!(max_gap(&same), TAU);
    }

    #[test]
    fn widest_gap_reports_location() {
        let dirs = angles(&[0.0, FRAC_PI_2, PI]);
        let (g, start) = widest_gap(&dirs).unwrap();
        assert!((g - PI).abs() < 1e-12);
        assert!(start.circular_distance(Angle::new(PI)) < 1e-12);
        assert!(widest_gap(&[]).is_none());
        let (g1, s1) = widest_gap(&angles(&[0.7])).unwrap();
        assert_eq!(g1, TAU);
        assert!(s1.circular_distance(Angle::new(0.7)) < 1e-12);
    }

    #[test]
    fn widest_gap_all_identical_directions() {
        let dirs = angles(&[FRAC_PI_3, FRAC_PI_3, FRAC_PI_3]);
        let (g, s) = widest_gap(&dirs).unwrap();
        assert_eq!(g, TAU);
        assert!(s.circular_distance(Angle::new(FRAC_PI_3)) < 1e-12);
    }

    #[test]
    fn gap_matches_max_gap_value() {
        let dirs = angles(&[0.2, 1.9, 3.0, 4.4, 6.0]);
        let g = max_gap(&dirs);
        let (wg, _) = widest_gap(&dirs).unwrap();
        assert!((g - wg).abs() < 1e-15);
    }
}
