//! The α-gap test over sets of directions.
//!
//! CBTC's growing phase is driven by a single predicate: *is there a gap of
//! more than α between the angles of two consecutive discovered neighbors?*
//! By the observation in §2 of the paper this holds iff there is a cone of
//! degree α centered at the node containing no discovered neighbor.

use std::collections::{BTreeMap, BTreeSet};
use std::f64::consts::TAU;

use crate::{Alpha, Angle};

/// The largest counter-clockwise gap between consecutive directions, in
/// radians.
///
/// Returns `2π` for an empty set (the whole circle is one gap) and for a
/// single direction (the circle minus a point is still a `2π` sweep back to
/// itself).
///
/// # Example
///
/// ```
/// use cbtc_geom::{Angle, gap::max_gap};
/// use std::f64::consts::PI;
///
/// let dirs = [Angle::ZERO, Angle::new(PI / 2.0)];
/// assert!((max_gap(&dirs) - 1.5 * PI).abs() < 1e-12);
/// assert_eq!(max_gap(&[]), 2.0 * PI);
/// ```
pub fn max_gap(directions: &[Angle]) -> f64 {
    match directions.len() {
        0 => TAU,
        1 => TAU,
        _ => {
            let mut sorted: Vec<Angle> = directions.to_vec();
            sorted.sort();
            let mut largest: f64 = 0.0;
            for w in sorted.windows(2) {
                largest = largest.max(w[0].ccw_to(w[1]));
            }
            // Wrap-around gap from the last direction back to the first.
            let last = sorted[sorted.len() - 1];
            let first = sorted[0];
            if last == first {
                // Sorted and extremes equal ⇒ all directions identical:
                // the circle minus one point is a full 2π sweep.
                return TAU;
            }
            largest.max(last.ccw_to(first))
        }
    }
}

/// The paper's `gap-α(Du)` test: `true` iff there is a gap of **more than**
/// `α` between two consecutive directions, i.e. iff some cone of degree `α`
/// around the node contains no direction from the set.
///
/// The comparison is strict (gaps of exactly `α` do not count), matching the
/// termination condition of the algorithm in Figure 1. A tiny tolerance
/// absorbs floating-point noise so that a gap within [`crate::EPS`] of `α`
/// is treated as exactly `α`.
///
/// # Example
///
/// ```
/// use cbtc_geom::{Alpha, Angle, gap::has_alpha_gap};
/// use std::f64::consts::PI;
///
/// // Four directions at right angles: largest gap is π/2.
/// let dirs: Vec<Angle> = (0..4).map(|k| Angle::new(k as f64 * PI / 2.0)).collect();
/// assert!(!has_alpha_gap(&dirs, Alpha::new(PI / 2.0)?));
/// assert!(has_alpha_gap(&dirs, Alpha::new(PI / 2.0 - 0.01)?));
/// # Ok::<(), cbtc_geom::InvalidAlphaError>(())
/// ```
pub fn has_alpha_gap(directions: &[Angle], alpha: Alpha) -> bool {
    max_gap(directions) > alpha.radians() + crate::EPS
}

/// Like [`has_alpha_gap`], but also reports where the widest gap begins.
///
/// Returns `(gap, start)` where `start` is the direction after which the
/// widest counter-clockwise gap opens, or `None` when the set is empty.
/// Useful for diagnostics and for the reconfiguration logic, which wants to
/// know *where* coverage was lost after a `leave` event.
pub fn widest_gap(directions: &[Angle]) -> Option<(f64, Angle)> {
    if directions.is_empty() {
        return None;
    }
    let mut sorted: Vec<Angle> = directions.to_vec();
    sorted.sort();
    let mut best_gap = 0.0;
    let mut best_start = sorted[0];
    let n = sorted.len();
    for i in 0..n {
        let a = sorted[i];
        let b = sorted[(i + 1) % n];
        let g = if n == 1 { TAU } else { a.ccw_to(b) };
        // For n > 1 with duplicate extremes ccw_to(a, a) == 0, which is fine.
        if g > best_gap {
            best_gap = g;
            best_start = a;
        }
    }
    if n == 1 {
        return Some((TAU, sorted[0]));
    }
    // All directions identical: the gap is the full circle starting there.
    if best_gap == 0.0 {
        return Some((TAU, sorted[0]));
    }
    Some((best_gap, best_start))
}

/// Incremental form of the `gap-α` test: maintains the sorted direction
/// set and the multiset of consecutive-direction gaps under insertion.
///
/// The growing phase asks the same question after every discovery group:
/// *does an α-gap remain?* Re-running [`max_gap`] costs `O(k log k)` per
/// query over `k` directions — `O(k² log k)` across a node's whole growth.
/// `GapTracker` answers each query from maintained state: an insertion
/// splits exactly one gap into two (`O(log k)`), and the largest gap is the
/// last key of the gap multiset.
///
/// The reported value is **bit-identical** to [`max_gap`] over the same
/// multiset of directions: both reduce to the identical `ccw_to` spans
/// between consecutive *distinct* directions (duplicates contribute
/// zero-width gaps that can never be maximal, and a set with fewer than two
/// distinct directions is a full `2π` sweep in both formulations).
///
/// # Example
///
/// ```
/// use cbtc_geom::{Alpha, Angle, gap::GapTracker};
/// use std::f64::consts::TAU;
///
/// let mut t = GapTracker::new();
/// assert!(t.has_alpha_gap(Alpha::TWO_PI_THIRDS));
/// for k in 0..3 {
///     t.insert(Angle::new(k as f64 * TAU / 3.0));
/// }
/// // Three directions 2π/3 apart: no gap of more than 2π/3 remains.
/// assert!(!t.has_alpha_gap(Alpha::TWO_PI_THIRDS));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GapTracker {
    /// Distinct directions in circular (normalized-value) order.
    dirs: BTreeSet<Angle>,
    /// Multiset of counter-clockwise gaps between consecutive distinct
    /// directions (wrap-around included), keyed by the gap's `f64` bits —
    /// monotone for the non-negative spans `ccw_to` produces — so the
    /// largest gap is the last entry.
    gaps: BTreeMap<u64, u32>,
}

impl GapTracker {
    /// An empty tracker (full-circle gap).
    pub fn new() -> Self {
        GapTracker::default()
    }

    /// Number of *distinct* directions tracked.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether no direction has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// Forgets all directions.
    pub fn clear(&mut self) {
        self.dirs.clear();
        self.gaps.clear();
    }

    fn gap_key(span: f64) -> u64 {
        // `ccw_to` spans are non-negative, but fold a possible -0.0 to
        // +0.0: the sign bit would otherwise sort it above every real gap.
        span.max(0.0).to_bits()
    }

    fn add_gap(&mut self, span: f64) {
        *self.gaps.entry(Self::gap_key(span)).or_insert(0) += 1;
    }

    fn remove_gap(&mut self, span: f64) {
        let key = Self::gap_key(span);
        let count = self
            .gaps
            .get_mut(&key)
            .expect("gap multiset out of sync with direction set");
        *count -= 1;
        if *count == 0 {
            self.gaps.remove(&key);
        }
    }

    /// Inserts a direction. Duplicates of an already-tracked direction are
    /// no-ops, mirroring their zero-width contribution in [`max_gap`].
    pub fn insert(&mut self, dir: Angle) {
        if self.dirs.contains(&dir) {
            return;
        }
        match self.dirs.len() {
            0 => {}
            1 => {
                let other = *self.dirs.iter().next().expect("len checked");
                self.add_gap(other.ccw_to(dir));
                self.add_gap(dir.ccw_to(other));
            }
            _ => {
                // Circular predecessor / successor of the new direction.
                let pred = *self
                    .dirs
                    .range(..dir)
                    .next_back()
                    .or_else(|| self.dirs.iter().next_back())
                    .expect("non-empty");
                let succ = *self
                    .dirs
                    .range(dir..)
                    .next()
                    .or_else(|| self.dirs.iter().next())
                    .expect("non-empty");
                self.remove_gap(pred.ccw_to(succ));
                self.add_gap(pred.ccw_to(dir));
                self.add_gap(dir.ccw_to(succ));
            }
        }
        self.dirs.insert(dir);
    }

    /// The largest counter-clockwise gap between consecutive directions —
    /// exactly [`max_gap`] over the inserted multiset.
    pub fn max_gap(&self) -> f64 {
        if self.dirs.len() < 2 {
            return TAU;
        }
        let (&bits, _) = self.gaps.iter().next_back().expect("≥ 2 distinct dirs");
        f64::from_bits(bits)
    }

    /// The incremental `gap-α(Du)` test — exactly [`has_alpha_gap`] over
    /// the inserted multiset.
    pub fn has_alpha_gap(&self, alpha: Alpha) -> bool {
        self.max_gap() > alpha.radians() + crate::EPS
    }
}

/// The flat, allocation-free form of [`GapTracker`] the construction hot
/// loop runs: a sorted `Vec` of normalized radians plus an O(1)-per-insert
/// count of the spans that exceed the α-gap threshold.
///
/// [`GapTracker`] maintains the *maximum* gap in a `BTreeMap` multiset —
/// `O(log k)` pointer-chasing inserts and two heap allocations per
/// tracker. But the growing phase never asks for the maximum: it asks one
/// fixed question per node, *does any gap exceed `α +`[`crate::EPS`]?*,
/// for a single α known up front. `FlatGapTracker` therefore fixes the
/// threshold at construction and maintains only `open`, the number of
/// consecutive-direction spans exceeding it. An insertion splits exactly
/// one span into two: decrement `open` if the removed span was open,
/// increment per new open span — three comparisons, no tree. The sorted
/// direction vec is the only storage, and [`FlatGapTracker::reset`] keeps
/// its capacity so a reused tracker allocates nothing at steady state.
///
/// ## Bit-identity with the `Angle` path
///
/// Spans are computed by the *same* expression as [`Angle::ccw_to`] over
/// the same normalized radians, directions deduplicate by the same
/// total-order bits as the `BTreeSet<Angle>`, and the threshold is the
/// same `α + EPS` sum — so
/// [`has_open_gap`](FlatGapTracker::has_open_gap) equals
/// `GapTracker::has_alpha_gap(α)` (equivalently
/// `max_gap() > α + EPS`) **bit for bit** on every insertion prefix; the
/// tests assert it exhaustively. For the trig-free variant keyed on
/// pseudo-angles (equivalent but not bit-identical), see
/// [`crate::pseudo::PseudoGapTracker`].
///
/// # Example
///
/// ```
/// use cbtc_geom::{Alpha, Angle, gap::FlatGapTracker};
/// use std::f64::consts::TAU;
///
/// let mut t = FlatGapTracker::new(Alpha::TWO_PI_THIRDS);
/// assert!(t.has_open_gap());
/// for k in 0..3 {
///     t.insert(Angle::new(k as f64 * TAU / 3.0));
/// }
/// // Three directions 2π/3 apart: no gap of more than 2π/3 remains.
/// assert!(!t.has_open_gap());
/// ```
#[derive(Debug, Clone)]
pub struct FlatGapTracker {
    /// Distinct normalized radians in `f64::total_cmp` order — the same
    /// order (and the same dedup rule) as [`GapTracker`]'s
    /// `BTreeSet<Angle>`.
    dirs: Vec<f64>,
    /// `α + EPS`, fixed at construction/reset.
    threshold: f64,
    /// Number of consecutive-direction spans (wrap-around included)
    /// strictly exceeding `threshold`; meaningful when `dirs.len() ≥ 2`.
    open: usize,
}

impl FlatGapTracker {
    /// An empty tracker armed for the strict α-gap threshold
    /// `α +`[`crate::EPS`].
    pub fn new(alpha: Alpha) -> Self {
        FlatGapTracker {
            dirs: Vec::new(),
            threshold: alpha.radians() + crate::EPS,
            open: 0,
        }
    }

    /// Forgets all directions and re-arms for `alpha`, keeping the
    /// direction buffer's capacity — the scratch-reuse entry point.
    pub fn reset(&mut self, alpha: Alpha) {
        self.dirs.clear();
        self.threshold = alpha.radians() + crate::EPS;
        self.open = 0;
    }

    /// Number of *distinct* directions tracked.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether no direction has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// The counter-clockwise span from `a` to `b` — the exact expression
    /// of [`Angle::ccw_to`], kept textually in sync for bit-identity.
    fn span(a: f64, b: f64) -> f64 {
        let d = b - a;
        if d < 0.0 {
            d + TAU
        } else {
            d
        }
    }

    /// Inserts a direction. Duplicates of an already-tracked direction
    /// are no-ops, mirroring their zero-width contribution in
    /// [`max_gap`].
    pub fn insert(&mut self, dir: Angle) {
        let r = dir.radians();
        let i = self
            .dirs
            .partition_point(|x| x.total_cmp(&r) == std::cmp::Ordering::Less);
        if self.dirs.get(i).is_some_and(|x| x.to_bits() == r.to_bits()) {
            return;
        }
        match self.dirs.len() {
            0 => {}
            1 => {
                let other = self.dirs[0];
                self.open = usize::from(Self::span(other, r) > self.threshold)
                    + usize::from(Self::span(r, other) > self.threshold);
            }
            n => {
                let pred = if i == 0 {
                    self.dirs[n - 1]
                } else {
                    self.dirs[i - 1]
                };
                let succ = if i == n { self.dirs[0] } else { self.dirs[i] };
                self.open -= usize::from(Self::span(pred, succ) > self.threshold);
                self.open += usize::from(Self::span(pred, r) > self.threshold);
                self.open += usize::from(Self::span(r, succ) > self.threshold);
            }
        }
        self.dirs.insert(i, r);
    }

    /// The incremental `gap-α(Du)` verdict: exactly
    /// [`GapTracker::has_alpha_gap`] (and [`has_alpha_gap`]) for the α
    /// the tracker was armed with, over the inserted multiset.
    pub fn has_open_gap(&self) -> bool {
        if self.dirs.len() < 2 {
            TAU > self.threshold
        } else {
            self.open > 0
        }
    }

    /// The largest counter-clockwise gap between consecutive directions —
    /// exactly [`max_gap`] over the inserted multiset. `O(k)`; kept for
    /// diagnostics and the bit-identity tests, not used by the hot loop.
    pub fn max_gap(&self) -> f64 {
        if self.dirs.len() < 2 {
            return TAU;
        }
        let mut largest: f64 = 0.0;
        for w in self.dirs.windows(2) {
            largest = largest.max(Self::span(w[0], w[1]));
        }
        largest.max(Self::span(self.dirs[self.dirs.len() - 1], self.dirs[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, PI};

    fn angles(v: &[f64]) -> Vec<Angle> {
        v.iter().copied().map(Angle::new).collect()
    }

    #[test]
    fn empty_and_singleton_have_full_gap() {
        assert_eq!(max_gap(&[]), TAU);
        assert_eq!(max_gap(&angles(&[1.0])), TAU);
        assert!(has_alpha_gap(&[], Alpha::FIVE_PI_SIXTHS));
        assert!(has_alpha_gap(&angles(&[0.3]), Alpha::FIVE_PI_SIXTHS));
    }

    #[test]
    fn evenly_spread_directions() {
        // k evenly spaced directions: max gap 2π/k.
        for k in 2..12usize {
            let dirs: Vec<Angle> = (0..k)
                .map(|i| Angle::new(i as f64 * TAU / k as f64))
                .collect();
            let expect = TAU / k as f64;
            assert!(
                (max_gap(&dirs) - expect).abs() < 1e-9,
                "k={k}: {} vs {expect}",
                max_gap(&dirs)
            );
        }
    }

    #[test]
    fn gap_test_is_strict_at_alpha() {
        // Directions exactly 2π/3 apart: gap == α == 2π/3, no α-gap.
        let dirs = angles(&[0.0, TAU / 3.0, 2.0 * TAU / 3.0]);
        assert!(!has_alpha_gap(&dirs, Alpha::TWO_PI_THIRDS));
        // Remove one: the gap becomes 4π/3 > 2π/3.
        assert!(has_alpha_gap(&dirs[..2], Alpha::TWO_PI_THIRDS));
    }

    #[test]
    fn wraparound_gap_detected() {
        // Directions at 350° and 10°: the big gap spans 340° through the
        // middle of the circle, not across 0.
        let dirs = angles(&[350f64.to_radians(), 10f64.to_radians()]);
        let g = max_gap(&dirs);
        assert!((g - 340f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn duplicates_do_not_confuse_the_scan() {
        let dirs = angles(&[1.0, 1.0, 1.0, 1.0 + PI]);
        assert!((max_gap(&dirs) - PI).abs() < 1e-12);
        let same = angles(&[2.0, 2.0]);
        assert_eq!(max_gap(&same), TAU);
    }

    #[test]
    fn widest_gap_reports_location() {
        let dirs = angles(&[0.0, FRAC_PI_2, PI]);
        let (g, start) = widest_gap(&dirs).unwrap();
        assert!((g - PI).abs() < 1e-12);
        assert!(start.circular_distance(Angle::new(PI)) < 1e-12);
        assert!(widest_gap(&[]).is_none());
        let (g1, s1) = widest_gap(&angles(&[0.7])).unwrap();
        assert_eq!(g1, TAU);
        assert!(s1.circular_distance(Angle::new(0.7)) < 1e-12);
    }

    #[test]
    fn widest_gap_all_identical_directions() {
        let dirs = angles(&[FRAC_PI_3, FRAC_PI_3, FRAC_PI_3]);
        let (g, s) = widest_gap(&dirs).unwrap();
        assert_eq!(g, TAU);
        assert!(s.circular_distance(Angle::new(FRAC_PI_3)) < 1e-12);
    }

    #[test]
    fn gap_matches_max_gap_value() {
        let dirs = angles(&[0.2, 1.9, 3.0, 4.4, 6.0]);
        let g = max_gap(&dirs);
        let (wg, _) = widest_gap(&dirs).unwrap();
        assert!((g - wg).abs() < 1e-15);
    }

    #[test]
    fn tracker_matches_batch_on_every_prefix() {
        // Pseudo-random direction stream with forced duplicates and a
        // wrap-straddling pair; after every insertion the tracker must
        // agree bit-for-bit with the batch scan over the prefix.
        let mut stream: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.754_877_666_246_692_8).fract() * TAU)
            .collect();
        stream[10] = stream[3];
        stream[20] = stream[3];
        stream[30] = 350f64.to_radians();
        stream[31] = 10f64.to_radians();
        let mut tracker = GapTracker::new();
        let mut prefix = Vec::new();
        assert_eq!(tracker.max_gap(), TAU);
        for (i, &raw) in stream.iter().enumerate() {
            let dir = Angle::new(raw);
            tracker.insert(dir);
            prefix.push(dir);
            assert_eq!(
                tracker.max_gap().to_bits(),
                max_gap(&prefix).to_bits(),
                "prefix of {} directions",
                i + 1
            );
            for alpha in [Alpha::FIVE_PI_SIXTHS, Alpha::TWO_PI_THIRDS] {
                assert_eq!(tracker.has_alpha_gap(alpha), has_alpha_gap(&prefix, alpha));
            }
        }
    }

    #[test]
    fn tracker_handles_duplicates_and_identical_sets() {
        let mut t = GapTracker::new();
        assert!(t.is_empty());
        t.insert(Angle::new(1.0));
        t.insert(Angle::new(1.0));
        t.insert(Angle::new(1.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.max_gap(), TAU, "all-identical directions are a 2π sweep");
        t.insert(Angle::new(1.0 + PI));
        assert_eq!(t.len(), 2);
        assert!((t.max_gap() - PI).abs() < 1e-12);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.max_gap(), TAU);
    }

    #[test]
    fn flat_tracker_is_bit_identical_to_btree_tracker_on_every_prefix() {
        // The same stress stream as `tracker_matches_batch_on_every_prefix`:
        // duplicates, a wrap-straddling pair, and 64 pseudo-random
        // directions. The flat tracker's verdict and max gap must agree
        // bit-for-bit with both the BTree tracker and the batch scan.
        let mut stream: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.754_877_666_246_692_8).fract() * TAU)
            .collect();
        stream[10] = stream[3];
        stream[20] = stream[3];
        stream[30] = 350f64.to_radians();
        stream[31] = 10f64.to_radians();
        for alpha in [Alpha::FIVE_PI_SIXTHS, Alpha::TWO_PI_THIRDS] {
            let mut flat = FlatGapTracker::new(alpha);
            let mut btree = GapTracker::new();
            let mut prefix = Vec::new();
            assert_eq!(flat.max_gap(), TAU);
            assert!(flat.is_empty());
            for (i, &raw) in stream.iter().enumerate() {
                let dir = Angle::new(raw);
                flat.insert(dir);
                btree.insert(dir);
                prefix.push(dir);
                assert_eq!(flat.len(), btree.len());
                assert_eq!(
                    flat.max_gap().to_bits(),
                    btree.max_gap().to_bits(),
                    "prefix of {} directions",
                    i + 1
                );
                assert_eq!(flat.max_gap().to_bits(), max_gap(&prefix).to_bits());
                assert_eq!(flat.has_open_gap(), btree.has_alpha_gap(alpha));
                assert_eq!(flat.has_open_gap(), has_alpha_gap(&prefix, alpha));
            }
        }
    }

    #[test]
    fn flat_tracker_reset_reuses_and_rearms() {
        let mut t = FlatGapTracker::new(Alpha::TWO_PI_THIRDS);
        for k in 0..3 {
            t.insert(Angle::new(k as f64 * TAU / 3.0));
        }
        assert!(!t.has_open_gap());
        // Re-armed for a tighter alpha, the same directions leave a gap.
        t.reset(Alpha::new(FRAC_PI_2).unwrap());
        assert!(t.is_empty());
        assert!(t.has_open_gap(), "empty tracker is a full 2π sweep");
        for k in 0..3 {
            t.insert(Angle::new(k as f64 * TAU / 3.0));
        }
        assert!(t.has_open_gap(), "2π/3 gaps exceed π/2");
    }

    #[test]
    fn flat_tracker_strict_at_exact_alpha_and_full_circle() {
        // Gap exactly α: not an α-gap (strict test with EPS absorption).
        let mut t = FlatGapTracker::new(Alpha::TWO_PI_THIRDS);
        t.insert(Angle::new(0.0));
        t.insert(Angle::new(TAU / 3.0));
        t.insert(Angle::new(2.0 * TAU / 3.0));
        assert!(!t.has_open_gap());
        // α = 2π: even the empty tracker's full sweep does not exceed it.
        let full = FlatGapTracker::new(Alpha::new(TAU).unwrap());
        assert!(!full.has_open_gap());
        // Duplicates are no-ops.
        let mut d = FlatGapTracker::new(Alpha::FIVE_PI_SIXTHS);
        d.insert(Angle::new(1.0));
        d.insert(Angle::new(1.0));
        assert_eq!(d.len(), 1);
        assert_eq!(d.max_gap(), TAU);
    }

    #[test]
    fn tracker_insertion_order_is_irrelevant() {
        let dirs = angles(&[5.9, 0.1, 3.3, 2.2, 4.7, 1.6]);
        let mut forward = GapTracker::new();
        let mut backward = GapTracker::new();
        for &d in &dirs {
            forward.insert(d);
        }
        for &d in dirs.iter().rev() {
            backward.insert(d);
        }
        assert_eq!(forward.max_gap().to_bits(), backward.max_gap().to_bits());
        assert_eq!(forward.max_gap().to_bits(), max_gap(&dirs).to_bits());
    }
}
