//! Planar points and displacement vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::Angle;

/// A point in the Euclidean plane.
///
/// Node locations in the topology-control problem are points; see §1 of the
/// paper ("Each node `u ∈ V` is specified by its coordinates `(x(u), y(u))`").
///
/// # Example
///
/// ```
/// use cbtc_geom::Point2;
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement vector in the Euclidean plane.
///
/// Produced by subtracting two [`Point2`] values; carries direction and
/// magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance `d(self, other)`.
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance; avoids the square root when only
    /// comparisons are needed.
    pub fn distance_squared(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The direction of `other` as seen from `self`, i.e. the angle of the
    /// vector `other - self` measured counter-clockwise from the positive
    /// x-axis.
    ///
    /// This is the quantity the paper writes `dir_u(v)`: the only positional
    /// information the CBTC algorithm is allowed to use.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the two points coincide (the direction is
    /// then undefined).
    pub fn direction_to(self, other: Point2) -> Angle {
        debug_assert!(
            self != other,
            "direction_to is undefined for coincident points"
        );
        Angle::new((other.y - self.y).atan2(other.x - self.x))
    }

    /// The point reached by starting at `self` and travelling `dist` in the
    /// direction `dir`.
    pub fn offset(self, dir: Angle, dist: f64) -> Point2 {
        Point2::new(
            self.x + dist * dir.radians().cos(),
            self.y + dist * dir.radians().sin(),
        )
    }

    /// Midpoint of the segment from `self` to `other`.
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Rotates this point by `theta` radians counter-clockwise around
    /// `center`.
    pub fn rotated_around(self, center: Point2, theta: f64) -> Point2 {
        let (s, c) = theta.sin_cos();
        let dx = self.x - center.x;
        let dy = self.y - center.y;
        Point2::new(center.x + c * dx - s * dy, center.y + s * dx + c * dy)
    }

    /// Reflects this point across the horizontal line `y = axis_y`.
    pub fn mirrored_y(self, axis_y: f64) -> Point2 {
        Point2::new(self.x, 2.0 * axis_y - self.y)
    }

    /// Returns `true` if all coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product); positive
    /// when `other` lies counter-clockwise of `self`.
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The angle of this vector measured counter-clockwise from the positive
    /// x-axis.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on the zero vector.
    pub fn angle(self) -> Angle {
        debug_assert!(self != Vec2::ZERO, "angle of the zero vector is undefined");
        Angle::new(self.y.atan2(self.x))
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.x, self.y)
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
    }

    #[test]
    fn direction_to_cardinal_points() {
        let o = Point2::ORIGIN;
        assert!((o.direction_to(Point2::new(1.0, 0.0)).radians() - 0.0).abs() < 1e-15);
        assert!((o.direction_to(Point2::new(0.0, 1.0)).radians() - FRAC_PI_2).abs() < 1e-15);
        assert!((o.direction_to(Point2::new(-1.0, 0.0)).radians() - PI).abs() < 1e-15);
        assert!((o.direction_to(Point2::new(0.0, -1.0)).radians() - 3.0 * FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn offset_round_trips_direction_and_distance() {
        let p = Point2::new(10.0, -3.0);
        let dir = Angle::new(1.234);
        let q = p.offset(dir, 7.5);
        assert!((p.distance(q) - 7.5).abs() < 1e-12);
        assert!(p.direction_to(q).circular_distance(dir) < 1e-12);
    }

    #[test]
    fn rotation_preserves_distance_to_center() {
        let c = Point2::new(2.0, 2.0);
        let p = Point2::new(5.0, 6.0);
        let r = p.rotated_around(c, 1.0);
        assert!((c.distance(p) - c.distance(r)).abs() < 1e-12);
    }

    #[test]
    fn rotation_by_pi_is_point_reflection() {
        let c = Point2::new(1.0, 1.0);
        let p = Point2::new(3.0, 0.0);
        let r = p.rotated_around(c, PI);
        assert!((r.x - (-1.0)).abs() < 1e-12);
        assert!((r.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        let w = Vec2::new(-4.0, 3.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(w), 0.0);
        assert_eq!(v.cross(w), 25.0);
        assert_eq!((v + w), Vec2::new(-1.0, 7.0));
        assert_eq!((v - w), Vec2::new(7.0, 1.0));
        assert_eq!(v * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(2.0 * v, Vec2::new(6.0, 8.0));
        assert_eq!(v / 2.0, Vec2::new(1.5, 2.0));
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point2::new(1.0, 2.0));
        assert_eq!(a.midpoint(b), b.midpoint(a));
    }

    #[test]
    fn mirrored_y_reflects_across_axis() {
        let p = Point2::new(3.0, 5.0);
        assert_eq!(p.mirrored_y(1.0), Point2::new(3.0, -3.0));
        assert_eq!(p.mirrored_y(1.0).mirrored_y(1.0), p);
    }

    #[test]
    fn conversions_with_tuples() {
        let p: Point2 = (1.5, -2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
    }
}
