//! Property tests of incremental survivor reconfiguration: after every
//! death batch, the patched [`SurvivorTopology`] must equal a
//! from-scratch [`TopologyPolicy::build_on_survivors`], and a whole
//! lifetime simulation run incrementally must reproduce the
//! rebuild-everything run bit for bit — on the ideal radio *and*
//! through the phy pipeline (shadowed channel, retransmission energy).

use std::sync::Arc;

use cbtc_core::{CbtcConfig, Network};
use cbtc_energy::{
    LifetimeConfig, LifetimeSim, PhyLinks, PhyPolicy, SurvivorTopology, TopologyPolicy,
};
use cbtc_geom::{Alpha, Point2};
use cbtc_graph::{Layout, NodeId};
use cbtc_phy::PhyProfile;
use proptest::prelude::*;

fn policies() -> Vec<TopologyPolicy> {
    vec![
        TopologyPolicy::MaxPower,
        TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)),
        TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
        TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
    ]
}

/// Random distinct-point layouts.
fn layouts() -> impl Strategy<Value = Layout> {
    (4usize..40, 300.0f64..1600.0).prop_flat_map(|(n, side)| {
        proptest::collection::vec((0.0..side, 0.0..side), n).prop_map(|pts| {
            let mut points: Vec<Point2> = Vec::with_capacity(pts.len());
            for (x, y) in pts {
                let mut p = Point2::new(x, y);
                while points.contains(&p) {
                    p = Point2::new(p.x + 0.25, p.y);
                }
                points.push(p);
            }
            Layout::new(points)
        })
    })
}

/// A random death sequence: batches of 1–3 nodes, leaving at least one
/// survivor.
fn death_batches(n: usize, seed: u64) -> Vec<Vec<NodeId>> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in (1..order.len()).rev() {
        order.swap(i, next() % (i + 1));
    }
    order.truncate(n.saturating_sub(1));
    let mut batches = Vec::new();
    let mut cursor = 0;
    while cursor < order.len() {
        let size = 1 + next() % 3;
        let end = (cursor + size).min(order.len());
        batches.push(order[cursor..end].iter().map(|&i| NodeId::new(i)).collect());
        cursor = end;
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental reconfiguration ≡ full survivor rebuild after every
    /// death batch, under every policy.
    #[test]
    fn incremental_matches_full_rebuild(
        layout in layouts(),
        seed in 0u64..u64::MAX,
    ) {
        let network = Network::with_paper_radio(layout);
        let batches = death_batches(network.len(), seed);
        for policy in policies() {
            let mut topo = SurvivorTopology::new(&network, policy);
            prop_assert_eq!(topo.graph(), &policy.build(&network));
            let mut alive = vec![true; network.len()];
            for batch in &batches {
                for &d in batch {
                    alive[d.index()] = false;
                }
                let delta = topo.kill(&network, batch);
                let full = policy.build_on_survivors(&network, &alive);
                prop_assert_eq!(
                    topo.graph(), &full,
                    "policy {} diverged after batch {:?}", policy.label(), batch
                );
                // The delta must be consistent with the new graph.
                for &(u, v) in &delta.removed {
                    prop_assert!(!topo.graph().has_edge(u, v));
                }
                for &(u, v) in &delta.added {
                    prop_assert!(topo.graph().has_edge(u, v));
                }
            }
        }
    }
}

/// A full lifetime simulation on the incremental path reproduces the
/// rebuild-everything path bit for bit — same milestones, same drains,
/// same delivered counts, same everything.
#[test]
fn lifetime_sim_is_bitwise_equal_across_paths() {
    let mut pts = Vec::new();
    let mut state = 0x5DEECE66Du64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..40 {
        pts.push(Point2::new(next() * 900.0, next() * 900.0));
    }
    let network = Network::with_paper_radio(Layout::new(pts));
    let incremental = LifetimeConfig {
        initial_energy: 150_000.0,
        packets_per_epoch: 20,
        max_epochs: 3_000,
        ..LifetimeConfig::paper_default()
    };
    let full = LifetimeConfig {
        incremental: false,
        ..incremental
    };
    for policy in policies() {
        for seed in [3u64, 17] {
            let a = LifetimeSim::new(network.clone(), policy, incremental, seed).run();
            let b = LifetimeSim::new(network.clone(), policy, full, seed).run();
            assert_eq!(a, b, "policy {} seed {seed}", policy.label());
            assert!(a.first_death.is_some(), "the run must exercise deaths");
        }
    }
}

/// The phy lifetime path regained the incremental survivor machinery:
/// a whole shadowed, soft-PRR lifetime run through the incremental
/// tracker must reproduce the from-scratch-rebuild run bit for bit —
/// same milestones, same drains, same delivered counts, same
/// everything. (The σ = 0 ideal profile is additionally pinned to the
/// ideal experiment by the in-crate phy tests.)
#[test]
fn phy_lifetime_sim_is_bitwise_equal_across_paths() {
    let mut pts = Vec::new();
    let mut state = 0xFEED_5EEDu64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..35 {
        pts.push(Point2::new(next() * 900.0, next() * 900.0));
    }
    let network = Network::with_paper_radio(Layout::new(pts));
    let incremental = LifetimeConfig {
        initial_energy: 150_000.0,
        packets_per_epoch: 20,
        max_epochs: 3_000,
        ..LifetimeConfig::paper_default()
    };
    let full = LifetimeConfig {
        incremental: false,
        ..incremental
    };
    let mut profile = PhyProfile::shadowed(6.0, 11);
    profile.prr = cbtc_phy::PrrCurve::paper_transition();
    for policy in policies() {
        for seed in [3u64, 17] {
            let run = |config: LifetimeConfig| {
                let links = PhyLinks::new(*network.model(), &profile);
                LifetimeSim::with_builder(
                    network.clone(),
                    Arc::new(PhyPolicy::geometric(policy, profile)),
                    Arc::new(links),
                    config,
                    seed,
                )
                .run()
            };
            let a = run(incremental);
            let b = run(full);
            assert_eq!(a, b, "phy policy {} seed {seed}", policy.label());
            assert!(a.first_death.is_some(), "the run must exercise deaths");
        }
    }
}
