//! Properties of measured-power pricing ([`cbtc_radio::PowerBasis`]):
//!
//! * on the ideal channel `Measured` is an exact ×1 — lifetime reports
//!   and traces reproduce the `Geometric` run bit for bit (the trace
//!   headers differ only in the declared pricing basis);
//! * the incremental survivor path under measured pricing reproduces the
//!   rebuild-everything path bit for bit, through shadowed channels and
//!   retransmission energy;
//! * tracing never perturbs a measured run, and the trace declares its
//!   basis;
//! * under σ = 8 dB shadowing with the soft PRR curve, measured pricing
//!   un-pins the first death that geometric pricing collapses to the
//!   first epochs (the headline claim, in test form).

use std::sync::Arc;

use cbtc_core::CbtcConfig;
use cbtc_core::Network;
use cbtc_energy::{
    phy_lifetime_experiment, LifetimeConfig, LifetimeReport, LifetimeSim, PhyLinks, PhyPolicy,
    TopologyPolicy,
};
use cbtc_geom::{Alpha, Point2};
use cbtc_graph::Layout;
use cbtc_phy::{PhyProfile, PrrCurve};
use cbtc_radio::PowerBasis;
use cbtc_trace::{analyze, parse_trace, MemorySink, TraceHandle};
use cbtc_workloads::Scenario;

fn scattered_network(count: usize, side: f64, seed: u64) -> Network {
    let mut state = seed.max(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts = (0..count)
        .map(|_| Point2::new(next() * side, next() * side))
        .collect();
    Network::with_paper_radio(Layout::new(pts))
}

fn fast_config(basis: PowerBasis) -> LifetimeConfig {
    let mut config = LifetimeConfig {
        initial_energy: 150_000.0,
        packets_per_epoch: 20,
        max_epochs: 3_000,
        ..LifetimeConfig::paper_default()
    };
    config.energy = config.energy.with_power_basis(basis);
    config
}

fn policies() -> Vec<TopologyPolicy> {
    vec![
        TopologyPolicy::MaxPower,
        TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
        TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
    ]
}

/// Runs a traced phy lifetime sim and returns `(report, jsonl)`.
fn traced_phy_run(
    network: &Network,
    policy: TopologyPolicy,
    profile: PhyProfile,
    config: LifetimeConfig,
    seed: u64,
) -> (LifetimeReport, String) {
    let (handle, events) = TraceHandle::in_memory();
    let links = PhyLinks::new(*network.model(), &profile);
    let mut sim = LifetimeSim::with_builder(
        network.clone(),
        Arc::new(PhyPolicy {
            policy,
            profile,
            basis: config.energy.power_basis,
        }),
        Arc::new(links),
        config,
        seed,
    );
    sim.set_trace(handle);
    let report = sim.run();
    let jsonl = MemorySink::to_jsonl(&events.lock().unwrap());
    (report, jsonl)
}

/// Measured pricing on the ideal channel is an exact ×1: reports and
/// traces are bit-identical to the geometric run, except for the trace
/// header's declared basis.
#[test]
fn measured_on_ideal_channel_is_bitwise_geometric() {
    let network = scattered_network(30, 900.0, 0xBA5E);
    for policy in policies() {
        for seed in [3u64, 17] {
            let (geo_report, geo_jsonl) = traced_phy_run(
                &network,
                policy,
                PhyProfile::ideal(),
                fast_config(PowerBasis::Geometric),
                seed,
            );
            let (mea_report, mea_jsonl) = traced_phy_run(
                &network,
                policy,
                PhyProfile::ideal(),
                fast_config(PowerBasis::Measured),
                seed,
            );
            assert_eq!(
                geo_report,
                mea_report,
                "policy {} seed {seed}: measured-on-ideal must be ×1",
                policy.label()
            );
            // Traces: line 1 is the Meta header and legitimately differs
            // in its `pricing` field; every following line is byte-equal.
            let geo_lines: Vec<&str> = geo_jsonl.lines().collect();
            let mea_lines: Vec<&str> = mea_jsonl.lines().collect();
            assert_eq!(geo_lines.len(), mea_lines.len());
            assert_eq!(
                geo_lines[0].replace("\"geometric\"", "\"measured\""),
                mea_lines[0],
                "headers differ only in the pricing basis"
            );
            assert_eq!(geo_lines[1..], mea_lines[1..], "trace bodies diverged");
        }
    }
}

/// The same ×1 guarantee at the aggregate level: a whole multi-seed
/// ideal-channel experiment produces identical aggregates under either
/// basis (the invariant the `phy` benchmark's drift check enforces in CI).
#[test]
fn ideal_experiment_aggregates_are_identical_across_bases() {
    let scenario = Scenario {
        name: "measured-ideal".to_owned(),
        node_count: 25,
        width: 900.0,
        height: 900.0,
        max_range: 500.0,
        trials: 3,
    };
    let policies = policies();
    let geo = phy_lifetime_experiment(
        &scenario,
        &policies,
        PhyProfile::ideal(),
        fast_config(PowerBasis::Geometric),
        7,
    );
    let mea = phy_lifetime_experiment(
        &scenario,
        &policies,
        PhyProfile::ideal(),
        fast_config(PowerBasis::Measured),
        7,
    );
    assert_eq!(geo, mea);
}

/// Measured pricing through the incremental survivor machinery: a whole
/// shadowed, soft-PRR lifetime run on the incremental path reproduces the
/// from-scratch-rebuild run bit for bit.
#[test]
fn measured_lifetime_sim_is_bitwise_equal_across_paths() {
    let network = scattered_network(35, 900.0, 0xFEED);
    let incremental = fast_config(PowerBasis::Measured);
    let full = LifetimeConfig {
        incremental: false,
        ..incremental
    };
    let mut profile = PhyProfile::shadowed(6.0, 11);
    profile.prr = PrrCurve::paper_transition();
    for policy in policies() {
        for seed in [3u64, 17] {
            let run = |config: LifetimeConfig| {
                let links = PhyLinks::new(*network.model(), &profile);
                LifetimeSim::with_builder(
                    network.clone(),
                    Arc::new(PhyPolicy {
                        policy,
                        profile,
                        basis: config.energy.power_basis,
                    }),
                    Arc::new(links),
                    config,
                    seed,
                )
                .run()
            };
            let a = run(incremental);
            let b = run(full);
            assert_eq!(a, b, "measured policy {} seed {seed}", policy.label());
            assert!(a.first_death.is_some(), "the run must exercise deaths");
        }
    }
}

/// Tracing never perturbs a measured-pricing run, and the trace header
/// declares the measured basis for the analyzer to surface.
#[test]
fn tracing_never_perturbs_a_measured_run() {
    let network = scattered_network(25, 900.0, 0xACE5);
    let mut profile = PhyProfile::shadowed(8.0, 5);
    profile.prr = PrrCurve::paper_transition();
    let policy = TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS));
    let config = fast_config(PowerBasis::Measured);

    let untraced = {
        let links = PhyLinks::new(*network.model(), &profile);
        LifetimeSim::with_builder(
            network.clone(),
            Arc::new(PhyPolicy {
                policy,
                profile,
                basis: config.energy.power_basis,
            }),
            Arc::new(links),
            config,
            9,
        )
        .run()
    };
    let (traced, jsonl) = traced_phy_run(&network, policy, profile, config, 9);
    assert_eq!(untraced, traced, "tracing must not perturb the run");

    let events = parse_trace(&jsonl).expect("valid JSONL");
    let analysis = analyze(&events).expect("valid trace");
    assert_eq!(analysis.pricing, "measured");
}

/// The headline: under σ = 8 dB independent shadowing with the soft PRR
/// curve, geometric pricing collapses (shadowed links get floor-level
/// PRR, so ARQ burns the battery within the first epochs) while measured
/// pricing — same field, same traffic — keeps the network alive far
/// longer, because every link is priced to what the channel actually
/// demands.
#[test]
fn measured_pricing_unpins_the_sigma8_first_death() {
    let scenario = Scenario {
        name: "sigma8".to_owned(),
        node_count: 30,
        width: 900.0,
        height: 900.0,
        max_range: 500.0,
        trials: 3,
    };
    let mut profile = PhyProfile::shadowed(8.0, 21);
    profile.prr = PrrCurve::paper_transition();
    let policy = [TopologyPolicy::Cbtc(CbtcConfig::all_applicable(
        Alpha::TWO_PI_THIRDS,
    ))];
    let geo = &phy_lifetime_experiment(
        &scenario,
        &policy,
        profile,
        fast_config(PowerBasis::Geometric),
        13,
    )[0];
    let mea = &phy_lifetime_experiment(
        &scenario,
        &policy,
        profile,
        fast_config(PowerBasis::Measured),
        13,
    )[0];
    assert!(
        geo.first_death.mean < 20.0,
        "geometric pricing should collapse under σ = 8 dB, got mean first death {}",
        geo.first_death.mean
    );
    assert!(
        mea.first_death.mean >= 4.0 * geo.first_death.mean,
        "measured pricing must un-pin the first death: measured {} vs geometric {}",
        mea.first_death.mean,
        geo.first_death.mean
    );
}
