//! Integration tests of the lifetime subsystem: determinism, energy
//! conservation, and the paper's §6 claim (topology control extends
//! lifetime) as a property over random scenarios.

use cbtc_core::CbtcConfig;
use cbtc_energy::{LifetimeConfig, LifetimeReport, LifetimeSim, TopologyPolicy, TrafficPattern};
use cbtc_geom::Alpha;
use cbtc_workloads::{RandomPlacement, Scenario};
use proptest::prelude::*;

fn smoke_network(seed: u64) -> cbtc_core::Network {
    RandomPlacement::from_scenario(&Scenario::smoke()).generate(seed)
}

fn all_opt() -> TopologyPolicy {
    TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS))
}

fn run(policy: TopologyPolicy, config: LifetimeConfig, seed: u64) -> LifetimeReport {
    LifetimeSim::new(smoke_network(seed), policy, config, seed).run()
}

#[test]
fn same_seed_gives_identical_trace() {
    for policy in [TopologyPolicy::MaxPower, all_opt()] {
        let a = run(policy, LifetimeConfig::smoke(), 42);
        let b = run(policy, LifetimeConfig::smoke(), 42);
        // Full structural equality: every milestone, the whole alive
        // curve, every battery level and the complete ledger.
        assert_eq!(a, b);
        let c = run(policy, LifetimeConfig::smoke(), 43);
        assert_ne!(a, c, "different seeds must produce different traces");
    }
}

#[test]
fn energy_is_conserved() {
    for (policy, pattern) in [
        (TopologyPolicy::MaxPower, TrafficPattern::Uniform),
        (all_opt(), TrafficPattern::Uniform),
        (
            all_opt(),
            TrafficPattern::Convergecast {
                sink: cbtc_graph::NodeId::new(0),
            },
        ),
    ] {
        let mut config = LifetimeConfig::smoke();
        config.pattern = pattern;
        let report = run(policy, config, 7);

        // Every joule the ledger recorded left exactly one battery.
        let drained_from_batteries: f64 = report
            .remaining_per_node
            .iter()
            .map(|remaining| config.initial_energy - remaining)
            .sum();
        let per_node_total: f64 = report.drained_per_node.iter().sum();
        let ledger_total = report.ledger.total();

        let scale = drained_from_batteries.max(1.0);
        assert!(
            (ledger_total - drained_from_batteries).abs() / scale < 1e-9,
            "ledger {ledger_total} vs battery delta {drained_from_batteries}"
        );
        assert!(
            (per_node_total - drained_from_batteries).abs() / scale < 1e-9,
            "per-node sum {per_node_total} vs battery delta {drained_from_batteries}"
        );
        // All four categories were exercised.
        assert!(report.ledger.tx > 0.0);
        assert!(report.ledger.rx > 0.0);
        assert!(report.ledger.idle > 0.0);
        assert!(report.ledger.maintenance > 0.0);
    }
}

#[test]
fn milestones_and_curves_are_consistent() {
    let report = run(all_opt(), LifetimeConfig::smoke(), 3);
    assert_eq!(report.epochs_run as usize, report.alive_curve.len());
    let fd = report.first_death.expect("smoke config drains batteries");
    let ad = report.all_dead.expect("smoke config kills everyone");
    let part = report.partition.expect("death implies eventual partition");
    assert!(fd <= part && part <= ad);
    // The alive curve is non-increasing and hits zero at all_dead.
    for w in report.alive_curve.windows(2) {
        assert!(w[1] <= w[0], "alive count must not resurrect");
    }
    assert_eq!(report.alive_curve[ad as usize - 1], 0);
    assert!(
        report.alive_curve[fd as usize - 2] == 25,
        "everyone alive before first death"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// §6 as a property: on random paper-style networks, CBTC with all
    /// optimizations keeps the first node alive at least as long as the
    /// max-power baseline, under the default standby-dominated model.
    #[test]
    fn cbtc_lifetime_at_least_max_power(
        seed in 0u64..10_000,
        nodes in 20usize..40,
        side in 700.0f64..1200.0,
    ) {
        let network = RandomPlacement::new(nodes, side, side, 500.0).generate(seed);
        let config = LifetimeConfig::smoke();
        let max_power =
            LifetimeSim::new(network.clone(), TopologyPolicy::MaxPower, config, seed).run();
        let cbtc = LifetimeSim::new(network, all_opt(), config, seed).run();
        prop_assert!(
            cbtc.first_death_or_censored() >= max_power.first_death_or_censored(),
            "seed {} nodes {} side {}: CBTC died first ({} < {})",
            seed,
            nodes,
            side,
            cbtc.first_death_or_censored(),
            max_power.first_death_or_censored()
        );
        // Time-to-partition is never worse either.
        prop_assert!(
            cbtc.partition_or_censored() >= max_power.partition_or_censored(),
            "seed {seed}: CBTC partitioned first"
        );
    }
}
