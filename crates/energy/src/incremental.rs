//! Incremental survivor reconfiguration: the §4 re-run as a patch, not a
//! rebuild.
//!
//! The affected-set machinery that used to live here was promoted to the
//! metric-generic [`cbtc_core::reconfig::DeltaTopology`] engine, which
//! also handles joins, moves and stochastic channels. What remains is
//! the lifetime engine's *death-only adapter*: [`SurvivorTopology`]
//! narrows the engine to the death streams a battery simulation
//! produces, keeps the view-free max-power fast path (stripping the dead
//! nodes' edges is the whole update), and stays **edge-for-edge
//! identical** to [`TopologyPolicy::build_on_survivors`] — the property
//! tests replay both paths against each other, and a whole lifetime run
//! is bitwise equal either way.

use cbtc_core::reconfig::{DeltaTopology, GeometricMetric, LinkMetric, NodeEvent};
use cbtc_core::Network;
use cbtc_graph::{NodeId, UndirectedGraph};

use crate::builder::SurvivorTracker;
use crate::TopologyPolicy;

pub use cbtc_core::reconfig::TopologyDelta;

/// The one death-only adapter behind every [`SurvivorTracker`]: either a
/// [`DeltaTopology`] engine over some metric (CBTC policies), or a bare
/// graph whose survivor topology is the induced subgraph (view-free
/// max-power style policies, where a death strips exactly the dead
/// node's edges). [`SurvivorTopology`] instantiates it on the geometric
/// metric; the phy subsystem on the effective-distance metric.
#[derive(Debug, Clone)]
pub(crate) struct MetricSurvivorTopology<M: LinkMetric> {
    alive: Vec<bool>,
    /// The CBTC engine; `None` for the view-free policies.
    cbtc: Option<DeltaTopology<M>>,
    /// The full topology for the view-free fast path (unused when the
    /// engine owns the topology).
    graph: UndirectedGraph,
}

impl<M: LinkMetric> MetricSurvivorTopology<M> {
    /// An adapter over the incremental engine.
    pub(crate) fn engine(engine: DeltaTopology<M>) -> Self {
        MetricSurvivorTopology {
            alive: vec![true; engine.active().len()],
            cbtc: Some(engine),
            graph: UndirectedGraph::new(0),
        }
    }

    /// An adapter over an induced-subgraph topology (every node alive).
    pub(crate) fn induced(graph: UndirectedGraph) -> Self {
        MetricSurvivorTopology {
            alive: vec![true; graph.node_count()],
            cbtc: None,
            graph,
        }
    }

    pub(crate) fn graph(&self) -> &UndirectedGraph {
        self.cbtc.as_ref().map_or(&self.graph, DeltaTopology::graph)
    }

    pub(crate) fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Installs observability hooks on the CBTC engine; a no-op for the
    /// view-free fast path (whose kills are trivial edge strips).
    pub(crate) fn set_trace(&mut self, trace: cbtc_trace::TraceHandle) {
        if let Some(engine) = &mut self.cbtc {
            engine.set_trace(trace);
        }
    }

    /// Advances the engine's trace clock.
    pub(crate) fn set_trace_clock(&mut self, time: f64) {
        if let Some(engine) = &mut self.cbtc {
            engine.set_trace_clock(time);
        }
    }

    /// Installs a metrics registry on the CBTC engine; a no-op for the
    /// view-free fast path (whose kills are trivial edge strips).
    pub(crate) fn set_metrics(&mut self, registry: &cbtc_metrics::MetricsRegistry) {
        if let Some(engine) = &mut self.cbtc {
            engine.set_metrics(registry);
        }
    }

    /// Kills `dead` and reconfigures incrementally.
    ///
    /// # Panics
    ///
    /// Panics if a node in `dead` is already dead.
    pub(crate) fn kill(&mut self, dead: &[NodeId]) -> TopologyDelta {
        match &mut self.cbtc {
            Some(engine) => {
                let events: Vec<NodeEvent> = dead.iter().map(|&d| NodeEvent::Death(d)).collect();
                let delta = engine.apply(&events);
                for &d in dead {
                    self.alive[d.index()] = false;
                }
                delta
            }
            None => {
                let mut delta = TopologyDelta::default();
                for &d in dead {
                    assert!(self.alive[d.index()], "node {d} is already dead");
                    self.alive[d.index()] = false;
                    let neighbors: Vec<NodeId> = self.graph.neighbors(d).collect();
                    for v in neighbors {
                        self.graph.remove_edge(d, v);
                        delta.removed.push((d.min(v), d.max(v)));
                    }
                }
                delta.removed.sort_unstable();
                delta.removed.dedup();
                delta
            }
        }
    }
}

impl<M: LinkMetric + std::fmt::Debug + Clone + Send + 'static> SurvivorTracker
    for MetricSurvivorTopology<M>
{
    fn graph(&self) -> &UndirectedGraph {
        MetricSurvivorTopology::graph(self)
    }

    fn kill(&mut self, _network: &Network, dead: &[NodeId]) -> TopologyDelta {
        MetricSurvivorTopology::kill(self, dead)
    }

    fn set_trace(&mut self, trace: cbtc_trace::TraceHandle) {
        MetricSurvivorTopology::set_trace(self, trace);
    }

    fn set_trace_clock(&mut self, time: f64) {
        MetricSurvivorTopology::set_trace_clock(self, time);
    }

    fn set_metrics(&mut self, registry: &cbtc_metrics::MetricsRegistry) {
        MetricSurvivorTopology::set_metrics(self, registry);
    }

    fn clone_box(&self) -> Box<dyn SurvivorTracker> {
        Box::new(self.clone())
    }
}

/// The current CBTC (or max-power) topology over the survivors of a
/// fixed network, maintained incrementally under node deaths — a
/// death-only adapter over [`DeltaTopology`].
///
/// # Example
///
/// ```
/// use cbtc_core::{CbtcConfig, Network};
/// use cbtc_energy::{SurvivorTopology, TopologyPolicy};
/// use cbtc_geom::{Alpha, Point2};
/// use cbtc_graph::{Layout, NodeId};
///
/// let network = Network::with_paper_radio(Layout::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(300.0, 0.0),
///     Point2::new(600.0, 0.0),
/// ]));
/// let policy = TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS));
/// let mut topo = SurvivorTopology::new(&network, policy);
/// assert_eq!(topo.graph().edge_count(), 2);
///
/// let delta = topo.kill(&network, &[NodeId::new(1)]);
/// // The middle node's edges are gone; the ends are out of range.
/// assert_eq!(topo.graph().edge_count(), 0);
/// assert_eq!(delta.removed.len(), 2);
/// // Identical to a from-scratch survivor rebuild.
/// let full = policy.build_on_survivors(&network, &[true, false, true]);
/// assert_eq!(topo.graph(), &full);
/// ```
#[derive(Debug, Clone)]
pub struct SurvivorTopology {
    inner: MetricSurvivorTopology<GeometricMetric>,
}

impl SurvivorTopology {
    /// Builds the initial (everyone-alive) topology for `policy`.
    pub fn new(network: &Network, policy: TopologyPolicy) -> Self {
        let inner = match policy {
            // Max power never re-grows: survivors keep broadcasting at
            // `P`, so the survivor topology is the induced subgraph.
            TopologyPolicy::MaxPower => MetricSurvivorTopology::induced(network.max_power_graph()),
            TopologyPolicy::Cbtc(config) => MetricSurvivorTopology::engine(DeltaTopology::new(
                network.layout().clone(),
                vec![true; network.len()],
                network.max_range(),
                config,
                false,
                GeometricMetric,
            )),
        };
        SurvivorTopology { inner }
    }

    /// The current topology: edges only between survivors, dead nodes
    /// isolated, on the original node set.
    pub fn graph(&self) -> &UndirectedGraph {
        self.inner.graph()
    }

    /// The alive mask this topology currently reflects.
    pub fn alive(&self) -> &[bool] {
        self.inner.alive()
    }

    /// Kills `dead` and reconfigures the survivors incrementally,
    /// returning the final graph's edge delta.
    ///
    /// Only survivors whose discovery prefix contained a dead node
    /// re-run their growth; everyone else's view — and therefore every
    /// edge between unaffected survivors — is provably unchanged and is
    /// not touched.
    ///
    /// # Panics
    ///
    /// Panics if a node in `dead` is already dead (the engine's views
    /// would desynchronize from the mask).
    pub fn kill(&mut self, _network: &Network, dead: &[NodeId]) -> TopologyDelta {
        self.inner.kill(dead)
    }
}

impl SurvivorTracker for SurvivorTopology {
    fn graph(&self) -> &UndirectedGraph {
        SurvivorTopology::graph(self)
    }

    fn kill(&mut self, network: &Network, dead: &[NodeId]) -> TopologyDelta {
        SurvivorTopology::kill(self, network, dead)
    }

    fn set_trace(&mut self, trace: cbtc_trace::TraceHandle) {
        self.inner.set_trace(trace);
    }

    fn set_trace_clock(&mut self, time: f64) {
        self.inner.set_trace_clock(time);
    }

    fn set_metrics(&mut self, registry: &cbtc_metrics::MetricsRegistry) {
        self.inner.set_metrics(registry);
    }

    fn clone_box(&self) -> Box<dyn SurvivorTracker> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_core::CbtcConfig;
    use cbtc_geom::{Alpha, Point2};
    use cbtc_graph::Layout;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn cluster() -> Network {
        // A dense two-ring cluster with enough redundancy that deaths
        // trigger actual re-growth.
        let mut pts = vec![Point2::new(0.0, 0.0)];
        for k in 0..6 {
            let a = k as f64 * std::f64::consts::TAU / 6.0;
            pts.push(Point2::new(180.0 * a.cos(), 180.0 * a.sin()));
        }
        for k in 0..5 {
            let a = 0.3 + k as f64 * std::f64::consts::TAU / 5.0;
            pts.push(Point2::new(340.0 * a.cos(), 340.0 * a.sin()));
        }
        Network::with_paper_radio(Layout::new(pts))
    }

    fn policies() -> Vec<TopologyPolicy> {
        vec![
            TopologyPolicy::MaxPower,
            TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)),
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
        ]
    }

    #[test]
    fn initial_build_matches_policy_build() {
        let network = cluster();
        for policy in policies() {
            let topo = SurvivorTopology::new(&network, policy);
            assert_eq!(
                topo.graph(),
                &policy.build(&network),
                "policy {}",
                policy.label()
            );
        }
    }

    #[test]
    fn kill_matches_full_survivor_rebuild_step_by_step() {
        let network = cluster();
        let death_order = [3u32, 8, 0, 10, 5];
        for policy in policies() {
            let mut topo = SurvivorTopology::new(&network, policy);
            let mut alive = vec![true; network.len()];
            for &d in &death_order {
                alive[d as usize] = false;
                let delta = topo.kill(&network, &[n(d)]);
                let full = policy.build_on_survivors(&network, &alive);
                assert_eq!(
                    topo.graph(),
                    &full,
                    "policy {} after killing {d}",
                    policy.label()
                );
                // The delta must describe exactly the change.
                for (u, v) in &delta.removed {
                    assert!(!topo.graph().has_edge(*u, *v));
                }
                for (u, v) in &delta.added {
                    assert!(topo.graph().has_edge(*u, *v));
                }
            }
        }
    }

    #[test]
    fn batch_deaths_match_full_rebuild() {
        let network = cluster();
        for policy in policies() {
            let mut topo = SurvivorTopology::new(&network, policy);
            let dead = [n(1), n(2), n(7)];
            topo.kill(&network, &dead);
            let mut alive = vec![true; network.len()];
            for d in dead {
                alive[d.index()] = false;
            }
            assert_eq!(
                topo.graph(),
                &policy.build_on_survivors(&network, &alive),
                "policy {}",
                policy.label()
            );
            assert_eq!(topo.alive(), &alive[..]);
        }
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_kill_panics() {
        let network = cluster();
        let mut topo = SurvivorTopology::new(&network, TopologyPolicy::MaxPower);
        topo.kill(&network, &[n(0)]);
        topo.kill(&network, &[n(0)]);
    }

    #[test]
    fn unrelated_deaths_leave_far_edges_alone() {
        // Two clusters far apart: killing in one must not change (or
        // re-derive differently) the other's edges.
        let mut pts = Vec::new();
        for k in 0..4 {
            let a = k as f64 * std::f64::consts::TAU / 4.0;
            pts.push(Point2::new(150.0 * a.cos(), 150.0 * a.sin()));
        }
        for k in 0..4 {
            let a = k as f64 * std::f64::consts::TAU / 4.0;
            pts.push(Point2::new(5_000.0 + 150.0 * a.cos(), 150.0 * a.sin()));
        }
        let network = Network::with_paper_radio(Layout::new(pts));
        let policy = TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS));
        let mut topo = SurvivorTopology::new(&network, policy);
        let before: Vec<_> = topo
            .graph()
            .edges()
            .filter(|(u, _)| u.index() >= 4)
            .collect();
        let delta = topo.kill(&network, &[n(0)]);
        let after: Vec<_> = topo
            .graph()
            .edges()
            .filter(|(u, _)| u.index() >= 4)
            .collect();
        assert_eq!(before, after, "far cluster untouched");
        assert!(delta
            .removed
            .iter()
            .chain(&delta.added)
            .all(|(u, v)| u.index() < 4 && v.index() < 4));
    }
}
