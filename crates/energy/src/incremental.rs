//! Incremental survivor reconfiguration: the §4 re-run as a patch, not a
//! rebuild.
//!
//! The lifetime engine used to respond to every death epoch by
//! reconstructing the topology from scratch — a fresh survivor layout, a
//! full `CBTC(α)` run, and a wholesale routing reset. But a node death is
//! a *local* event: only survivors with the dead node inside maximum
//! range can see their candidate set change, so only their growth can
//! change, and therefore only their edges. [`SurvivorTopology`] maintains
//! the per-node views, the discovery relation, and the optimized graph
//! across deaths, re-growing exactly the affected survivors over a
//! persistent [`SpatialGrid`] and patching the graph in place. The result
//! is **edge-for-edge identical** to
//! [`TopologyPolicy::build_on_survivors`] (the property tests assert it);
//! only the cost changes — from `O(n²)` per death epoch to
//! `O(affected · local density)`.

use std::collections::BTreeSet;

use cbtc_core::opt::{
    node_floor, node_redundancy, pairwise_removal, shrink_back_view, PairwisePolicy,
};
use cbtc_core::{construction_cell, dead_view, grow_node_in_grid, CbtcConfig, Network, NodeView};
use cbtc_graph::{Layout, NodeId, SpatialGrid, UndirectedGraph};

use crate::TopologyPolicy;

/// The edges by which one [`SurvivorTopology::kill`] changed the final
/// graph — what routing caches need to decide which trees survive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyDelta {
    /// Edges present before the deaths and absent after, as `(min, max)`.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Edges absent before the deaths and present after, as `(min, max)`.
    pub added: Vec<(NodeId, NodeId)>,
}

impl TopologyDelta {
    /// Whether the deaths changed no edge at all.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// Per-node [`PairwisePolicy::PowerReducing`] state over the
/// pre-pairwise graph. Both fields are functions of one node's adjacency
/// plus the (static) geometry, which is exactly why pairwise removal can
/// be re-derived for only the nodes whose neighborhoods changed.
#[derive(Debug, Clone)]
struct PairwiseState {
    /// `redundant_from[u]` = [`node_redundancy`] at `u`.
    redundant_from: Vec<BTreeSet<NodeId>>,
    /// `floor[u]` = [`node_floor`] at `u`.
    floor: Vec<f64>,
}

impl PairwiseState {
    fn over(graph: &UndirectedGraph, layout: &Layout) -> Self {
        let redundant_from: Vec<BTreeSet<NodeId>> = graph
            .node_ids()
            .map(|u| node_redundancy(graph, layout, u))
            .collect();
        let floor = graph
            .node_ids()
            .map(|u| node_floor(graph, layout, u, &redundant_from[u.index()]))
            .collect();
        PairwiseState {
            redundant_from,
            floor,
        }
    }

    fn refresh(&mut self, graph: &UndirectedGraph, layout: &Layout, u: NodeId) {
        self.redundant_from[u.index()] = node_redundancy(graph, layout, u);
        self.floor[u.index()] = node_floor(graph, layout, u, &self.redundant_from[u.index()]);
    }

    /// Whether the power-reducing policy removes edge `{u, v}`.
    fn drops(&self, layout: &Layout, u: NodeId, v: NodeId) -> bool {
        let d = layout.distance(u, v);
        (self.redundant_from[u.index()].contains(&v) && d > self.floor[u.index()])
            || (self.redundant_from[v.index()].contains(&u) && d > self.floor[v.index()])
    }
}

/// Per-node CBTC state kept between death epochs (absent for the
/// view-free max-power policy).
#[derive(Debug, Clone)]
struct CbtcState {
    config: CbtcConfig,
    /// Index over the *alive* nodes only.
    grid: SpatialGrid,
    /// Raw growing-phase views over the current survivors; dead nodes
    /// hold [`dead_view`].
    basic: Vec<NodeView>,
    /// Post-shrink-back views (equal to `basic` when op1 is off) — the
    /// views the graph stages are derived from.
    effective: Vec<NodeView>,
    /// Reverse discovery relation over effective views:
    /// `discovered_by[u]` holds every `v` whose effective view discovers
    /// `u`, sorted. Lets an affected node rebuild its closure/core edges
    /// without consulting any unaffected view.
    discovered_by: Vec<Vec<NodeId>>,
    /// The symmetric closure/core before pairwise removal.
    pre_pairwise: UndirectedGraph,
    /// Pairwise-removal state over `pre_pairwise` (op3 only).
    pairwise: Option<PairwiseState>,
}

/// The current CBTC (or max-power) topology over the survivors of a
/// fixed network, maintained incrementally under node deaths.
///
/// # Example
///
/// ```
/// use cbtc_core::{CbtcConfig, Network};
/// use cbtc_energy::{SurvivorTopology, TopologyPolicy};
/// use cbtc_geom::{Alpha, Point2};
/// use cbtc_graph::{Layout, NodeId};
///
/// let network = Network::with_paper_radio(Layout::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(300.0, 0.0),
///     Point2::new(600.0, 0.0),
/// ]));
/// let policy = TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS));
/// let mut topo = SurvivorTopology::new(&network, policy);
/// assert_eq!(topo.graph().edge_count(), 2);
///
/// let delta = topo.kill(&network, &[NodeId::new(1)]);
/// // The middle node's edges are gone; the ends are out of range.
/// assert_eq!(topo.graph().edge_count(), 0);
/// assert_eq!(delta.removed.len(), 2);
/// // Identical to a from-scratch survivor rebuild.
/// let full = policy.build_on_survivors(&network, &[true, false, true]);
/// assert_eq!(topo.graph(), &full);
/// ```
#[derive(Debug, Clone)]
pub struct SurvivorTopology {
    policy: TopologyPolicy,
    alive: Vec<bool>,
    cbtc: Option<CbtcState>,
    /// The final graph after all configured optimizations.
    graph: UndirectedGraph,
}

impl SurvivorTopology {
    /// Builds the initial (everyone-alive) topology for `policy`.
    pub fn new(network: &Network, policy: TopologyPolicy) -> Self {
        let n = network.len();
        let alive = vec![true; n];
        match policy {
            TopologyPolicy::MaxPower => SurvivorTopology {
                policy,
                alive,
                cbtc: None,
                graph: network.max_power_graph(),
            },
            TopologyPolicy::Cbtc(config) => {
                let layout = network.layout();
                let r = network.max_range();
                let grid =
                    SpatialGrid::from_layout(layout, construction_cell(layout, r, layout.len()));
                // The initial growth is the ordinary (output-sensitive,
                // parallel) engine; only the *maintenance* below is
                // specific to the incremental path.
                let basic: Vec<NodeView> =
                    cbtc_core::run_basic(network, config.alpha()).into_views();
                let effective: Vec<NodeView> = if config.shrink_back() {
                    basic
                        .iter()
                        .map(|v| shrink_back_view(v, config.alpha()))
                        .collect()
                } else {
                    basic.clone()
                };
                let discovered_by = reverse_discoveries(&effective);
                let pre_pairwise = graph_from_views(&effective, &discovered_by, &config);
                let (graph, pairwise) = if config.pairwise_removal() {
                    (
                        pairwise_removal(&pre_pairwise, layout, PairwisePolicy::PowerReducing)
                            .graph,
                        Some(PairwiseState::over(&pre_pairwise, layout)),
                    )
                } else {
                    (pre_pairwise.clone(), None)
                };
                SurvivorTopology {
                    policy,
                    alive,
                    cbtc: Some(CbtcState {
                        config,
                        grid,
                        basic,
                        effective,
                        discovered_by,
                        pre_pairwise,
                        pairwise,
                    }),
                    graph,
                }
            }
        }
    }

    /// The current topology: edges only between survivors, dead nodes
    /// isolated, on the original node set.
    pub fn graph(&self) -> &UndirectedGraph {
        &self.graph
    }

    /// The alive mask this topology currently reflects.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Kills `dead` and reconfigures the survivors incrementally,
    /// returning the final graph's edge delta.
    ///
    /// Only survivors within maximum range of a dead node re-run their
    /// growth; everyone else's view — and therefore every edge between
    /// unaffected survivors — is provably unchanged and is not touched.
    ///
    /// # Panics
    ///
    /// Panics if a node in `dead` is already dead (the grid and views
    /// would desynchronize from the mask).
    pub fn kill(&mut self, network: &Network, dead: &[NodeId]) -> TopologyDelta {
        for &d in dead {
            assert!(self.alive[d.index()], "node {d} is already dead");
            self.alive[d.index()] = false;
        }
        match self.policy {
            TopologyPolicy::MaxPower => self.kill_max_power(dead),
            TopologyPolicy::Cbtc(_) => self.kill_cbtc(network, dead),
        }
    }

    /// Max power never re-grows: survivors keep broadcasting at `P`, so
    /// the update is exactly "strip the dead nodes' edges".
    fn kill_max_power(&mut self, dead: &[NodeId]) -> TopologyDelta {
        let mut delta = TopologyDelta::default();
        for &d in dead {
            let neighbors: Vec<NodeId> = self.graph.neighbors(d).collect();
            for v in neighbors {
                self.graph.remove_edge(d, v);
                delta.removed.push((d.min(v), d.max(v)));
            }
        }
        delta.removed.sort_unstable();
        delta.removed.dedup();
        delta
    }

    fn kill_cbtc(&mut self, network: &Network, dead: &[NodeId]) -> TopologyDelta {
        let state = self.cbtc.as_mut().expect("CBTC policy has CBTC state");
        let layout = network.layout();
        let r = network.max_range();

        // 1. Deindex the dead, then find the affected survivors: those
        //    with a dead node inside maximum range (a superset of "those
        //    whose growth can change").
        for &d in dead {
            state.grid.remove(d, layout.position(d));
        }
        let mut affected: Vec<NodeId> = Vec::new();
        let mut candidates = Vec::new();
        for &d in dead {
            let p = layout.position(d);
            candidates.clear();
            state.grid.candidates_within(p, r, &mut candidates);
            for &u in &candidates {
                if layout.position(u).distance_squared(p) <= r * r {
                    affected.push(u);
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();

        // 2. Retire the dead nodes' views and reverse-discovery entries.
        for &d in dead {
            for v in state.effective[d.index()].neighbor_ids() {
                remove_sorted(&mut state.discovered_by[v.index()], d);
            }
            state.discovered_by[d.index()].clear();
            state.basic[d.index()] = dead_view();
            state.effective[d.index()] = dead_view();
        }

        // 3. Re-grow the affected survivors over the survivor-only grid
        //    and refresh the reverse relation.
        for &u in &affected {
            let basic = grow_node_in_grid(layout, &state.grid, u, state.config.alpha(), r);
            let effective = if state.config.shrink_back() {
                shrink_back_view(&basic, state.config.alpha())
            } else {
                basic.clone()
            };
            for v in state.effective[u.index()].neighbor_ids() {
                remove_sorted(&mut state.discovered_by[v.index()], u);
            }
            for v in effective.neighbor_ids() {
                insert_sorted(&mut state.discovered_by[v.index()], u);
            }
            state.basic[u.index()] = basic;
            state.effective[u.index()] = effective;
        }

        // 4. Patch the pre-pairwise graph: drop every edge at a dead or
        //    affected node, then rebuild the affected nodes' edges from
        //    their new views plus the reverse relation. Edges between two
        //    unaffected survivors are untouched — neither endpoint's view
        //    changed. Removals cancelled by a re-add net out, so the
        //    recorded events are the graph's exact edge delta.
        let mut pre_removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut pre_added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for &x in dead.iter().chain(&affected) {
            let neighbors: Vec<NodeId> = state.pre_pairwise.neighbors(x).collect();
            for v in neighbors {
                if state.pre_pairwise.remove_edge(x, v) {
                    pre_removed.insert((x.min(v), x.max(v)));
                }
            }
        }
        let asymmetric = state.config.asymmetric_removal();
        for &u in &affected {
            let mut connect = Vec::new();
            for v in state.effective[u.index()].neighbor_ids() {
                if !asymmetric || state.effective[v.index()].discovered(u) {
                    connect.push(v);
                }
            }
            for &v in &state.discovered_by[u.index()] {
                if !asymmetric || state.effective[u.index()].discovered(v) {
                    connect.push(v);
                }
            }
            for v in connect {
                if !state.pre_pairwise.has_edge(u, v) {
                    state.pre_pairwise.add_edge(u, v);
                    let e = (u.min(v), u.max(v));
                    if !pre_removed.remove(&e) {
                        pre_added.insert(e);
                    }
                }
            }
        }

        // 5. Re-derive the final graph from the delta alone.
        match &mut state.pairwise {
            None => {
                // No op3: the final graph *is* the pre-pairwise graph, so
                // the events apply verbatim.
                for &(u, v) in &pre_removed {
                    self.graph.remove_edge(u, v);
                }
                for &(u, v) in &pre_added {
                    self.graph.add_edge(u, v);
                }
                TopologyDelta {
                    removed: pre_removed.into_iter().collect(),
                    added: pre_added.into_iter().collect(),
                }
            }
            Some(pairwise) => {
                // Pairwise decisions are local to an edge's endpoints:
                // only nodes whose pre-pairwise adjacency changed can
                // decide differently, so refresh exactly those and
                // re-judge exactly their incident edges.
                let mut dirty: Vec<NodeId> = pre_removed
                    .iter()
                    .chain(&pre_added)
                    .flat_map(|&(u, v)| [u, v])
                    .collect();
                dirty.sort_unstable();
                dirty.dedup();
                for &x in &dirty {
                    pairwise.refresh(&state.pre_pairwise, layout, x);
                }
                let old_rows: Vec<(NodeId, Vec<NodeId>)> = dirty
                    .iter()
                    .map(|&x| (x, self.graph.neighbors(x).collect()))
                    .collect();
                for (x, row) in &old_rows {
                    for &v in row {
                        self.graph.remove_edge(*x, v);
                    }
                }
                for &x in &dirty {
                    let neighbors: Vec<NodeId> = state.pre_pairwise.neighbors(x).collect();
                    for v in neighbors {
                        if !pairwise.drops(layout, x, v) {
                            self.graph.add_edge(x, v);
                        }
                    }
                }
                let mut removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
                let mut added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
                for (x, old_row) in &old_rows {
                    for &v in old_row {
                        if !self.graph.has_edge(*x, v) {
                            removed.insert((*x.min(&v), *x.max(&v)));
                        }
                    }
                    for v in self.graph.neighbors(*x) {
                        if old_row.binary_search(&v).is_err() {
                            added.insert((*x.min(&v), *x.max(&v)));
                        }
                    }
                }
                TopologyDelta {
                    removed: removed.into_iter().collect(),
                    added: added.into_iter().collect(),
                }
            }
        }
    }
}

/// `discovered_by[u]` = sorted list of nodes whose view discovers `u`.
fn reverse_discoveries(views: &[NodeView]) -> Vec<Vec<NodeId>> {
    let mut reverse: Vec<Vec<NodeId>> = vec![Vec::new(); views.len()];
    for (i, view) in views.iter().enumerate() {
        let u = NodeId::new(i as u32);
        for d in &view.discoveries {
            reverse[d.id.index()].push(u);
        }
    }
    for list in &mut reverse {
        list.sort_unstable();
    }
    reverse
}

/// The symmetric closure (or, under op2, core) of the effective views.
fn graph_from_views(
    views: &[NodeView],
    discovered_by: &[Vec<NodeId>],
    config: &CbtcConfig,
) -> UndirectedGraph {
    let asymmetric = config.asymmetric_removal();
    let edges = views.iter().enumerate().flat_map(|(i, view)| {
        let u = NodeId::new(i as u32);
        view.discoveries
            .iter()
            .filter(move |d| !asymmetric || discovered_by[i].binary_search(&d.id).is_ok())
            .map(move |d| (u, d.id))
    });
    UndirectedGraph::from_edges(views.len(), edges)
}

fn insert_sorted(list: &mut Vec<NodeId>, v: NodeId) {
    if let Err(i) = list.binary_search(&v) {
        list.insert(i, v);
    }
}

fn remove_sorted(list: &mut Vec<NodeId>, v: NodeId) {
    if let Ok(i) = list.binary_search(&v) {
        list.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_geom::{Alpha, Point2};
    use cbtc_graph::Layout;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn cluster() -> Network {
        // A dense two-ring cluster with enough redundancy that deaths
        // trigger actual re-growth.
        let mut pts = vec![Point2::new(0.0, 0.0)];
        for k in 0..6 {
            let a = k as f64 * std::f64::consts::TAU / 6.0;
            pts.push(Point2::new(180.0 * a.cos(), 180.0 * a.sin()));
        }
        for k in 0..5 {
            let a = 0.3 + k as f64 * std::f64::consts::TAU / 5.0;
            pts.push(Point2::new(340.0 * a.cos(), 340.0 * a.sin()));
        }
        Network::with_paper_radio(Layout::new(pts))
    }

    fn policies() -> Vec<TopologyPolicy> {
        vec![
            TopologyPolicy::MaxPower,
            TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)),
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
        ]
    }

    #[test]
    fn initial_build_matches_policy_build() {
        let network = cluster();
        for policy in policies() {
            let topo = SurvivorTopology::new(&network, policy);
            assert_eq!(
                topo.graph(),
                &policy.build(&network),
                "policy {}",
                policy.label()
            );
        }
    }

    #[test]
    fn kill_matches_full_survivor_rebuild_step_by_step() {
        let network = cluster();
        let death_order = [3u32, 8, 0, 10, 5];
        for policy in policies() {
            let mut topo = SurvivorTopology::new(&network, policy);
            let mut alive = vec![true; network.len()];
            for &d in &death_order {
                alive[d as usize] = false;
                let delta = topo.kill(&network, &[n(d)]);
                let full = policy.build_on_survivors(&network, &alive);
                assert_eq!(
                    topo.graph(),
                    &full,
                    "policy {} after killing {d}",
                    policy.label()
                );
                // The delta must describe exactly the change.
                for (u, v) in &delta.removed {
                    assert!(!topo.graph().has_edge(*u, *v));
                }
                for (u, v) in &delta.added {
                    assert!(topo.graph().has_edge(*u, *v));
                }
            }
        }
    }

    #[test]
    fn batch_deaths_match_full_rebuild() {
        let network = cluster();
        for policy in policies() {
            let mut topo = SurvivorTopology::new(&network, policy);
            let dead = [n(1), n(2), n(7)];
            topo.kill(&network, &dead);
            let mut alive = vec![true; network.len()];
            for d in dead {
                alive[d.index()] = false;
            }
            assert_eq!(
                topo.graph(),
                &policy.build_on_survivors(&network, &alive),
                "policy {}",
                policy.label()
            );
            assert_eq!(topo.alive(), &alive[..]);
        }
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_kill_panics() {
        let network = cluster();
        let mut topo = SurvivorTopology::new(&network, TopologyPolicy::MaxPower);
        topo.kill(&network, &[n(0)]);
        topo.kill(&network, &[n(0)]);
    }

    #[test]
    fn unrelated_deaths_leave_far_edges_alone() {
        // Two clusters far apart: killing in one must not change (or
        // re-derive differently) the other's edges.
        let mut pts = Vec::new();
        for k in 0..4 {
            let a = k as f64 * std::f64::consts::TAU / 4.0;
            pts.push(Point2::new(150.0 * a.cos(), 150.0 * a.sin()));
        }
        for k in 0..4 {
            let a = k as f64 * std::f64::consts::TAU / 4.0;
            pts.push(Point2::new(5_000.0 + 150.0 * a.cos(), 150.0 * a.sin()));
        }
        let network = Network::with_paper_radio(Layout::new(pts));
        let policy = TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS));
        let mut topo = SurvivorTopology::new(&network, policy);
        let before: Vec<_> = topo
            .graph()
            .edges()
            .filter(|(u, _)| u.index() >= 4)
            .collect();
        let delta = topo.kill(&network, &[n(0)]);
        let after: Vec<_> = topo
            .graph()
            .edges()
            .filter(|(u, _)| u.index() >= 4)
            .collect();
        assert_eq!(before, after, "far cluster untouched");
        assert!(delta
            .removed
            .iter()
            .chain(&delta.added)
            .all(|(u, v)| u.index() < 4 && v.index() < 4));
    }
}
