//! The epoch-based network-lifetime engine.
//!
//! Time advances in epochs. Each epoch the engine
//!
//! 1. draws a batch of end-to-end packets from the traffic generator,
//! 2. routes each packet over the current topology along the
//!    minimum-energy path and drains the sender/forwarders (tx) and
//!    receivers (rx),
//! 3. drains every alive node's standby cost — idle listening plus
//!    maintenance beaconing at its current broadcast radius,
//! 4. removes nodes whose batteries emptied and, when configured,
//!    reruns the topology policy over the survivors (§4
//!    reconfiguration),
//! 5. records lifetime milestones: the first death, the first partition
//!    of the surviving topology, and the death of the last node.
//!
//! Everything is deterministic in the seed, so a lifetime trace can be
//! replayed bit-for-bit.
//!
//! ## Steady-state and death-epoch costs
//!
//! The hot loop is engineered so that epochs without deaths do no
//! per-node work beyond the drains themselves: per-edge transmission
//! powers and hop costs are cached (`d(u,v)ⁿ` is priced once per edge per
//! topology change, not once per packet-hop), routing trees persist per
//! source, and the path walk reuses one buffer. Death epochs go through
//! the builder's [`SurvivorTracker`] (the ideal-radio
//! [`crate::SurvivorTopology`] or the phy tracker, both thin adapters
//! over [`cbtc_core::reconfig::DeltaTopology`]): the topology is patched
//! in place, and only the routing trees the change can actually affect —
//! those reaching a dead node, using a removed tree edge, or improvable
//! by an added edge — are recomputed. Both mechanisms are bit-for-bit
//! equivalent to the rebuild-everything path
//! (`LifetimeConfig { incremental: false, .. }`), which the equivalence
//! tests replay against.

use std::sync::Arc;
use std::time::Instant;

use cbtc_core::reconfig::graph_delta;
use cbtc_core::reconfig::routing::{tree_reusable, SpTree};
use cbtc_core::Network;
use cbtc_graph::{NodeId, UndirectedGraph};
use cbtc_metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use cbtc_radio::{PathLoss, Power, PowerBasis};
use cbtc_trace::{TraceEvent, TraceHandle, TRACE_VERSION};
use serde::{Deserialize, Serialize};

use crate::builder::SurvivorTracker;
use crate::{
    Battery, EnergyLedger, EnergyModel, FlowGenerator, IdealLinks, LinkReliability,
    TopologyBuilder, TopologyDelta, TopologyPolicy, TrafficPattern,
};

/// Parameters of a lifetime run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeConfig {
    /// Initial battery capacity of every node.
    pub initial_energy: f64,
    /// End-to-end packets injected per epoch (network-wide).
    pub packets_per_epoch: u32,
    /// Which traffic workload drives the network.
    pub pattern: TrafficPattern,
    /// Hard cap on simulated epochs.
    pub max_epochs: u32,
    /// Whether survivors rerun the topology policy after deaths
    /// (reconfiguration). When off, the initial topology merely decays.
    pub reconfigure: bool,
    /// Whether reconfiguration runs through the incremental survivor
    /// path (the builder's [`SurvivorTracker`] + selective routing
    /// invalidation) instead of rebuilding topology and routes from
    /// scratch each death epoch. Results are bit-for-bit identical
    /// either way; `false` exists for validation and benchmarking of
    /// the rebuild path.
    pub incremental: bool,
    /// The radio energy price list.
    pub energy: EnergyModel,
}

impl LifetimeConfig {
    /// Defaults for the paper's §5 networks (100 nodes, `R = 500`): one
    /// packet per node per epoch, standby-dominated energy model, budget
    /// for a few hundred max-power epochs.
    pub fn paper_default() -> Self {
        LifetimeConfig {
            initial_energy: 5_000_000.0,
            packets_per_epoch: 100,
            pattern: TrafficPattern::Uniform,
            max_epochs: 40_000,
            reconfigure: true,
            incremental: true,
            energy: EnergyModel::paper_default(),
        }
    }

    /// A fast-draining variant for tests and doc examples: the same model
    /// with 1/25 of the battery, so full lifetimes resolve in tens to
    /// hundreds of epochs.
    pub fn smoke() -> Self {
        LifetimeConfig {
            initial_energy: 200_000.0,
            packets_per_epoch: 25,
            max_epochs: 5_000,
            ..LifetimeConfig::paper_default()
        }
    }
}

/// The outcome of a full lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeReport {
    /// The topology policy's display label.
    pub policy: String,
    /// The run's seed (traffic stream).
    pub seed: u64,
    /// Epochs actually simulated.
    pub epochs_run: u32,
    /// Epoch at which the first node died (1-based: the epoch whose
    /// drains emptied it), if any died.
    pub first_death: Option<u32>,
    /// Epoch at which the surviving topology first became disconnected
    /// (or fewer than two nodes remained), if it happened.
    pub partition: Option<u32>,
    /// Epoch at which the last node died, if the network fully drained.
    pub all_dead: Option<u32>,
    /// Total packets delivered.
    pub delivered: u64,
    /// Total packets dropped for lack of a route.
    pub dropped: u64,
    /// Where the energy went.
    pub ledger: EnergyLedger,
    /// Energy drained per node over the whole run.
    pub drained_per_node: Vec<f64>,
    /// Battery remaining per node at the end.
    pub remaining_per_node: Vec<f64>,
    /// Alive-node count after each epoch (the fraction-alive curve).
    pub alive_curve: Vec<u32>,
    /// Coefficient of variation of per-node drained energy, snapshotted
    /// at the first death (or at the end when nothing died): the
    /// energy-balance metric — lower is more even.
    pub energy_balance_cv: f64,
}

impl LifetimeReport {
    /// Delivered fraction of all injected packets (1.0 when no traffic).
    pub fn delivered_ratio(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }

    /// First-death epoch, censored at `epochs_run` when nothing died.
    pub fn first_death_or_censored(&self) -> u32 {
        self.first_death.unwrap_or(self.epochs_run)
    }

    /// Partition epoch, censored at `epochs_run` when it never happened.
    pub fn partition_or_censored(&self) -> u32 {
        self.partition.unwrap_or(self.epochs_run)
    }
}

/// Minimum-energy routing state: one shortest-path tree per source,
/// computed lazily the first time the source sends and kept until a
/// topology change that can actually affect it.
#[derive(Debug, Clone, Default)]
struct RoutingTable {
    trees: Vec<Option<SpTree>>,
}

impl RoutingTable {
    fn reset(&mut self, n: usize) {
        self.trees.clear();
        self.trees.resize(n, None);
    }

    /// Writes the node path `src → … → dst` into `out`; returns `false`
    /// (leaving `out` in an unspecified state) when unreachable.
    fn path_into<F>(
        &mut self,
        src: NodeId,
        dst: NodeId,
        compute_tree: F,
        out: &mut Vec<NodeId>,
    ) -> bool
    where
        F: FnOnce(NodeId) -> SpTree,
    {
        let slot = &mut self.trees[src.index()];
        let tree = slot.get_or_insert_with(|| compute_tree(src));
        out.clear();
        out.push(dst);
        let mut cursor = dst;
        while cursor != src {
            match tree.parent.get(cursor.index()).copied().flatten() {
                None => return false,
                Some(prev) => {
                    cursor = prev;
                    out.push(cursor);
                }
            }
        }
        out.reverse();
        true
    }

    /// Drops exactly the cached trees a topology change can affect — the
    /// [`tree_reusable`] keep rules (no reachable death, no lost tree
    /// edge, no improvable addition; positions never change here, so the
    /// moved-node rule is vacuous). A kept tree is provably what a
    /// recomputation would produce bit-for-bit, so keeping it leaves the
    /// simulation's arithmetic unchanged.
    fn invalidate_after<W>(&mut self, dead: &[NodeId], delta: &TopologyDelta, weight: W)
    where
        W: Fn(NodeId, NodeId) -> f64,
    {
        for slot in &mut self.trees {
            let Some(tree) = slot else { continue };
            if !tree_reusable(tree, dead, &[], delta, &weight) {
                *slot = None;
            }
        }
    }
}

/// Pre-resolved lifetime-engine instruments (see [`LifetimeSim::set_metrics`]):
/// per-epoch phase timings, outcome counters, and the accumulated expected
/// ARQ attempts. Resolved once at install so the epoch loop never touches
/// the registry's name map.
#[derive(Debug, Clone)]
struct LifetimeMetrics {
    /// Wall-clock nanos of the traffic phase (routing + tx/rx drains).
    nanos_traffic: Histogram,
    /// Wall-clock nanos of the standby-drain phase.
    nanos_standby: Histogram,
    /// Wall-clock nanos of a death epoch's reconfiguration (tracker kill
    /// or from-scratch rebuild, plus routing invalidation).
    nanos_reconfig: Histogram,
    /// Wall-clock nanos of the post-death connectivity check.
    nanos_partition: Histogram,
    epochs: Counter,
    deaths: Counter,
    delivered: Counter,
    dropped: Counter,
    /// Total expected transmission attempts across all delivered hops
    /// (ARQ retransmissions included; exactly the hop count on ideal
    /// links).
    arq_attempts: Gauge,
}

impl LifetimeMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        LifetimeMetrics {
            nanos_traffic: registry.histogram("lifetime.nanos.traffic"),
            nanos_standby: registry.histogram("lifetime.nanos.standby"),
            nanos_reconfig: registry.histogram("lifetime.nanos.reconfig"),
            nanos_partition: registry.histogram("lifetime.nanos.partition"),
            epochs: registry.counter("lifetime.epochs"),
            deaths: registry.counter("lifetime.deaths"),
            delivered: registry.counter("lifetime.delivered"),
            dropped: registry.counter("lifetime.dropped"),
            arq_attempts: registry.gauge("lifetime.arq_attempts"),
        }
    }
}

/// Records the nanos since `*start` and resets `*start` to now, so
/// consecutive phases chain without gaps.
fn lap(start: &mut Instant) -> u64 {
    let now = Instant::now();
    let nanos = now
        .duration_since(*start)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64;
    *start = now;
    nanos
}

/// Looks up the cached `(tx power, routing weight, expected attempts)` of
/// edge `{u, v}` in `u`'s row. The weight is the attempt-scaled hop cost
/// (with ideal links, attempts is exactly `1.0` and the weight is exactly
/// the hop cost).
///
/// # Panics
///
/// Panics when the edge is not priced — i.e. not in the current topology.
fn edge_cost(
    edge_costs: &[Vec<(NodeId, Power, f64, f64)>],
    u: NodeId,
    v: NodeId,
) -> (Power, f64, f64) {
    let row = &edge_costs[u.index()];
    let i = row
        .binary_search_by_key(&v, |e| e.0)
        .expect("edge is in the topology and therefore priced");
    (row[i].1, row[i].2, row[i].3)
}

/// A deterministic packet-level battery simulation over one network and
/// one topology policy.
///
/// # Example
///
/// ```
/// use cbtc_energy::{LifetimeConfig, LifetimeSim, TopologyPolicy};
/// use cbtc_workloads::{RandomPlacement, Scenario};
///
/// let network = RandomPlacement::from_scenario(&Scenario::smoke()).generate(1);
/// let sim = LifetimeSim::new(network, TopologyPolicy::MaxPower, LifetimeConfig::smoke(), 1);
/// let report = sim.run();
/// assert!(report.first_death.is_some());
/// assert!(report.delivered > 0);
/// ```
#[derive(Debug, Clone)]
pub struct LifetimeSim {
    network: Network,
    /// How topologies are (re)built. For the classic constructor this is
    /// the [`TopologyPolicy`] itself; [`LifetimeSim::with_builder`]
    /// injects arbitrary builders (the phy subsystem's entry point).
    builder: Arc<dyn TopologyBuilder>,
    /// Expected per-link transmission attempts (ARQ). [`IdealLinks`]
    /// multiplies by the literal `1.0` — bit-identical to no reliability
    /// model at all.
    reliability: Arc<dyn LinkReliability>,
    /// Cached `builder.power_controlled()`.
    power_controlled: bool,
    config: LifetimeConfig,
    flows: FlowGenerator,
    seed: u64,

    batteries: Vec<Battery>,
    alive: Vec<bool>,
    alive_count: u32,
    /// Cached list of alive node IDs (rebuilt on deaths).
    alive_ids: Vec<NodeId>,
    /// The current topology for the rebuild/decay paths. An empty
    /// placeholder when `reconfig` owns the topology instead — every
    /// read goes through [`LifetimeSim::topology`] (or an equivalent
    /// field-level borrow in the hot loop).
    topology: UndirectedGraph,
    /// The incrementally maintained survivor topology (present when
    /// `config.reconfigure && config.incremental` and the builder
    /// supplies a [`SurvivorTracker`]).
    reconfig: Option<Box<dyn SurvivorTracker>>,
    routes: RoutingTable,
    /// Per-edge `(neighbor, tx power, routing weight, attempts)` rows
    /// mirroring `topology`'s adjacency, so the packet loop never
    /// re-prices a link.
    edge_costs: Vec<Vec<(NodeId, Power, f64, f64)>>,
    /// Scratch buffer for the per-packet path walk.
    path_buf: Vec<NodeId>,
    /// Scratch buffer for the per-epoch flow draw.
    flow_buf: Vec<crate::Flow>,
    /// Per-node broadcast-radius power for the standby drain.
    radius_power: Vec<Power>,

    /// Observability hooks: when installed, death epochs record
    /// [`TraceEvent`]s (deaths, topology deltas, power changes, energy
    /// snapshots). Absent by default — one `Option` check per epoch.
    trace: Option<TraceHandle>,
    /// Monotone counter of emitted [`TraceEvent::TopologyEpoch`] frames.
    trace_epoch: u32,
    /// Pre-resolved metrics instruments; `None` (one `Option` check per
    /// epoch) unless [`LifetimeSim::set_metrics`] installed an enabled
    /// registry.
    metrics: Option<LifetimeMetrics>,

    epoch: u32,
    first_death: Option<u32>,
    partition: Option<u32>,
    all_dead: Option<u32>,
    delivered: u64,
    dropped: u64,
    ledger: EnergyLedger,
    drained: Vec<f64>,
    alive_curve: Vec<u32>,
    balance_cv_at_first_death: Option<f64>,
}

impl LifetimeSim {
    /// Sets up a run: builds the initial topology and routing state, and
    /// charges every battery to `config.initial_energy`.
    pub fn new(
        network: Network,
        policy: TopologyPolicy,
        config: LifetimeConfig,
        seed: u64,
    ) -> Self {
        LifetimeSim::with_builder(
            network,
            Arc::new(policy),
            Arc::new(IdealLinks),
            config,
            seed,
        )
    }

    /// [`LifetimeSim::new`] with an injected topology builder and link
    /// reliability — the phy subsystem's entry point.
    ///
    /// Builders that supply a [`TopologyBuilder::survivor_tracker`]
    /// (both [`TopologyPolicy`] and the phy subsystem's
    /// [`crate::PhyPolicy`] do) drive the incremental survivor machinery;
    /// others fall back to from-scratch rebuilds. The two paths are
    /// bit-for-bit equivalent, so results are unaffected either way.
    pub fn with_builder(
        network: Network,
        builder: Arc<dyn TopologyBuilder>,
        reliability: Arc<dyn LinkReliability>,
        config: LifetimeConfig,
        seed: u64,
    ) -> Self {
        let n = network.len();
        let reconfig = if config.reconfigure && config.incremental {
            builder.survivor_tracker(&network)
        } else {
            None
        };
        let topology = match &reconfig {
            // The incremental state owns the topology; the field stays an
            // empty placeholder (every read goes through `reconfig`).
            Some(_) => UndirectedGraph::new(0),
            None => builder.build(&network),
        };
        let power_controlled = builder.power_controlled();
        let mut sim = LifetimeSim {
            flows: FlowGenerator::new(config.pattern, seed),
            seed,
            batteries: vec![Battery::new(config.initial_energy); n],
            alive: vec![true; n],
            alive_count: n as u32,
            alive_ids: (0..n as u32).map(NodeId::new).collect(),
            reconfig,
            routes: RoutingTable::default(),
            edge_costs: Vec::new(),
            path_buf: Vec::new(),
            flow_buf: Vec::new(),
            radius_power: vec![Power::ZERO; n],
            trace: None,
            trace_epoch: 0,
            metrics: None,
            epoch: 0,
            first_death: None,
            partition: None,
            all_dead: None,
            delivered: 0,
            dropped: 0,
            ledger: EnergyLedger::default(),
            drained: vec![0.0; n],
            alive_curve: Vec::new(),
            balance_cv_at_first_death: None,
            topology,
            network,
            builder,
            reliability,
            power_controlled,
            config,
        };
        sim.refresh_routing_and_radii();
        sim.check_partition();
        sim
    }

    /// The epoch about to be simulated next.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Nodes still alive.
    pub fn alive_count(&self) -> u32 {
        self.alive_count
    }

    /// The current topology (dead nodes are isolated).
    pub fn topology(&self) -> &UndirectedGraph {
        self.reconfig.as_ref().map_or(&self.topology, |t| t.graph())
    }

    /// The per-node batteries.
    pub fn batteries(&self) -> &[Battery] {
        &self.batteries
    }

    /// Installs observability hooks and emits the trace preamble: the
    /// run header, the initial positions/topology/power/energy state.
    /// Subsequent death epochs record their deaths, exact edge deltas,
    /// power changes and energy snapshots.
    ///
    /// The hooks only observe already-computed state and draw no
    /// randomness — a traced run is bit-identical to an untraced one.
    /// Times are epochs (the engine's native unit).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        if let Some(tracker) = &mut self.reconfig {
            tracker.set_trace(trace.clone());
            tracker.set_trace_clock(self.epoch as f64);
        }
        let layout = self.network.layout();
        let (mut width, mut height) = (0.0f64, 0.0f64);
        for (_, p) in layout.iter() {
            width = width.max(p.x);
            height = height.max(p.y);
        }
        trace.record(TraceEvent::Meta {
            version: TRACE_VERSION,
            run: format!("lifetime/{}", self.builder.label()),
            nodes: self.network.len() as u32,
            seed: self.seed,
            alpha: 0.0,
            width,
            height,
            pricing: self.config.energy.power_basis.label().to_owned(),
        });
        let time = self.epoch as f64;
        trace.record(TraceEvent::Positions {
            time,
            xs: layout.iter().map(|(_, p)| p.x).collect(),
            ys: layout.iter().map(|(_, p)| p.y).collect(),
            alive: self.alive.clone(),
        });
        let topology = self.reconfig.as_ref().map_or(&self.topology, |t| t.graph());
        trace.record(TraceEvent::TopologyEpoch {
            time,
            epoch: self.trace_epoch,
            live: self.alive_count,
            edges: topology.edge_count() as u64,
            added: topology
                .edges()
                .map(|(u, v)| (u.raw().min(v.raw()), u.raw().max(v.raw())))
                .collect(),
            removed: Vec::new(),
        });
        self.trace_epoch += 1;
        for (i, p) in self.radius_power.iter().enumerate() {
            trace.record(TraceEvent::PowerChange {
                time,
                node: i as u32,
                power: p.linear(),
            });
        }
        trace.record(TraceEvent::EnergySnapshot {
            time,
            energy: self.batteries.iter().map(Battery::remaining).collect(),
        });
        self.trace = Some(trace);
    }

    /// Installs metrics instruments: per-epoch phase timings
    /// (`lifetime.nanos.{traffic,standby,reconfig,partition}`), outcome
    /// counters (`lifetime.{epochs,deaths,delivered,dropped}`), the
    /// accumulated expected ARQ attempts (`lifetime.arq_attempts`), and —
    /// through the survivor tracker — the incremental engine's per-batch
    /// `reconfig.*` series. A disabled registry uninstalls.
    ///
    /// Like [`LifetimeSim::set_trace`], the instruments only observe
    /// already-computed state: a metered run is bit-identical to an
    /// unmetered one.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        if let Some(tracker) = &mut self.reconfig {
            tracker.set_metrics(registry);
        }
        self.metrics = registry
            .is_enabled()
            .then(|| LifetimeMetrics::resolve(registry));
    }

    /// Whether the run is over (battery exhaustion or the epoch cap).
    pub fn finished(&self) -> bool {
        self.alive_count == 0 || self.epoch >= self.config.max_epochs
    }

    /// Simulates one epoch. Returns `false` once the run is over.
    pub fn step(&mut self) -> bool {
        if self.finished() {
            return false;
        }
        let energy = self.config.energy;
        // Phase clock (metered runs only): each phase records the nanos
        // since the previous one's end, so the phases tile the epoch.
        let mut phase_start = self.metrics.as_ref().map(|_| Instant::now());
        let metrics_on = self.metrics.is_some();
        let mut arq_attempts = 0.0f64;

        // 1. + 2. Traffic: route each packet, drain tx/rx along the path.
        let mut delivered = 0u32;
        let mut dropped = 0u32;
        let mut flow_buf = std::mem::take(&mut self.flow_buf);
        self.flows.epoch_flows_into(
            &self.alive_ids,
            self.config.packets_per_epoch,
            &mut flow_buf,
        );
        let mut path_buf = std::mem::take(&mut self.path_buf);
        for &flow in &flow_buf {
            let topology = self.reconfig.as_ref().map_or(&self.topology, |t| t.graph());
            let alive = &self.alive;
            let edge_costs = &self.edge_costs;
            let routed = self.routes.path_into(
                flow.src,
                flow.dst,
                |s| {
                    SpTree::compute(
                        topology,
                        s,
                        |u, v| edge_cost(edge_costs, u, v).1,
                        |v| alive[v.index()],
                    )
                },
                &mut path_buf,
            );
            if !routed {
                dropped += 1;
                continue;
            }
            for hop in path_buf.windows(2) {
                let (u, v) = (hop[0], hop[1]);
                let (tx_power, _, attempts) = edge_cost(&self.edge_costs, u, v);
                // ARQ: lossy links retransmit; sender and receiver both
                // pay per attempt. With ideal links `attempts` is the
                // literal 1.0 and the products are bit-exact.
                let tx = self.batteries[u.index()].drain(attempts * energy.tx_cost(tx_power));
                self.ledger.tx += tx;
                self.drained[u.index()] += tx;
                let rx = self.batteries[v.index()].drain(attempts * energy.rx_cost);
                self.ledger.rx += rx;
                self.drained[v.index()] += rx;
                if metrics_on {
                    arq_attempts += attempts;
                }
            }
            delivered += 1;
        }
        self.path_buf = path_buf;
        self.flow_buf = flow_buf;
        self.delivered += delivered as u64;
        self.dropped += dropped as u64;
        if let (Some(m), Some(start)) = (&self.metrics, &mut phase_start) {
            m.nanos_traffic.record(lap(start));
            m.epochs.inc();
            m.delivered.add(delivered as u64);
            m.dropped.add(dropped as u64);
            m.arq_attempts.add(arq_attempts);
        }

        // 3. Standby: idle + maintenance beaconing at radius power.
        for u in 0..self.batteries.len() {
            if !self.alive[u] {
                continue;
            }
            let idle = self.batteries[u].drain(energy.idle_per_epoch);
            self.ledger.idle += idle;
            self.drained[u] += idle;
            let beacons =
                self.batteries[u].drain(energy.maintenance_duty * self.radius_power[u].linear());
            self.ledger.maintenance += beacons;
            self.drained[u] += beacons;
        }
        if let (Some(m), Some(start)) = (&self.metrics, &mut phase_start) {
            m.nanos_standby.record(lap(start));
        }

        self.epoch += 1;

        // 4. Deaths and reconfiguration.
        let mut newly_dead: Vec<NodeId> = Vec::new();
        for u in 0..self.batteries.len() {
            if self.alive[u] && !self.batteries[u].is_alive() {
                newly_dead.push(NodeId::new(u as u32));
            }
        }
        if !newly_dead.is_empty() {
            let time = self.epoch as f64;
            if let Some(trace) = &self.trace {
                for &d in &newly_dead {
                    trace.record(TraceEvent::Death {
                        time,
                        node: d.raw(),
                    });
                }
            }
            // Pre-death radii, so power changes can be diffed after the
            // reconfiguration refresh (only when traced).
            let old_radii = self.trace.is_some().then(|| self.radius_power.clone());
            self.alive_count -= newly_dead.len() as u32;
            if self.first_death.is_none() {
                // The balance snapshot reads `drained`, not `alive`; the
                // mask flip order is irrelevant to it.
                self.first_death = Some(self.epoch);
                self.balance_cv_at_first_death = Some(self.balance_cv());
            }
            if self.alive_count == 0 {
                self.all_dead = Some(self.epoch);
            }
            for &d in &newly_dead {
                self.alive[d.index()] = false;
            }
            if let (Some(m), Some(start)) = (&self.metrics, &mut phase_start) {
                m.deaths.add(newly_dead.len() as u64);
                // Reset so trace bookkeeping above stays out of the
                // reconfiguration timing.
                *start = Instant::now();
            }
            let delta = if self.reconfig.is_some() {
                let tracker = self.reconfig.as_mut().expect("checked");
                tracker.set_trace_clock(time);
                let delta = tracker.kill(&self.network, &newly_dead);
                self.apply_topology_delta(&newly_dead, &delta);
                delta
            } else {
                // The rebuild path has no engine-produced delta; diff
                // the graphs when an observer needs one.
                let before = self.trace.as_ref().map(|_| self.topology().clone());
                self.rebuild_topology();
                self.refresh_routing_and_radii();
                before.map_or_else(TopologyDelta::default, |b| graph_delta(&b, self.topology()))
            };
            if let (Some(m), Some(start)) = (&self.metrics, &mut phase_start) {
                m.nanos_reconfig.record(lap(start));
            }
            if let Some(old) = old_radii {
                self.record_death_epoch(time, &delta, &old);
            }
            // 5. Milestones. Connectivity can only change when the
            // topology does, so the check lives inside the death branch.
            if let Some(start) = &mut phase_start {
                *start = Instant::now();
            }
            self.check_partition();
            if let (Some(m), Some(start)) = (&self.metrics, &mut phase_start) {
                m.nanos_partition.record(lap(start));
            }
        }

        self.alive_curve.push(self.alive_count);
        !self.finished()
    }

    /// Runs to completion and summarizes.
    pub fn run(mut self) -> LifetimeReport {
        while self.step() {}
        if let Some(trace) = &self.trace {
            trace.flush();
        }
        LifetimeReport {
            policy: self.builder.label(),
            seed: self.seed,
            epochs_run: self.epoch,
            first_death: self.first_death,
            partition: self.partition,
            all_dead: self.all_dead,
            delivered: self.delivered,
            dropped: self.dropped,
            ledger: self.ledger,
            drained_per_node: self.drained.clone(),
            remaining_per_node: self.batteries.iter().map(Battery::remaining).collect(),
            alive_curve: self.alive_curve.clone(),
            energy_balance_cv: self
                .balance_cv_at_first_death
                .unwrap_or_else(|| self.balance_cv()),
        }
    }

    /// Emits a death epoch's observable aftermath: the exact topology
    /// delta, every maintenance-radius change, and an energy snapshot.
    fn record_death_epoch(&mut self, time: f64, delta: &TopologyDelta, old_radii: &[Power]) {
        let Some(trace) = &self.trace else { return };
        let canonical = |pairs: &[(NodeId, NodeId)]| {
            let mut out: Vec<(u32, u32)> = pairs
                .iter()
                .map(|&(u, v)| (u.raw().min(v.raw()), u.raw().max(v.raw())))
                .collect();
            out.sort_unstable();
            out
        };
        let topology = self.reconfig.as_ref().map_or(&self.topology, |t| t.graph());
        trace.record(TraceEvent::TopologyEpoch {
            time,
            epoch: self.trace_epoch,
            live: self.alive_count,
            edges: topology.edge_count() as u64,
            added: canonical(&delta.added),
            removed: canonical(&delta.removed),
        });
        for (i, (old, new)) in old_radii.iter().zip(&self.radius_power).enumerate() {
            if old != new {
                trace.record(TraceEvent::PowerChange {
                    time,
                    node: i as u32,
                    power: new.linear(),
                });
            }
        }
        trace.record(TraceEvent::EnergySnapshot {
            time,
            energy: self.batteries.iter().map(Battery::remaining).collect(),
        });
        self.trace_epoch += 1;
    }

    /// Coefficient of variation (σ/μ) of per-node drained energy.
    fn balance_cv(&self) -> f64 {
        let n = self.drained.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.drained.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self.drained.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n;
        var.sqrt() / mean
    }

    fn rebuild_topology(&mut self) {
        if self.config.reconfigure {
            self.topology = self.builder.build_on_survivors(&self.network, &self.alive);
        } else {
            // Decay only: strip edges touching the dead.
            let dead: Vec<NodeId> = self
                .network
                .layout()
                .node_ids()
                .filter(|u| !self.alive[u.index()])
                .collect();
            for u in dead {
                let neighbors: Vec<NodeId> = self.topology.neighbors(u).collect();
                for v in neighbors {
                    self.topology.remove_edge(u, v);
                }
            }
        }
    }

    /// The incremental aftermath of a death epoch: refresh only the state
    /// the edge delta actually touches, and keep every routing tree the
    /// change provably cannot affect.
    fn apply_topology_delta(&mut self, newly_dead: &[NodeId], delta: &TopologyDelta) {
        self.alive_ids.retain(|u| self.alive[u.index()]);
        let mut touched: Vec<NodeId> = newly_dead.to_vec();
        for &(u, v) in delta.removed.iter().chain(&delta.added) {
            touched.push(u);
            touched.push(v);
        }
        touched.sort_unstable();
        touched.dedup();
        for &u in &touched {
            self.refresh_node_costs_and_radius(u);
        }
        let edge_costs = &self.edge_costs;
        self.routes
            .invalidate_after(newly_dead, delta, |u, v| edge_cost(edge_costs, u, v).1);
    }

    /// Rebuilds node `u`'s cached edge-cost row and maintenance radius
    /// from the current topology.
    fn refresh_node_costs_and_radius(&mut self, u: NodeId) {
        let model = *self.network.model();
        let energy = self.config.energy;
        let power_control = self.power_controlled;
        let layout = self.network.layout();
        let reliability = &self.reliability;
        let i = u.index();

        let topology = self.reconfig.as_ref().map_or(&self.topology, |t| t.graph());
        let measured = energy.power_basis == PowerBasis::Measured;
        let row = &mut self.edge_costs[i];
        row.clear();
        let mut farthest: Option<f64> = None;
        for v in topology.neighbors(u) {
            if !self.alive[v.index()] {
                continue;
            }
            let d = layout.distance(u, v);
            if measured {
                // §2 measured pricing: the hop pays for the effective
                // distance the channel presents, so the receiver gets
                // exactly `p(d̂)` instead of `p(d)·g`. Capped at `P` —
                // a node cannot exceed its maximum power. Attempts
                // still take the geometric distance (the channel
                // re-applies its own gain to the delivered power).
                let pd = reliability.priced_distance(u, v, d);
                let tx = energy
                    .hop_tx_power(&model, pd, power_control)
                    .min(model.max_power());
                let attempts = reliability.attempts(u, v, tx, d);
                row.push((v, tx, attempts * energy.hop_cost(tx), attempts));
                farthest = Some(farthest.map_or(pd, |a| a.max(pd)));
            } else {
                let tx = energy.hop_tx_power(&model, d, power_control);
                // Routing minimizes *expected* energy: lossy links carry
                // their retransmission factor in the weight, so the router
                // prefers reliable links. Ideal links multiply by exactly 1.
                let attempts = reliability.attempts(u, v, tx, d);
                row.push((v, tx, attempts * energy.hop_cost(tx), attempts));
                farthest = Some(farthest.map_or(d, |a| a.max(d)));
            }
        }

        // Maintenance radius: max power without topology control; the
        // farthest kept alive neighbor (max power when isolated) with it.
        self.radius_power[i] = if !self.alive[i] {
            Power::ZERO
        } else if power_control {
            if measured {
                farthest.map_or(model.max_power(), |r| {
                    model.required_power(r).min(model.max_power())
                })
            } else {
                farthest.map_or(model.max_power(), |r| model.required_power(r))
            }
        } else {
            model.max_power()
        };
    }

    /// Recomputes the alive-ID cache, every node's edge costs and
    /// maintenance radius, and drops all routing trees (they are
    /// recomputed lazily per sending source) — the from-scratch refresh
    /// used at start-up and by the non-incremental rebuild path.
    fn refresh_routing_and_radii(&mut self) {
        self.alive_ids = self
            .network
            .layout()
            .node_ids()
            .filter(|u| self.alive[u.index()])
            .collect();
        self.edge_costs.resize(self.network.len(), Vec::new());
        for u in 0..self.network.len() as u32 {
            self.refresh_node_costs_and_radius(NodeId::new(u));
        }
        // Shortest-path trees are computed per source on first use.
        self.routes.reset(self.network.len());
    }

    /// Records the first epoch at which the surviving topology stopped
    /// being one connected component (or shrank below two nodes).
    fn check_partition(&mut self) {
        if self.partition.is_some() {
            return;
        }
        if !self.alive_connected() {
            self.partition = Some(self.epoch);
        }
    }

    /// BFS over alive nodes only.
    fn alive_connected(&self) -> bool {
        let alive_total = self.alive_count as usize;
        if alive_total < 2 {
            return false;
        }
        let start = match self.alive.iter().position(|a| *a) {
            Some(i) => NodeId::new(i as u32),
            None => return false,
        };
        let mut seen = vec![false; self.alive.len()];
        seen[start.index()] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            for v in self.topology().neighbors(u) {
                if self.alive[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    reached += 1;
                    queue.push_back(v);
                }
            }
        }
        reached == alive_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_core::CbtcConfig;
    use cbtc_geom::{Alpha, Point2};
    use cbtc_graph::Layout;

    fn chain(spacing: f64, n: usize) -> Network {
        Network::with_paper_radio(Layout::new(
            (0..n)
                .map(|i| Point2::new(i as f64 * spacing, 0.0))
                .collect(),
        ))
    }

    fn quick_config() -> LifetimeConfig {
        LifetimeConfig {
            initial_energy: 100_000.0,
            packets_per_epoch: 5,
            max_epochs: 2_000,
            ..LifetimeConfig::paper_default()
        }
    }

    #[test]
    fn lifetime_milestones_are_ordered() {
        let sim = LifetimeSim::new(chain(200.0, 6), TopologyPolicy::MaxPower, quick_config(), 3);
        let report = sim.run();
        let fd = report.first_death.expect("someone must die");
        let ad = report.all_dead.expect("everyone must die");
        let part = report.partition.expect("a chain partitions");
        assert!(fd <= part && part <= ad, "{fd} <= {part} <= {ad}");
        assert_eq!(report.epochs_run as usize, report.alive_curve.len());
        assert_eq!(*report.alive_curve.last().unwrap(), 0);
    }

    #[test]
    fn routing_charges_intermediate_nodes() {
        // 3-node chain, ends out of direct range: the middle node relays.
        let network = chain(400.0, 3);
        let mut config = quick_config();
        config.packets_per_epoch = 10;
        config.energy.idle_per_epoch = 0.0;
        config.energy.maintenance_duty = 0.0;
        let mut sim = LifetimeSim::new(network, TopologyPolicy::MaxPower, config, 1);
        sim.step();
        let drained_mid = sim.batteries()[1].drained();
        assert!(drained_mid > 0.0, "relay must spend energy");
        assert!(sim.ledger.tx > 0.0 && sim.ledger.rx > 0.0);
    }

    #[test]
    fn unreachable_packets_are_dropped() {
        // Two nodes beyond max range: all traffic drops.
        let network = chain(600.0, 2);
        let sim = LifetimeSim::new(network, TopologyPolicy::MaxPower, quick_config(), 1);
        let report = sim.run();
        assert_eq!(report.delivered, 0);
        assert!(report.dropped > 0);
        assert_eq!(report.partition, Some(0), "born partitioned");
    }

    #[test]
    fn cbtc_standby_is_cheaper_than_max_power() {
        let network = chain(150.0, 8);
        let max_power =
            LifetimeSim::new(network.clone(), TopologyPolicy::MaxPower, quick_config(), 1);
        let cbtc = LifetimeSim::new(
            network,
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            quick_config(),
            1,
        );
        let sum = |sim: &LifetimeSim| -> f64 { sim.radius_power.iter().map(|p| p.linear()).sum() };
        assert!(sum(&cbtc) < sum(&max_power) / 2.0);
    }

    #[test]
    fn metrics_count_the_run_without_perturbing_it() {
        let network = chain(100.0, 10);
        let policy = TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS));
        let plain = LifetimeSim::new(network.clone(), policy, quick_config(), 5).run();

        let registry = MetricsRegistry::enabled();
        let mut sim = LifetimeSim::new(network, policy, quick_config(), 5);
        sim.set_metrics(&registry);
        let report = sim.run();
        assert_eq!(report, plain, "metered run must be bit-identical");

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("lifetime.epochs"),
            Some(u64::from(report.epochs_run))
        );
        assert_eq!(snap.counter("lifetime.delivered"), Some(report.delivered));
        assert_eq!(snap.counter("lifetime.dropped"), Some(report.dropped));
        let dead = 10 - u64::from(*report.alive_curve.last().unwrap());
        assert_eq!(snap.counter("lifetime.deaths"), Some(dead));
        assert!(dead > 0, "the scenario must exercise deaths");
        assert!(snap.gauge("lifetime.arq_attempts").unwrap() > 0.0);
        let hist = |name: &str| snap.histogram(name).map_or(0, |h| h.count);
        assert_eq!(hist("lifetime.nanos.traffic"), u64::from(report.epochs_run));
        assert_eq!(hist("lifetime.nanos.standby"), u64::from(report.epochs_run));
        assert!(hist("lifetime.nanos.reconfig") > 0);
        assert_eq!(
            hist("lifetime.nanos.reconfig"),
            hist("lifetime.nanos.partition")
        );
        // The survivor tracker forwards to the incremental engine's
        // per-batch reconfiguration series.
        assert!(snap.counter("reconfig.batches").unwrap() > 0);
        assert_eq!(
            snap.counter("reconfig.events.death"),
            snap.counter("lifetime.deaths")
        );

        // A disabled registry uninstalls and records nothing further.
        let registry2 = MetricsRegistry::enabled();
        let mut sim2 = LifetimeSim::new(chain(100.0, 4), policy, quick_config(), 5);
        sim2.set_metrics(&registry2);
        sim2.set_metrics(&MetricsRegistry::disabled());
        sim2.step();
        assert_eq!(registry2.snapshot().counter("lifetime.epochs"), Some(0));
    }

    #[test]
    fn reconfiguration_restores_routes_after_death() {
        // Dense cluster: after deaths the survivors stay connected and
        // keep delivering.
        let network = chain(100.0, 10);
        let config = quick_config();
        let report = LifetimeSim::new(
            network,
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            config,
            5,
        )
        .run();
        assert!(report.first_death.is_some());
        assert!(report.delivered_ratio() > 0.5);
    }
}
