//! The RandomWaypoint *lifetime* scenario: mobility and energy composed
//! in one workload over one incrementally maintained topology.
//!
//! The static lifetime engine ([`crate::LifetimeSim`]) drains batteries
//! over a fixed layout; the churn suite (`cbtc-workloads`) moves nodes
//! but never prices their energy. This module closes the gap the §4
//! event model leaves open: every epoch, nodes roam under
//! [`RandomWaypoint`], pay idle plus maintenance-beaconing energy at the
//! broadcast radius their *current* cone topology demands, and the
//! resulting `Move` and `Death` events flow through **one**
//! [`DeltaTopology`] tracker as a single batch — the engine absorbs
//! mobility and battery exhaustion exactly the way §4's `aChange` and
//! `leave` rules interleave in the field.
//!
//! The maintained graph stays bit-identical to a from-scratch
//! `CBTC(α)` construction over the live nodes at their current
//! positions ([`MobileLifetimeSim::matches_scratch`], replayed by the
//! in-module tests), and with a [`MetricsRegistry`] installed the
//! scenario's events land in the same `reconfig.*` series every other
//! workload reports through.

use cbtc_core::reconfig::{DeltaTopology, GeometricMetric, NodeEvent};
use cbtc_core::{run_centralized_masked, CbtcConfig, Network};
use cbtc_geom::Alpha;
use cbtc_graph::{Layout, NodeId};
use cbtc_metrics::MetricsRegistry;
use cbtc_radio::{PathLoss, PowerLaw};
use cbtc_trace::TraceHandle;
use cbtc_workloads::{RandomPlacement, RandomWaypoint};
use serde::{Deserialize, Serialize};

use crate::{Battery, EnergyModel};

/// Parameters of a mobile lifetime run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileLifetimeConfig {
    /// Nodes roaming the field.
    pub nodes: usize,
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// Minimum waypoint speed (distance units per epoch of motion).
    pub speed_min: f64,
    /// Maximum waypoint speed.
    pub speed_max: f64,
    /// Pause at each waypoint.
    pub pause: f64,
    /// Motion time units advanced per epoch.
    pub mobility_dt: f64,
    /// The maintained cone topology.
    pub cbtc: CbtcConfig,
    /// Initial battery capacity of every node.
    pub initial_energy: f64,
    /// The radio energy price list (only `idle_per_epoch` and
    /// `maintenance_duty` apply — this scenario carries no traffic).
    pub energy: EnergyModel,
    /// Hard cap on simulated epochs.
    pub max_epochs: u32,
}

impl MobileLifetimeConfig {
    /// A compact scenario for tests and doc examples: 30 nodes on a
    /// 1 km² field under the paper's radio, batteries sized so the
    /// whole fleet drains within a few hundred epochs.
    pub fn smoke() -> Self {
        MobileLifetimeConfig {
            nodes: 30,
            width: 1_000.0,
            height: 1_000.0,
            speed_min: 5.0,
            speed_max: 15.0,
            pause: 0.0,
            mobility_dt: 5.0,
            cbtc: CbtcConfig::new(Alpha::FIVE_PI_SIXTHS),
            initial_energy: 120_000.0,
            energy: EnergyModel::paper_default(),
            max_epochs: 400,
        }
    }
}

/// The outcome of a full mobile lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobileLifetimeReport {
    /// Epochs actually simulated.
    pub epochs_run: u32,
    /// Epoch of the first battery death, if any.
    pub first_death: Option<u32>,
    /// Epoch at which the maintained topology first failed to connect
    /// the survivors (or fewer than two remained), if it happened.
    pub partition: Option<u32>,
    /// `Move` events absorbed by the tracker.
    pub moves: u64,
    /// `Death` events absorbed by the tracker.
    pub deaths: u64,
    /// Alive-node count after each epoch.
    pub alive_curve: Vec<u32>,
    /// Edges of the final maintained topology.
    pub final_edges: u64,
}

/// A deterministic mobility-plus-battery simulation whose topology is
/// maintained event-granularly by one [`DeltaTopology`] engine.
///
/// # Example
///
/// ```
/// use cbtc_energy::{MobileLifetimeConfig, MobileLifetimeSim};
///
/// let mut sim = MobileLifetimeSim::new(MobileLifetimeConfig::smoke(), 7);
/// let report = sim.run();
/// assert!(report.moves > 0 && report.deaths > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MobileLifetimeSim {
    config: MobileLifetimeConfig,
    model: PowerLaw,
    /// The one tracker both event kinds flow through.
    topo: DeltaTopology<GeometricMetric>,
    mobility: RandomWaypoint,
    /// Roaming positions for every node (dead ones keep drifting but
    /// emit nothing — their radios are off).
    layout: Layout,
    batteries: Vec<Battery>,
    alive: Vec<bool>,
    alive_count: u32,
    /// Scratch batch, reused across epochs.
    events: Vec<NodeEvent>,

    epoch: u32,
    first_death: Option<u32>,
    partition: Option<u32>,
    moves: u64,
    deaths: u64,
    alive_curve: Vec<u32>,
}

impl MobileLifetimeSim {
    /// Places `config.nodes` uniformly (seed-deterministic), builds the
    /// initial `CBTC(α)` topology, and charges every battery.
    pub fn new(config: MobileLifetimeConfig, seed: u64) -> Self {
        let model = PowerLaw::paper_default();
        let layout =
            RandomPlacement::new(config.nodes, config.width, config.height, model.max_range())
                .generate_layout(seed);
        let topo = DeltaTopology::new(
            layout.clone(),
            vec![true; config.nodes],
            model.max_range(),
            config.cbtc,
            false,
            GeometricMetric,
        );
        let mobility = RandomWaypoint::new(
            config.width,
            config.height,
            config.speed_min,
            config.speed_max,
            config.pause,
            config.nodes,
            seed ^ 0x5EED_CAFE,
        );
        let mut sim = MobileLifetimeSim {
            model,
            topo,
            mobility,
            layout,
            batteries: vec![Battery::new(config.initial_energy); config.nodes],
            alive: vec![true; config.nodes],
            alive_count: config.nodes as u32,
            events: Vec::new(),
            epoch: 0,
            first_death: None,
            partition: None,
            moves: 0,
            deaths: 0,
            alive_curve: Vec::new(),
            config,
        };
        sim.check_partition();
        sim
    }

    /// The epoch about to be simulated next.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Nodes still alive.
    pub fn alive_count(&self) -> u32 {
        self.alive_count
    }

    /// The maintained topology (dead nodes isolated).
    pub fn topology(&self) -> &cbtc_graph::UndirectedGraph {
        self.topo.graph()
    }

    /// Installs metrics on the tracker, so every epoch's batch lands in
    /// the same `reconfig.*` series (per-kind latency, event counts,
    /// replay-vs-grid-scan split) the churn and lifetime workloads
    /// report through. Purely observational — a metered run is
    /// bit-identical to an unmetered one.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.topo.set_metrics(registry);
    }

    /// Installs trace hooks on the tracker (per-batch `Reconfig` cost
    /// samples, clocked in epochs).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.topo.set_trace(trace);
        self.topo.set_trace_clock(self.epoch as f64);
    }

    /// Whether the maintained graph is bit-identical to a from-scratch
    /// `CBTC(α)` construction over the live nodes at their current
    /// positions — the §4 invariant this scenario exists to exercise
    /// under composed mobility + energy churn.
    pub fn matches_scratch(&self) -> bool {
        let network = Network::new(self.topo.layout().clone(), self.model);
        let scratch = run_centralized_masked(&network, &self.config.cbtc, self.topo.active())
            .into_final_graph();
        *self.topo.graph() == scratch
    }

    /// Whether the run is over (battery exhaustion or the epoch cap).
    pub fn finished(&self) -> bool {
        self.alive_count == 0 || self.epoch >= self.config.max_epochs
    }

    /// Simulates one epoch: drain standby energy, collect battery
    /// deaths, advance mobility, and absorb the epoch's `Move` + `Death`
    /// events as one tracker batch. Returns `false` once the run is
    /// over.
    pub fn step(&mut self) -> bool {
        if self.finished() {
            return false;
        }
        let energy = self.config.energy;

        // 1. Standby drains at the radius the *current* maintained
        //    topology demands (max power when isolated), and the deaths
        //    they cause. Reads pre-move state: the engine's layout and
        //    graph are consistent here.
        let mut newly_dead: Vec<NodeId> = Vec::new();
        for u in 0..self.batteries.len() {
            if !self.alive[u] {
                continue;
            }
            let id = NodeId::new(u as u32);
            let layout = self.topo.layout();
            let farthest = self
                .topo
                .graph()
                .neighbors(id)
                .filter(|v| self.alive[v.index()])
                .map(|v| layout.distance(id, v))
                .fold(None, |a: Option<f64>, d| Some(a.map_or(d, |a| a.max(d))));
            let radius = farthest.map_or(self.model.max_power(), |r| self.model.required_power(r));
            self.batteries[u]
                .drain(energy.idle_per_epoch + energy.maintenance_duty * radius.linear());
            if !self.batteries[u].is_alive() {
                newly_dead.push(id);
            }
        }

        // 2. Mobility: everyone drifts; only live radios announce.
        self.mobility
            .advance(&mut self.layout, self.config.mobility_dt);
        self.epoch += 1;

        // 3. One batch through one tracker: survivors' position changes
        //    (§4 aChange) then this epoch's battery deaths (§4 leave).
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        for u in 0..self.alive.len() {
            let id = NodeId::new(u as u32);
            if self.alive[u] && !newly_dead.contains(&id) {
                let pos = self.layout.position(id);
                if pos != self.topo.layout().position(id) {
                    events.push(NodeEvent::Move(id, pos));
                }
            }
        }
        self.moves += events.len() as u64;
        for &d in &newly_dead {
            events.push(NodeEvent::Death(d));
            self.alive[d.index()] = false;
        }
        self.deaths += newly_dead.len() as u64;
        self.alive_count -= newly_dead.len() as u32;
        if !newly_dead.is_empty() && self.first_death.is_none() {
            self.first_death = Some(self.epoch);
        }
        self.topo.set_trace_clock(self.epoch as f64);
        self.topo.apply(&events);
        self.events = events;

        self.check_partition();
        self.alive_curve.push(self.alive_count);
        !self.finished()
    }

    /// Runs to completion and summarizes.
    pub fn run(&mut self) -> MobileLifetimeReport {
        while self.step() {}
        MobileLifetimeReport {
            epochs_run: self.epoch,
            first_death: self.first_death,
            partition: self.partition,
            moves: self.moves,
            deaths: self.deaths,
            alive_curve: self.alive_curve.clone(),
            final_edges: self.topo.graph().edge_count() as u64,
        }
    }

    /// Records the first epoch at which the survivors stopped being one
    /// connected component (or shrank below two nodes). Unlike the
    /// static engine, mobility can both break and *heal* connectivity;
    /// the milestone keeps the static semantics (first failure).
    fn check_partition(&mut self) {
        if self.partition.is_some() {
            return;
        }
        if !self.alive_connected() {
            self.partition = Some(self.epoch);
        }
    }

    /// BFS over alive nodes only.
    fn alive_connected(&self) -> bool {
        let alive_total = self.alive_count as usize;
        if alive_total < 2 {
            return false;
        }
        let start = match self.alive.iter().position(|a| *a) {
            Some(i) => NodeId::new(i as u32),
            None => return false,
        };
        let mut seen = vec![false; self.alive.len()];
        seen[start.index()] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            for v in self.topo.graph().neighbors(u) {
                if self.alive[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    reached += 1;
                    queue.push_back(v);
                }
            }
        }
        reached == alive_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintained_topology_tracks_scratch_construction() {
        let mut sim = MobileLifetimeSim::new(MobileLifetimeConfig::smoke(), 11);
        // Check the invariant mid-flight (mixed move+death batches) and
        // at the end, not only after the fleet is gone.
        for _ in 0..25 {
            if !sim.step() {
                break;
            }
        }
        assert!(sim.matches_scratch(), "mid-run drift from scratch build");
        let report = sim.run();
        assert!(sim.matches_scratch(), "final drift from scratch build");
        assert!(report.moves > 0, "nodes must move");
        assert!(report.deaths > 0, "batteries must die");
        assert!(report.first_death.is_some());
        assert_eq!(report.epochs_run as usize, report.alive_curve.len());
    }

    #[test]
    fn metrics_count_moves_and_deaths_without_perturbing() {
        let plain = MobileLifetimeSim::new(MobileLifetimeConfig::smoke(), 3).run();

        let registry = MetricsRegistry::enabled();
        let mut sim = MobileLifetimeSim::new(MobileLifetimeConfig::smoke(), 3);
        sim.set_metrics(&registry);
        let report = sim.run();
        assert_eq!(report, plain, "metered run must be bit-identical");

        let snap = registry.snapshot();
        assert_eq!(snap.counter("reconfig.events.move"), Some(report.moves));
        assert_eq!(snap.counter("reconfig.events.death"), Some(report.deaths));
        assert_eq!(
            snap.counter("reconfig.batches"),
            Some(u64::from(report.epochs_run))
        );
        // Epochs mixing survivor moves with deaths land in the mixed
        // latency series.
        assert!(
            snap.histogram("reconfig.nanos.mixed")
                .map_or(0, |h| h.count)
                > 0
        );
    }
}
