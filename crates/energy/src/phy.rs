//! Network lifetime over the stochastic physical layer.
//!
//! Couples the phy construction (`cbtc_core::phy`) and link model
//! (`cbtc-phy`) into the lifetime engine through the
//! [`TopologyBuilder`]/[`LinkReliability`] seam:
//!
//! * [`PhyPolicy`] — a [`TopologyPolicy`] executed over a shadowed
//!   channel: max power becomes the *symmetric reach graph* (both
//!   directions must close), CBTC runs on effective distances with the
//!   connectivity-guarded optimization pipeline;
//! * [`PhyLinks`] — expected ARQ attempts per link from the PRR at the
//!   hop's transmission power: lossy links charge retransmission energy
//!   to both endpoints and weigh more in minimum-energy routing;
//! * [`phy_lifetime_experiment`] — the multi-seed experiment runner.
//!
//! With [`PhyProfile::ideal`] every gain is the literal `1.0` and every
//! attempt count the literal `1.0`, so this path reproduces
//! [`crate::lifetime_experiment`] **bit for bit** — the equivalence the
//! phy benchmark's σ = 0 column demonstrates and the property tests
//! assert.

use std::sync::Arc;

use cbtc_core::phy::{
    phy_reach_graph, phy_reach_graph_where, run_phy_centralized, run_phy_centralized_masked,
    run_phy_gated_centralized, run_phy_gated_centralized_masked, PhyChannel,
};
use cbtc_core::reconfig::{DeltaTopology, LinkMetric};
use cbtc_core::Network;
use cbtc_graph::{NodeId, UndirectedGraph};
use cbtc_phy::{PhyProfile, PrrCurve, Shadowing};
use cbtc_radio::{DirectionSensor, LinkGain, PathLoss, Power, PowerBasis, PowerLaw, Prr};
use cbtc_workloads::{RandomPlacement, Scenario};

use crate::builder::SurvivorTracker;
use crate::incremental::MetricSurvivorTopology;
use crate::runner::run_trials_with;
use crate::{
    aggregate, LifetimeAggregate, LifetimeConfig, LifetimeSim, LinkReliability, TopologyBuilder,
    TopologyPolicy,
};

/// The lowest delivery probability a kept link is priced at: a link worse
/// than this would cost 1000+ attempts per packet, which in practice
/// means the topology should not contain it at all; the cap keeps drains
/// finite when it does.
const MIN_LINK_PRR: f64 = 1e-3;

/// A [`TopologyPolicy`] executed over the stochastic channel of a
/// [`PhyProfile`].
///
/// The angle-of-arrival sensor is seeded from the profile, so builds are
/// reproducible at any thread count.
#[derive(Debug, Clone, Copy)]
pub struct PhyPolicy {
    /// The underlying construction rule.
    pub policy: TopologyPolicy,
    /// The channel it runs over.
    pub profile: PhyProfile,
    /// The power-pricing basis the lifetime engine will run under.
    ///
    /// Under [`PowerBasis::Measured`] the CBTC construction is
    /// *feedback-gated* ([`cbtc_core::phy::AckGatedChannel`]): a link
    /// only enters the topology if its reverse direction closes at
    /// maximum power, because that is the only way the §2 measurement
    /// can ever reach the asker. On the ideal channel the gate never
    /// fires, preserving bit-identity with the geometric construction.
    pub basis: PowerBasis,
}

impl PhyPolicy {
    /// A policy over `profile` priced on the geometric basis.
    pub fn geometric(policy: TopologyPolicy, profile: PhyProfile) -> Self {
        PhyPolicy {
            policy,
            profile,
            basis: PowerBasis::Geometric,
        }
    }
}

impl TopologyBuilder for PhyPolicy {
    fn build(&self, network: &Network) -> UndirectedGraph {
        let shadowing = self.profile.shadowing();
        let channel =
            PhyChannel::new(network.model(), &shadowing).with_sensor(self.profile.sensor());
        match (self.policy, self.basis) {
            (TopologyPolicy::MaxPower, _) => phy_reach_graph(network, &channel),
            (TopologyPolicy::Cbtc(config), PowerBasis::Geometric) => {
                run_phy_centralized(network, &channel, &config).into_final_graph()
            }
            (TopologyPolicy::Cbtc(config), PowerBasis::Measured) => {
                run_phy_gated_centralized(network, &channel, &config).into_final_graph()
            }
        }
    }

    fn build_on_survivors(&self, network: &Network, alive: &[bool]) -> UndirectedGraph {
        assert_eq!(alive.len(), network.len(), "alive mask size mismatch");
        let shadowing = self.profile.shadowing();
        let channel =
            PhyChannel::new(network.model(), &shadowing).with_sensor(self.profile.sensor());
        match (self.policy, self.basis) {
            (TopologyPolicy::MaxPower, _) => {
                phy_reach_graph_where(network, &channel, |u| alive[u.index()])
            }
            (TopologyPolicy::Cbtc(config), PowerBasis::Geometric) => {
                run_phy_centralized_masked(network, &channel, &config, alive).into_final_graph()
            }
            (TopologyPolicy::Cbtc(config), PowerBasis::Measured) => {
                run_phy_gated_centralized_masked(network, &channel, &config, alive)
                    .into_final_graph()
            }
        }
    }

    fn survivor_tracker(&self, network: &Network) -> Option<Box<dyn SurvivorTracker>> {
        Some(Box::new(phy_survivor_topology(network, *self)))
    }

    fn power_controlled(&self) -> bool {
        self.policy.power_controlled()
    }

    fn label(&self) -> String {
        // Deliberately the underlying policy's label: phy parameters are
        // reported alongside, and the σ = 0 ideal check compares output
        // documents field-for-field against the ideal-radio benchmark.
        self.policy.label()
    }
}

/// An owning [`LinkMetric`] over a [`PhyProfile`]'s frozen channel: the
/// effective distance `d·g^(−1/n)` with the profile's angle-of-arrival
/// sensor. Every call constructs the borrowing [`PhyChannel`] on the
/// spot, so the arithmetic is *the same code* the from-scratch
/// [`run_phy_centralized_masked`] runs — bit-identity by construction.
#[derive(Debug, Clone)]
struct PhyMetric {
    model: PowerLaw,
    shadowing: Shadowing,
    sensor: DirectionSensor,
    /// `Some(max_range)` under measured pricing: the same reverse-
    /// reachability gate as [`cbtc_core::phy::AckGatedChannel`], so the
    /// incremental survivor topology maintains exactly the graph
    /// [`run_phy_gated_centralized_masked`] rebuilds. `None` leaves the
    /// historical ungated arithmetic untouched.
    gate: Option<f64>,
}

impl PhyMetric {
    fn channel(&self) -> PhyChannel<'_> {
        PhyChannel::new(&self.model, &self.shadowing).with_sensor(self.sensor)
    }
}

impl LinkMetric for PhyMetric {
    fn cost(&self, u: NodeId, v: NodeId, d: f64) -> f64 {
        let channel = self.channel();
        match self.gate {
            Some(max_range) if channel.effective_distance(v, u, d) > max_range => f64::INFINITY,
            _ => channel.cost(u, v, d),
        }
    }

    fn reach_boost(&self) -> f64 {
        self.channel().reach_boost()
    }

    fn direction(&self, layout: &cbtc_graph::Layout, u: NodeId, v: NodeId) -> cbtc_geom::Angle {
        self.channel().direction(layout, u, v)
    }
}

/// The incrementally maintained phy survivor topology: the same
/// death-only adapter as [`crate::SurvivorTopology`], instantiated on
/// the effective-distance metric with the pairwise connectivity guard
/// (Theorem 3.6's scaffolding does not survive off the unit disk).
/// Edge-for-edge identical to [`PhyPolicy::build_on_survivors`] at
/// every alive mask. Reach is a per-pair predicate, so the max-power
/// variant is the induced-subgraph fast path.
fn phy_survivor_topology(
    network: &Network,
    policy: PhyPolicy,
) -> MetricSurvivorTopology<PhyMetric> {
    let metric = PhyMetric {
        model: *network.model(),
        shadowing: policy.profile.shadowing(),
        sensor: policy.profile.sensor(),
        gate: (policy.basis == PowerBasis::Measured).then(|| network.max_range()),
    };
    match policy.policy {
        TopologyPolicy::MaxPower => {
            let channel = metric.channel();
            MetricSurvivorTopology::induced(phy_reach_graph(network, &channel))
        }
        TopologyPolicy::Cbtc(config) => MetricSurvivorTopology::engine(DeltaTopology::new(
            network.layout().clone(),
            vec![true; network.len()],
            network.max_range(),
            config,
            true,
            metric,
        )),
    }
}

/// Expected ARQ attempts per link under a [`PhyProfile`]'s shadowing and
/// PRR curve.
///
/// Fading is deliberately averaged out (its mean power gain is 1 and the
/// expectation of `1/PRR` over fades has no useful closed form); the
/// discrete-event simulator is where per-packet fades act.
#[derive(Debug, Clone, Copy)]
pub struct PhyLinks {
    model: PowerLaw,
    shadowing: Shadowing,
    prr: PrrCurve,
}

impl PhyLinks {
    /// Prices links for `model` under `profile`'s channel.
    pub fn new(model: PowerLaw, profile: &PhyProfile) -> Self {
        PhyLinks {
            model,
            shadowing: profile.shadowing(),
            prr: profile.prr,
        }
    }
}

impl LinkReliability for PhyLinks {
    fn attempts(&self, u: NodeId, v: NodeId, tx_power: Power, distance: f64) -> f64 {
        let required = self.model.required_power(distance).linear();
        let gain = self.shadowing.link_gain(u.raw() as u64, v.raw() as u64);
        let p = self
            .prr
            .delivery_probability(tx_power.linear() * gain, required);
        if p >= 1.0 {
            1.0
        } else {
            1.0 / p.max(MIN_LINK_PRR)
        }
    }

    fn priced_distance(&self, u: NodeId, v: NodeId, distance: f64) -> f64 {
        // The same arithmetic as `PhyChannel::effective_distance`, on the
        // same frozen gains: `d·g^(−1/n)` with the near-field clamp, and
        // the literal geometric distance when the gain is exactly 1 (the
        // ideal channel) — so measured pricing over σ = 0 is bit-identical
        // to geometric pricing.
        let gain = self.shadowing.link_gain(u.raw() as u64, v.raw() as u64);
        if gain == 1.0 {
            distance
        } else {
            distance.max(1.0) * gain.powf(-1.0 / self.model.exponent())
        }
    }
}

/// Runs a lifetime experiment through the phy pipeline: every policy is
/// executed as a [`PhyPolicy`] with [`PhyLinks`] retransmission pricing,
/// over the scenario's random networks. The shadowing field is re-frozen
/// per trial (`profile.seed ^ trial seed`), mirroring how trials draw
/// fresh layouts.
///
/// With [`PhyProfile::ideal`] the results are bit-for-bit those of
/// [`crate::lifetime_experiment`] with the same inputs.
pub fn phy_lifetime_experiment(
    scenario: &Scenario,
    policies: &[TopologyPolicy],
    profile: PhyProfile,
    config: LifetimeConfig,
    base_seed: u64,
) -> Vec<LifetimeAggregate> {
    let generator = RandomPlacement::from_scenario(scenario);
    let seeds: Vec<u64> = scenario.seeds(base_seed).collect();
    policies
        .iter()
        .map(|&policy| {
            let reports = run_trials_with(
                |seed| generator.generate(seed),
                |network, seed| {
                    let trial_profile = profile.with_seed(profile.seed ^ seed);
                    let links = PhyLinks::new(*network.model(), &trial_profile);
                    LifetimeSim::with_builder(
                        network,
                        Arc::new(PhyPolicy {
                            policy,
                            profile: trial_profile,
                            basis: config.energy.power_basis,
                        }),
                        Arc::new(links),
                        config,
                        seed,
                    )
                },
                &seeds,
            );
            aggregate(&reports)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime_experiment;
    use cbtc_core::CbtcConfig;
    use cbtc_geom::Alpha;

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::smoke();
        s.trials = 3;
        s
    }

    fn policies() -> Vec<TopologyPolicy> {
        vec![
            TopologyPolicy::MaxPower,
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS)),
        ]
    }

    #[test]
    fn ideal_profile_reproduces_the_ideal_experiment_bitwise() {
        let scenario = tiny_scenario();
        let config = LifetimeConfig::smoke();
        let ideal = lifetime_experiment(&scenario, &policies(), config, 7);
        let phy = phy_lifetime_experiment(&scenario, &policies(), PhyProfile::ideal(), config, 7);
        assert_eq!(ideal, phy, "σ = 0 / PRR = 1 must be bit-identical");
    }

    #[test]
    fn shadowing_changes_lifetimes_deterministically() {
        let scenario = tiny_scenario();
        let config = LifetimeConfig::smoke();
        let profile = PhyProfile::shadowed(6.0, 3);
        let a = phy_lifetime_experiment(&scenario, &policies()[..2], profile, config, 7);
        let b = phy_lifetime_experiment(&scenario, &policies()[..2], profile, config, 7);
        assert_eq!(a, b, "phy experiments must replay");
        let ideal = lifetime_experiment(&scenario, &policies()[..2], config, 7);
        assert_ne!(a, ideal, "6 dB shadowing must move the statistics");
    }

    #[test]
    fn soft_prr_charges_retransmission_energy() {
        // A fixed 3-node chain (one possible route): with the soft PRR
        // curve every 400-unit hop sits ~2 dB above sensitivity, so its
        // expected attempts exceed 1 and the tx ledger must grow versus
        // the hard-threshold channel on identical traffic.
        use cbtc_geom::Point2;
        use cbtc_graph::Layout;
        let network = Network::with_paper_radio(Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(400.0, 0.0),
            Point2::new(800.0, 0.0),
        ]));
        let mut config = LifetimeConfig::smoke();
        config.max_epochs = 40;
        let run = |prr: cbtc_phy::PrrCurve| {
            let mut profile = PhyProfile::ideal();
            profile.prr = prr;
            let links = PhyLinks::new(*network.model(), &profile);
            LifetimeSim::with_builder(
                network.clone(),
                Arc::new(PhyPolicy::geometric(TopologyPolicy::MaxPower, profile)),
                Arc::new(links),
                config,
                5,
            )
            .run()
        };
        let hard = run(cbtc_phy::PrrCurve::Perfect);
        let soft = run(cbtc_phy::PrrCurve::paper_transition());
        // Retransmissions drain batteries faster, so the lossy channel
        // cannot outlive or out-deliver the hard-threshold one, and each
        // delivered packet costs measurably more tx/rx energy.
        assert!(soft.first_death_or_censored() <= hard.first_death_or_censored());
        assert!(soft.delivered <= hard.delivered);
        assert!(soft.delivered > 0);
        let per = |r: &crate::LifetimeReport| {
            (
                r.ledger.tx / r.delivered as f64,
                r.ledger.rx / r.delivered as f64,
            )
        };
        let (hard_tx, hard_rx) = per(&hard);
        let (soft_tx, soft_rx) = per(&soft);
        assert!(
            soft_tx > hard_tx * 1.05,
            "tx per delivered packet: soft {soft_tx} vs hard {hard_tx}"
        );
        assert!(soft_rx > hard_rx * 1.05);
    }

    #[test]
    fn phy_links_price_marginal_links_higher() {
        let model = PowerLaw::paper_default();
        let mut profile = PhyProfile::ideal();
        profile.prr = cbtc_phy::PrrCurve::paper_transition();
        let links = PhyLinks::new(model, &profile);
        let u = NodeId::new(0);
        let v = NodeId::new(1);
        // Plenty of margin: one attempt.
        let strong = links.attempts(u, v, model.max_power(), 100.0);
        // Exactly at sensitivity: the logistic gives PRR 0.5 → 2 attempts.
        let marginal = links.attempts(u, v, model.required_power(400.0), 400.0);
        assert_eq!(strong, 1.0);
        assert!((marginal - 2.0).abs() < 1e-9, "marginal = {marginal}");
        // And the cap holds for hopeless links.
        let hopeless = links.attempts(u, v, Power::new(1.0), 499.0);
        assert!(hopeless <= 1.0 / MIN_LINK_PRR);
    }
}
