//! # cbtc-energy
//!
//! Packet-level traffic and network-lifetime simulation over CBTC
//! topologies — the paper's §1/§6 energy motivation made measurable.
//!
//! The paper argues that cone-based topology control saves energy and
//! extends network lifetime, but reports only static proxies (average
//! radius, average degree). Follow-up work (Chu & Sethu,
//! arXiv:1309.3260 / 1309.3284) evaluates topology control the hard way:
//! simulate actual traffic over the derived graph, drain per-node
//! batteries, and watch the network die. This crate reproduces that
//! methodology:
//!
//! * [`Battery`] / [`EnergyModel`] / [`EnergyLedger`] — per-node energy
//!   state and the tx/rx/idle/maintenance cost model, priced through
//!   `cbtc-radio`'s [`PathLoss`](cbtc_radio::PathLoss) power function;
//! * [`TrafficPattern`] / [`FlowGenerator`] — deterministic seeded flow
//!   generation: uniform random pairs, convergecast-to-sink, hotspot;
//! * [`TopologyPolicy`] — max power vs. any
//!   [`CbtcConfig`](cbtc_core::CbtcConfig), including reconfiguration
//!   over the survivors after deaths;
//! * [`LifetimeSim`] — the epoch engine: minimum-energy routing over the
//!   current topology, battery drain per forwarded packet plus standby
//!   (idle + maintenance beaconing at broadcast-radius power), dead-node
//!   removal, and lifetime milestones ([`LifetimeReport`]): first death,
//!   fraction-alive curve, time-to-partition, energy-balance variance;
//! * [`run_trials`] / [`lifetime_experiment`] — a thread-parallel
//!   multi-seed runner aggregating mean/σ/CI across the paper's
//!   100-network × 100-node setup in seconds.
//!
//! # Paper map
//!
//! This crate extends the paper rather than transcribing a section: §1
//! motivates topology control by battery life and §6 names "energy
//! consumed … network lifetime" as the open evaluation; [`LifetimeSim`]
//! supplies that evaluation. Topology (re)construction inside the epoch
//! loop goes through the grid-indexed
//! [`unit_disk_graph`](cbtc_graph::unit_disk::unit_disk_graph) and the §3
//! optimizations of [`cbtc_core::opt`]; death epochs take the §4
//! reconfiguration as an *incremental patch*: the builder's
//! [`SurvivorTracker`] ([`SurvivorTopology`] on the ideal radio, a
//! phy-channel tracker under [`phy`]) adapts the metric-generic
//! [`cbtc_core::reconfig::DeltaTopology`] engine — only nodes whose
//! discovery prefix contained the deceased re-grow, and only the routing
//! trees the edge delta can affect are recomputed
//! ([`cbtc_core::reconfig::routing`]), bit-for-bit equal to a full
//! rebuild. Hop powers follow §2's measurement assumption through
//! [`cbtc_radio::PowerBasis`]: under `Measured`, drains, routing
//! weights and broadcast radii are priced from the channel's effective
//! distance (what the received Hello reports) instead of the geometric
//! one, and the phy construction switches to the feedback-gated
//! reference ([`cbtc_core::phy::AckGatedChannel`]) — exactly ×1 on the
//! ideal channel, and the close of the σ = 8 dB lifetime collapse on a
//! shadowed one.
//!
//! # Example
//!
//! ```
//! use cbtc_energy::{LifetimeConfig, LifetimeSim, TopologyPolicy};
//! use cbtc_core::CbtcConfig;
//! use cbtc_geom::Alpha;
//! use cbtc_workloads::{RandomPlacement, Scenario};
//!
//! let network = RandomPlacement::from_scenario(&Scenario::smoke()).generate(42);
//! let config = LifetimeConfig::smoke();
//!
//! let max_power =
//!     LifetimeSim::new(network.clone(), TopologyPolicy::MaxPower, config, 42).run();
//! let cbtc = LifetimeSim::new(
//!     network,
//!     TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
//!     config,
//!     42,
//! )
//! .run();
//!
//! // Topology control extends time-to-first-death (the §6 claim).
//! assert!(cbtc.first_death_or_censored() > max_power.first_death_or_censored());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod incremental;
mod lifetime;
mod mobile;
mod model;
pub mod phy;
mod policy;
mod runner;
mod traffic;

pub use builder::{IdealLinks, LinkReliability, SurvivorTracker, TopologyBuilder};
pub use incremental::{SurvivorTopology, TopologyDelta};
pub use lifetime::{LifetimeConfig, LifetimeReport, LifetimeSim};
pub use mobile::{MobileLifetimeConfig, MobileLifetimeReport, MobileLifetimeSim};
pub use model::{Battery, EnergyLedger, EnergyModel};
pub use phy::{phy_lifetime_experiment, PhyLinks, PhyPolicy};
pub use policy::TopologyPolicy;
pub use runner::{
    aggregate, lifetime_experiment, run_trials, run_trials_with, LifetimeAggregate, Summary,
};
pub use traffic::{Flow, FlowGenerator, TrafficPattern};
