//! Topology policies: how the network decides who its neighbors are.
//!
//! The lifetime engine is parameterized over a [`TopologyPolicy`] so the
//! same traffic can be replayed over the max-power graph and over any
//! CBTC configuration, isolating what topology control buys.

use cbtc_core::{run_centralized, run_centralized_masked, CbtcConfig, Network};
use cbtc_graph::unit_disk::unit_disk_graph_where;
use cbtc_graph::UndirectedGraph;
use serde::{Deserialize, Serialize};

/// The topology-construction rule a network runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyPolicy {
    /// No topology control: every node broadcasts at maximum power and
    /// keeps every in-range link (`G_R`). Nodes know nothing about link
    /// distances, so data packets are also sent at maximum power.
    MaxPower,
    /// Cone-based topology control with the given configuration. Nodes
    /// learn per-neighbor distances during the growing phase, so data
    /// packets use per-link power control.
    Cbtc(CbtcConfig),
}

impl TopologyPolicy {
    /// Human-readable label for tables and JSON output.
    pub fn label(&self) -> String {
        match self {
            TopologyPolicy::MaxPower => "max power".to_owned(),
            TopologyPolicy::Cbtc(config) => {
                let mut opts = Vec::new();
                if config.shrink_back() {
                    opts.push("shrink");
                }
                if config.asymmetric_removal() {
                    opts.push("asym");
                }
                if config.pairwise_removal() {
                    opts.push("pairwise");
                }
                if opts.is_empty() {
                    format!("CBTC({})", config.alpha())
                } else {
                    format!("CBTC({}) +{}", config.alpha(), opts.join("+"))
                }
            }
        }
    }

    /// Whether nodes under this policy know link distances and can adapt
    /// per-packet transmission power.
    pub fn power_controlled(&self) -> bool {
        matches!(self, TopologyPolicy::Cbtc(_))
    }

    /// Builds the topology over the full network.
    pub fn build(&self, network: &Network) -> UndirectedGraph {
        match self {
            TopologyPolicy::MaxPower => network.max_power_graph(),
            TopologyPolicy::Cbtc(config) => run_centralized(network, config).into_final_graph(),
        }
    }

    /// Builds the topology over the surviving subset of `network`,
    /// returning a graph on the **original** node set whose edges touch
    /// only nodes with `alive[i]` true. This is the reconfiguration step
    /// (§4): survivors rerun the protocol among themselves.
    ///
    /// The run is masked in place ([`run_centralized_masked`]) — no
    /// survivor layout, sub-network, or ID remap is allocated, so calling
    /// this every death epoch costs the reconstruction itself and nothing
    /// more. (The lifetime engine goes further still and patches its
    /// topology incrementally; see [`crate::SurvivorTopology`].)
    ///
    /// # Panics
    ///
    /// Panics if `alive.len()` differs from the network size.
    pub fn build_on_survivors(&self, network: &Network, alive: &[bool]) -> UndirectedGraph {
        assert_eq!(alive.len(), network.len(), "alive mask size mismatch");
        match self {
            TopologyPolicy::MaxPower => {
                unit_disk_graph_where(network.layout(), network.max_range(), |u| alive[u.index()])
            }
            TopologyPolicy::Cbtc(config) => {
                run_centralized_masked(network, config, alive).into_final_graph()
            }
        }
    }
}

impl crate::TopologyBuilder for TopologyPolicy {
    fn build(&self, network: &Network) -> UndirectedGraph {
        TopologyPolicy::build(self, network)
    }

    fn build_on_survivors(&self, network: &Network, alive: &[bool]) -> UndirectedGraph {
        TopologyPolicy::build_on_survivors(self, network, alive)
    }

    fn survivor_tracker(
        &self,
        network: &Network,
    ) -> Option<Box<dyn crate::builder::SurvivorTracker>> {
        Some(Box::new(crate::SurvivorTopology::new(network, *self)))
    }

    fn power_controlled(&self) -> bool {
        TopologyPolicy::power_controlled(self)
    }

    fn label(&self) -> String {
        TopologyPolicy::label(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_geom::{Alpha, Point2};
    use cbtc_graph::{Layout, NodeId};

    fn line_network() -> Network {
        Network::with_paper_radio(Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(300.0, 0.0),
            Point2::new(600.0, 0.0),
            Point2::new(900.0, 0.0),
        ]))
    }

    #[test]
    fn labels_are_distinct() {
        let a = TopologyPolicy::MaxPower.label();
        let b = TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)).label();
        let c = TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)).label();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(c.contains("shrink"));
    }

    #[test]
    fn max_power_is_unit_disk() {
        let net = line_network();
        let g = TopologyPolicy::MaxPower.build(&net);
        assert_eq!(g, net.max_power_graph());
        assert!(!TopologyPolicy::MaxPower.power_controlled());
    }

    #[test]
    fn cbtc_is_subgraph_of_max_power() {
        let net = line_network();
        let policy = TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS));
        let g = policy.build(&net);
        assert!(g.is_subgraph_of(&net.max_power_graph()));
        assert!(policy.power_controlled());
    }

    #[test]
    fn survivor_rebuild_skips_the_dead() {
        let net = line_network();
        // Kill node 1; survivors 0,2,3. 0 is now isolated (600 > R).
        let alive = [true, false, true, true];
        for policy in [
            TopologyPolicy::MaxPower,
            TopologyPolicy::Cbtc(CbtcConfig::new(Alpha::FIVE_PI_SIXTHS)),
        ] {
            let g = policy.build_on_survivors(&net, &alive);
            assert_eq!(g.node_count(), 4);
            assert_eq!(g.degree(NodeId::new(1)), 0, "dead node must be isolated");
            assert!(g.has_edge(NodeId::new(2), NodeId::new(3)));
            assert_eq!(g.degree(NodeId::new(0)), 0, "out of range of all survivors");
        }
    }

    #[test]
    fn lone_survivor_yields_empty_graph() {
        let net = line_network();
        let g = TopologyPolicy::MaxPower.build_on_survivors(&net, &[false, true, false, false]);
        assert_eq!(g.edge_count(), 0);
    }
}
