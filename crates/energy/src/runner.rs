//! Multi-seed lifetime experiments, run across OS threads.
//!
//! The paper's evaluation methodology (§5) averages every measurement
//! over 100 random networks; lifetime experiments inherit that protocol.
//! [`run_trials`] fans independent seeds out over `std::thread` workers
//! (the container has no rayon, and a scoped-thread fan-out is all the
//! structure this embarrassingly parallel workload needs), and
//! [`aggregate`] reduces the reports to mean / standard deviation / 95%
//! confidence intervals.

use cbtc_core::Network;
use cbtc_workloads::{RandomPlacement, Scenario};
use serde::{Deserialize, Serialize};

use crate::{LifetimeConfig, LifetimeReport, LifetimeSim, TopologyPolicy};

/// Mean, sample standard deviation and 95% confidence half-width of one
/// metric over trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two trials).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len() as f64;
        if samples.is_empty() {
            return Summary {
                mean: 0.0,
                std: 0.0,
                ci95: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n;
        if samples.len() < 2 {
            return Summary {
                mean,
                std: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let std = var.sqrt();
        Summary {
            mean,
            std,
            ci95: 1.96 * std / n.sqrt(),
        }
    }
}

/// Aggregated lifetime metrics of one policy over many random networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeAggregate {
    /// Policy display label.
    pub policy: String,
    /// Number of trials aggregated.
    pub trials: u32,
    /// Epoch of the first node death (censored at the run length when no
    /// node died).
    pub first_death: Summary,
    /// Epoch of the first partition of the surviving topology (censored
    /// at the run length when it never partitioned).
    pub partition: Summary,
    /// Fraction of injected packets that were delivered.
    pub delivered_ratio: Summary,
    /// Coefficient of variation of per-node drained energy at first
    /// death (energy balance; lower is more even).
    pub energy_balance_cv: Summary,
    /// Trials in which no node died before the epoch cap.
    pub censored_first_death: u32,
    /// Trials in which the topology never partitioned before the cap.
    pub censored_partition: u32,
}

/// Reduces per-trial reports to a [`LifetimeAggregate`].
pub fn aggregate(reports: &[LifetimeReport]) -> LifetimeAggregate {
    let metric = |f: &dyn Fn(&LifetimeReport) -> f64| -> Summary {
        Summary::of(&reports.iter().map(f).collect::<Vec<f64>>())
    };
    LifetimeAggregate {
        policy: reports
            .first()
            .map(|r| r.policy.clone())
            .unwrap_or_default(),
        trials: reports.len() as u32,
        first_death: metric(&|r| r.first_death_or_censored() as f64),
        partition: metric(&|r| r.partition_or_censored() as f64),
        delivered_ratio: metric(&|r| r.delivered_ratio()),
        energy_balance_cv: metric(&|r| r.energy_balance_cv),
        censored_first_death: reports.iter().filter(|r| r.first_death.is_none()).count() as u32,
        censored_partition: reports.iter().filter(|r| r.partition.is_none()).count() as u32,
    }
}

/// Runs one lifetime trial per seed, in parallel across OS threads, and
/// returns the reports in seed order.
///
/// `make_network` must be deterministic in the seed (it is called on
/// worker threads).
pub fn run_trials<F>(
    make_network: F,
    policy: TopologyPolicy,
    config: LifetimeConfig,
    seeds: &[u64],
) -> Vec<LifetimeReport>
where
    F: Fn(u64) -> Network + Sync,
{
    run_trials_with(
        make_network,
        |network, seed| LifetimeSim::new(network, policy, config, seed),
        seeds,
    )
}

/// [`run_trials`] with an arbitrary per-trial simulation factory — the
/// generalization the phy experiments use to inject
/// [`crate::TopologyBuilder`]/[`crate::LinkReliability`] implementations.
///
/// `make_sim` must be deterministic in its inputs (it runs on worker
/// threads in unspecified order; reports are returned in seed order).
pub fn run_trials_with<F, S>(make_network: F, make_sim: S, seeds: &[u64]) -> Vec<LifetimeReport>
where
    F: Fn(u64) -> Network + Sync,
    S: Fn(Network, u64) -> LifetimeSim + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(seeds.len().max(1));
    let chunk_size = seeds.len().div_ceil(threads.max(1)).max(1);
    let mut reports: Vec<Vec<LifetimeReport>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk_size)
            .map(|chunk| {
                let make_network = &make_network;
                let make_sim = &make_sim;
                scope.spawn(move || {
                    // This fan-out already claims every core; growth-phase
                    // parallel maps inside each trial must not multiply it.
                    cbtc_core::parallel::without_nested_fan_out(|| {
                        chunk
                            .iter()
                            .map(|&seed| make_sim(make_network(seed), seed).run())
                            .collect::<Vec<LifetimeReport>>()
                    })
                })
            })
            .collect();
        for handle in handles {
            reports.push(handle.join().expect("lifetime worker panicked"));
        }
    });
    reports.into_iter().flatten().collect()
}

/// Runs a whole lifetime experiment: every policy over the scenario's
/// random networks (seeds `base_seed .. base_seed + trials`), aggregated.
///
/// # Example
///
/// ```
/// use cbtc_energy::{lifetime_experiment, LifetimeConfig, TopologyPolicy};
/// use cbtc_core::CbtcConfig;
/// use cbtc_geom::Alpha;
/// use cbtc_workloads::Scenario;
///
/// let mut scenario = Scenario::smoke();
/// scenario.trials = 2;
/// let results = lifetime_experiment(
///     &scenario,
///     &[
///         TopologyPolicy::MaxPower,
///         TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
///     ],
///     LifetimeConfig::smoke(),
///     0,
/// );
/// assert_eq!(results.len(), 2);
/// assert!(results[1].first_death.mean >= results[0].first_death.mean);
/// ```
pub fn lifetime_experiment(
    scenario: &Scenario,
    policies: &[TopologyPolicy],
    config: LifetimeConfig,
    base_seed: u64,
) -> Vec<LifetimeAggregate> {
    let generator = RandomPlacement::from_scenario(scenario);
    let seeds: Vec<u64> = scenario.seeds(base_seed).collect();
    policies
        .iter()
        .map(|&policy| {
            let reports = run_trials(|seed| generator.generate(seed), policy, config, &seeds);
            aggregate(&reports)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_core::CbtcConfig;
    use cbtc_geom::Alpha;

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::smoke();
        s.trials = 3;
        s
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
        assert_eq!(Summary::of(&[]).mean, 0.0);
        assert_eq!(Summary::of(&[5.0]).std, 0.0);
    }

    #[test]
    fn trials_are_deterministic_and_ordered() {
        let scenario = tiny_scenario();
        let generator = RandomPlacement::from_scenario(&scenario);
        let seeds: Vec<u64> = scenario.seeds(7).collect();
        let config = LifetimeConfig::smoke();
        let a = run_trials(
            |s| generator.generate(s),
            TopologyPolicy::MaxPower,
            config,
            &seeds,
        );
        let b = run_trials(
            |s| generator.generate(s),
            TopologyPolicy::MaxPower,
            config,
            &seeds,
        );
        assert_eq!(a, b, "parallel fan-out must not change results");
        assert_eq!(a.len(), seeds.len());
        for (report, seed) in a.iter().zip(&seeds) {
            assert_eq!(report.seed, *seed, "seed order must be preserved");
        }
    }

    #[test]
    fn experiment_shows_cbtc_outliving_max_power() {
        let results = lifetime_experiment(
            &tiny_scenario(),
            &[
                TopologyPolicy::MaxPower,
                TopologyPolicy::Cbtc(CbtcConfig::all_applicable(Alpha::FIVE_PI_SIXTHS)),
            ],
            LifetimeConfig::smoke(),
            11,
        );
        assert_eq!(results.len(), 2);
        let (max_power, cbtc) = (&results[0], &results[1]);
        assert_eq!(max_power.trials, 3);
        assert!(
            cbtc.first_death.mean > max_power.first_death.mean,
            "CBTC {} vs max power {}",
            cbtc.first_death.mean,
            max_power.first_death.mean
        );
        assert!(cbtc.partition.mean >= max_power.partition.mean);
    }
}
