//! Batteries and the per-operation energy cost model.
//!
//! The model follows the convention of first-order radio models used in
//! the topology-control literature (e.g. Chu & Sethu, *Cooperative
//! Topology Control with Adaptation*): sending a packet costs a fixed
//! electronics term plus a radiated term proportional to the transmission
//! power the link requires; receiving costs a fixed term; and every alive
//! node pays a per-epoch standby cost — idle listening plus
//! topology-maintenance beaconing at its current broadcast radius. The
//! standby term is what cone-based topology control shrinks: a node only
//! needs to sustain the power that reaches its farthest kept neighbor.
//!
//! All energies are in the same arbitrary units as [`Power`] × epoch-time;
//! one epoch is the unit of time.

use cbtc_radio::{PathLoss, Power, PowerBasis, PowerLaw};
use serde::{Deserialize, Serialize};

/// A node's battery: a finite energy reserve drained by radio activity.
///
/// # Example
///
/// ```
/// use cbtc_energy::Battery;
///
/// let mut b = Battery::new(10.0);
/// assert_eq!(b.drain(4.0), 4.0);
/// assert_eq!(b.remaining(), 6.0);
/// // Draining past empty yields only what was left.
/// assert_eq!(b.drain(100.0), 6.0);
/// assert!(!b.is_alive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    remaining: f64,
}

impl Battery {
    /// A full battery with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics unless the capacity is positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "battery capacity must be positive, got {capacity}"
        );
        Battery {
            capacity,
            remaining: capacity,
        }
    }

    /// The initial capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The energy still available.
    pub fn remaining(&self) -> f64 {
        self.remaining
    }

    /// The energy drained so far.
    pub fn drained(&self) -> f64 {
        self.capacity - self.remaining
    }

    /// Remaining energy as a fraction of capacity.
    pub fn fraction(&self) -> f64 {
        self.remaining / self.capacity
    }

    /// Whether the node can still operate (strictly positive reserve).
    pub fn is_alive(&self) -> bool {
        self.remaining > 0.0
    }

    /// Removes up to `amount` of energy and returns how much was actually
    /// drained (less than `amount` only when the battery empties).
    pub fn drain(&mut self, amount: f64) -> f64 {
        debug_assert!(amount >= 0.0, "negative drain {amount}");
        let actual = amount.min(self.remaining);
        self.remaining -= actual;
        actual
    }
}

/// Energy prices for each radio operation.
///
/// # Example
///
/// ```
/// use cbtc_energy::EnergyModel;
/// use cbtc_radio::{PathLoss, PowerLaw};
///
/// let model = EnergyModel::paper_default();
/// let radio = PowerLaw::paper_default();
/// // Transmitting across a long link costs more than a short one.
/// let far = model.tx_cost(radio.required_power(400.0));
/// let near = model.tx_cost(radio.required_power(100.0));
/// assert!(far > near);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Fixed electronics cost per transmitted packet.
    pub tx_electronics: f64,
    /// Radiated energy per packet per unit of transmission power (the
    /// packet's airtime expressed in epoch-time units).
    pub amp_scale: f64,
    /// Fixed cost per received packet.
    pub rx_cost: f64,
    /// Baseline idle/listening cost per node per epoch.
    pub idle_per_epoch: f64,
    /// Topology-maintenance duty cycle: fraction of an epoch spent
    /// beaconing at the node's broadcast-radius power.
    pub maintenance_duty: f64,
    /// Link margin in dB added on top of a power-controlled hop's
    /// minimum required transmission power (capped at the radio's
    /// maximum). `0.0` is the paper's margin-free power control — which
    /// `BENCH_phy.json` shows collapsing under a soft PRR (links parked
    /// at PRR ≈ 0.5); a few dB of margin buys delivery probability at
    /// the cost of radiated energy, the classic reliability-vs-energy
    /// tradeoff the `phy` benchmark sweeps.
    pub link_margin_db: f64,
    /// What distance per-hop transmission powers are priced against:
    /// geometric distance (the default, the paper's idealized radio) or
    /// the §2 *measured* attenuation, i.e. the effective distance
    /// `d_eff = d·g^(−1/n)` the channel actually presents. Under
    /// shadowing, geometric pricing delivers `p(d)·g` at the receiver —
    /// deeply shadowed links then retransmit hundreds of times and the
    /// CBTC lifetime advantage inverts (the σ = 8 dB collapse in
    /// `BENCH_phy.json`); measured pricing delivers exactly `p(d̂)`. On
    /// the ideal channel `g ≡ 1` and the two are bit-identical.
    pub power_basis: PowerBasis,
}

impl EnergyModel {
    /// Defaults tuned for the paper's radio (`R = 500`, `p(d) = d²`):
    /// standby costs dominate per-packet costs, as in sensor-network
    /// deployments where idle listening is the main energy sink. No link
    /// margin (the paper's exact power control).
    pub fn paper_default() -> Self {
        EnergyModel {
            tx_electronics: 50.0,
            amp_scale: 0.01,
            rx_cost: 25.0,
            idle_per_epoch: 1_000.0,
            maintenance_duty: 0.05,
            link_margin_db: 0.0,
            power_basis: PowerBasis::Geometric,
        }
    }

    /// The same model with a link margin, builder-style.
    ///
    /// # Panics
    ///
    /// Panics unless `margin_db` is finite and non-negative (a negative
    /// margin would price hops *below* the power that closes them).
    pub fn with_link_margin_db(mut self, margin_db: f64) -> Self {
        assert!(
            margin_db.is_finite() && margin_db >= 0.0,
            "link margin must be a finite non-negative dB value, got {margin_db}"
        );
        self.link_margin_db = margin_db;
        self
    }

    /// The same model with an explicit power-pricing basis,
    /// builder-style. [`PowerBasis::Measured`] makes the lifetime
    /// engine price every power-controlled hop (and each node's
    /// broadcast-radius upkeep) by the link's measured effective
    /// distance instead of its geometric distance.
    pub fn with_power_basis(mut self, basis: PowerBasis) -> Self {
        self.power_basis = basis;
        self
    }

    /// Energy to transmit one packet at `tx_power`.
    pub fn tx_cost(&self, tx_power: Power) -> f64 {
        self.tx_electronics + self.amp_scale * tx_power.linear()
    }

    /// Energy one forwarding hop removes from the network: the sender's
    /// transmission plus the receiver's reception.
    pub fn hop_cost(&self, tx_power: Power) -> f64 {
        self.tx_cost(tx_power) + self.rx_cost
    }

    /// Per-epoch standby drain for a node whose broadcast radius requires
    /// `radius_power`: idle listening plus maintenance beaconing.
    pub fn standby_cost(&self, radius_power: Power) -> f64 {
        self.idle_per_epoch + self.maintenance_duty * radius_power.linear()
    }

    /// The transmission power a hop over distance `distance` uses under
    /// this model: the link's required power — boosted by
    /// [`EnergyModel::link_margin_db`] and capped at the radio's maximum
    /// — when `power_control` is on (the node knows its neighbor
    /// distances), the radio's maximum otherwise.
    ///
    /// With a zero margin no arithmetic is applied at all, so the
    /// margin-free model is bit-identical to the pre-margin engine.
    pub fn hop_tx_power(&self, radio: &PowerLaw, distance: f64, power_control: bool) -> Power {
        if power_control {
            let required = radio.required_power(distance);
            if self.link_margin_db == 0.0 {
                required
            } else {
                let boosted = required.linear() * 10f64.powf(self.link_margin_db / 10.0);
                Power::new(boosted).min(radio.max_power())
            }
        } else {
            radio.max_power()
        }
    }
}

/// Running totals of drained energy, by cause.
///
/// The lifetime engine credits every joule it removes from a battery to
/// exactly one of these categories, so `total()` equals the sum of all
/// battery drains — the conservation property the tests check.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Energy spent transmitting data packets.
    pub tx: f64,
    /// Energy spent receiving data packets.
    pub rx: f64,
    /// Baseline idle/listening energy.
    pub idle: f64,
    /// Topology-maintenance beaconing energy.
    pub maintenance: f64,
}

impl EnergyLedger {
    /// Total drained energy across all categories.
    pub fn total(&self) -> f64 {
        self.tx + self.rx + self.idle + self.maintenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_drain_saturates() {
        let mut b = Battery::new(5.0);
        assert!(b.is_alive());
        assert_eq!(b.drain(2.0), 2.0);
        assert_eq!(b.drained(), 2.0);
        assert_eq!(b.drain(10.0), 3.0);
        assert_eq!(b.remaining(), 0.0);
        assert_eq!(b.fraction(), 0.0);
        assert!(!b.is_alive());
        assert_eq!(b.drain(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0);
    }

    #[test]
    fn costs_scale_with_power() {
        let m = EnergyModel::paper_default();
        let radio = PowerLaw::paper_default();
        assert_eq!(m.tx_cost(Power::ZERO), m.tx_electronics);
        let p = radio.required_power(300.0);
        assert!((m.tx_cost(p) - (50.0 + 0.01 * 90_000.0)).abs() < 1e-9);
        assert_eq!(m.hop_cost(p), m.tx_cost(p) + m.rx_cost);
        // Standby at max radius is the max-power upkeep the paper's §6
        // argues topology control removes.
        let upkeep_max = m.standby_cost(radio.max_power());
        let upkeep_cbtc = m.standby_cost(radio.required_power(155.0));
        assert!(upkeep_max / upkeep_cbtc > 5.0);
    }

    #[test]
    fn hop_power_honors_power_control() {
        let m = EnergyModel::paper_default();
        let radio = PowerLaw::paper_default();
        assert_eq!(m.hop_tx_power(&radio, 100.0, false), radio.max_power());
        assert_eq!(
            m.hop_tx_power(&radio, 100.0, true),
            radio.required_power(100.0)
        );
    }

    #[test]
    #[should_panic(expected = "link margin")]
    fn negative_margin_rejected() {
        let _ = EnergyModel::paper_default().with_link_margin_db(-3.0);
    }

    #[test]
    fn link_margin_boosts_hops_and_caps_at_max() {
        let radio = PowerLaw::paper_default();
        let m = EnergyModel::paper_default().with_link_margin_db(3.0);
        // +3 dB ≈ ×1.995 in linear power.
        let boosted = m.hop_tx_power(&radio, 100.0, true).linear();
        let required = radio.required_power(100.0).linear();
        assert!((boosted / required - 10f64.powf(0.3)).abs() < 1e-12);
        // Near the maximum range the margin cannot exceed max power.
        assert_eq!(m.hop_tx_power(&radio, 499.0, true), radio.max_power());
        // Without power control the margin is irrelevant (already max).
        assert_eq!(m.hop_tx_power(&radio, 100.0, false), radio.max_power());
        // The zero-margin path applies no arithmetic at all.
        let z = EnergyModel::paper_default();
        assert_eq!(
            z.hop_tx_power(&radio, 123.0, true),
            radio.required_power(123.0)
        );
    }

    #[test]
    fn ledger_totals() {
        let ledger = EnergyLedger {
            tx: 1.0,
            rx: 2.0,
            idle: 3.0,
            maintenance: 4.0,
        };
        assert_eq!(ledger.total(), 10.0);
        assert_eq!(EnergyLedger::default().total(), 0.0);
    }
}
