//! Deterministic packet-level traffic generation.
//!
//! Three workloads from the WSN evaluation literature:
//!
//! * **uniform** — independent random source/destination pairs (peer-to-
//!   peer traffic, the default);
//! * **convergecast** — every packet flows to one sink (data collection,
//!   the dominant sensor-network pattern);
//! * **hotspot** — a biased mix: a configurable fraction of packets target
//!   one popular node, the rest are uniform.
//!
//! Generation is a pure function of the seed and the alive set, so a
//! lifetime run is reproducible end to end.

use std::str::FromStr;

use cbtc_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One end-to-end packet: a source and a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Originating node.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
}

/// Which traffic workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Uniform random distinct source/destination pairs.
    Uniform,
    /// All packets flow to `sink`. When the sink dies, traffic stops —
    /// the service the network existed for is over.
    Convergecast {
        /// The data sink.
        sink: NodeId,
    },
    /// A `bias` fraction of packets target `hotspot`; the rest are
    /// uniform.
    Hotspot {
        /// The popular destination.
        hotspot: NodeId,
        /// Fraction of packets addressed to the hotspot (0..=1).
        bias: f64,
    },
}

impl TrafficPattern {
    /// Short label for tables and JSON output.
    pub fn label(&self) -> String {
        match self {
            TrafficPattern::Uniform => "uniform".to_owned(),
            TrafficPattern::Convergecast { sink } => format!("convergecast:{}", sink.raw()),
            TrafficPattern::Hotspot { hotspot, bias } => {
                format!("hotspot:{}@{bias}", hotspot.raw())
            }
        }
    }
}

impl FromStr for TrafficPattern {
    type Err = String;

    /// Parses `uniform`, `convergecast[:SINK]` (default sink 0) and
    /// `hotspot[:NODE[@BIAS]]` (default node 0, bias 0.5). [`Self::label`]
    /// output round-trips through this parser.
    fn from_str(s: &str) -> Result<Self, String> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        let node = |raw: &str| -> Result<NodeId, String> {
            raw.parse::<u32>()
                .map(NodeId::new)
                .map_err(|_| format!("invalid node id `{raw}` in traffic pattern"))
        };
        match kind {
            "uniform" => Ok(TrafficPattern::Uniform),
            "convergecast" => Ok(TrafficPattern::Convergecast {
                sink: arg.map_or(Ok(NodeId::new(0)), node)?,
            }),
            "hotspot" => {
                let (node_raw, bias) = match arg.and_then(|a| a.split_once('@')) {
                    Some((n, b)) => {
                        let bias: f64 = b.parse().map_err(|_| {
                            format!("invalid hotspot bias `{b}` in traffic pattern")
                        })?;
                        if !(0.0..=1.0).contains(&bias) {
                            return Err(format!("hotspot bias {bias} outside 0..=1"));
                        }
                        (Some(n), bias)
                    }
                    None => (arg, 0.5),
                };
                Ok(TrafficPattern::Hotspot {
                    hotspot: node_raw.map_or(Ok(NodeId::new(0)), node)?,
                    bias,
                })
            }
            other => Err(format!(
                "unknown traffic pattern `{other}` (use uniform, convergecast[:SINK] or hotspot[:NODE[@BIAS]])"
            )),
        }
    }
}

/// Seeded generator of per-epoch flow batches.
///
/// # Example
///
/// ```
/// use cbtc_energy::{FlowGenerator, TrafficPattern};
/// use cbtc_graph::NodeId;
///
/// let alive: Vec<NodeId> = (0..5).map(NodeId::new).collect();
/// let mut gen = FlowGenerator::new(TrafficPattern::Uniform, 7);
/// let flows = gen.epoch_flows(&alive, 10);
/// assert_eq!(flows.len(), 10);
/// assert!(flows.iter().all(|f| f.src != f.dst));
///
/// // Same seed, same traffic.
/// let again = FlowGenerator::new(TrafficPattern::Uniform, 7).epoch_flows(&alive, 10);
/// assert_eq!(flows, again);
/// ```
#[derive(Debug, Clone)]
pub struct FlowGenerator {
    pattern: TrafficPattern,
    rng: StdRng,
}

impl FlowGenerator {
    /// A generator for `pattern` seeded with `seed`.
    pub fn new(pattern: TrafficPattern, seed: u64) -> Self {
        FlowGenerator {
            pattern,
            // Decorrelate from placement generators that may share the
            // user-facing seed.
            rng: StdRng::seed_from_u64(seed ^ 0xE4E6_65F1_7A5C_93D1),
        }
    }

    /// The pattern this generator draws from.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Draws `count` flows among the currently alive nodes. Returns fewer
    /// (possibly zero) flows when the pattern cannot be realized — fewer
    /// than two alive nodes, or a dead sink.
    pub fn epoch_flows(&mut self, alive: &[NodeId], count: u32) -> Vec<Flow> {
        let mut flows = Vec::new();
        self.epoch_flows_into(alive, count, &mut flows);
        flows
    }

    /// [`FlowGenerator::epoch_flows`] into a caller-owned buffer
    /// (cleared first), so the per-epoch hot loop allocates nothing.
    pub fn epoch_flows_into(&mut self, alive: &[NodeId], count: u32, flows: &mut Vec<Flow>) {
        flows.clear();
        if alive.len() < 2 {
            return;
        }
        // The alive set is fixed for the whole epoch: resolve the
        // pattern's liveness questions once, not per packet.
        let (sink_alive, hotspot_alive) = match self.pattern {
            TrafficPattern::Uniform => (true, true),
            TrafficPattern::Convergecast { sink } => (alive.contains(&sink), true),
            TrafficPattern::Hotspot { hotspot, .. } => (true, alive.contains(&hotspot)),
        };
        if !sink_alive {
            return; // sink dead: service over
        }
        flows.reserve(count as usize);
        for _ in 0..count {
            let flow = match self.pattern {
                TrafficPattern::Uniform => self.uniform_pair(alive),
                TrafficPattern::Convergecast { sink } => {
                    let src = self.pick_excluding(alive, sink);
                    Some(Flow { src, dst: sink })
                }
                TrafficPattern::Hotspot { hotspot, bias } => {
                    if hotspot_alive && self.rng.gen::<f64>() < bias {
                        let src = self.pick_excluding(alive, hotspot);
                        Some(Flow { src, dst: hotspot })
                    } else {
                        self.uniform_pair(alive)
                    }
                }
            };
            flows.extend(flow);
        }
    }

    fn uniform_pair(&mut self, alive: &[NodeId]) -> Option<Flow> {
        let src = alive[self.rng.gen_range(0..alive.len())];
        let dst = self.pick_excluding(alive, src);
        Some(Flow { src, dst })
    }

    /// A uniform pick among `alive` different from `not` (requires
    /// `alive.len() >= 2`).
    fn pick_excluding(&mut self, alive: &[NodeId], not: NodeId) -> NodeId {
        loop {
            let candidate = alive[self.rng.gen_range(0..alive.len())];
            if candidate != not {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn parse_patterns() {
        assert_eq!(
            "uniform".parse::<TrafficPattern>().unwrap(),
            TrafficPattern::Uniform
        );
        assert_eq!(
            "convergecast:3".parse::<TrafficPattern>().unwrap(),
            TrafficPattern::Convergecast {
                sink: NodeId::new(3)
            }
        );
        assert_eq!(
            "convergecast".parse::<TrafficPattern>().unwrap(),
            TrafficPattern::Convergecast {
                sink: NodeId::new(0)
            }
        );
        match "hotspot:5".parse::<TrafficPattern>().unwrap() {
            TrafficPattern::Hotspot { hotspot, bias } => {
                assert_eq!(hotspot, NodeId::new(5));
                assert!(bias > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!("bogus".parse::<TrafficPattern>().is_err());
        assert!("convergecast:x".parse::<TrafficPattern>().is_err());
        assert!("hotspot:1@1.5".parse::<TrafficPattern>().is_err());
        assert!("hotspot:1@x".parse::<TrafficPattern>().is_err());
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for pattern in [
            TrafficPattern::Uniform,
            TrafficPattern::Convergecast {
                sink: NodeId::new(7),
            },
            TrafficPattern::Hotspot {
                hotspot: NodeId::new(4),
                bias: 0.25,
            },
        ] {
            let parsed: TrafficPattern = pattern.label().parse().unwrap();
            assert_eq!(parsed, pattern, "label `{}`", pattern.label());
        }
    }

    #[test]
    fn uniform_flows_are_valid_and_deterministic() {
        let alive = ids(8);
        let a = FlowGenerator::new(TrafficPattern::Uniform, 1).epoch_flows(&alive, 50);
        let b = FlowGenerator::new(TrafficPattern::Uniform, 1).epoch_flows(&alive, 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for f in &a {
            assert_ne!(f.src, f.dst);
            assert!(alive.contains(&f.src) && alive.contains(&f.dst));
        }
        let c = FlowGenerator::new(TrafficPattern::Uniform, 2).epoch_flows(&alive, 50);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn convergecast_targets_sink_until_it_dies() {
        let sink = NodeId::new(2);
        let pattern = TrafficPattern::Convergecast { sink };
        let alive = ids(6);
        let flows = FlowGenerator::new(pattern, 3).epoch_flows(&alive, 20);
        assert_eq!(flows.len(), 20);
        assert!(flows.iter().all(|f| f.dst == sink && f.src != sink));

        let without_sink: Vec<NodeId> = alive.into_iter().filter(|n| *n != sink).collect();
        let flows = FlowGenerator::new(pattern, 3).epoch_flows(&without_sink, 20);
        assert!(flows.is_empty(), "dead sink stops traffic");
    }

    #[test]
    fn hotspot_bias_shows_up() {
        let hotspot = NodeId::new(0);
        let pattern = TrafficPattern::Hotspot { hotspot, bias: 0.8 };
        let flows = FlowGenerator::new(pattern, 9).epoch_flows(&ids(10), 500);
        let to_hotspot = flows.iter().filter(|f| f.dst == hotspot).count();
        // 0.8 bias plus the uniform remainder's 1/10 share.
        assert!(
            to_hotspot > 350,
            "only {to_hotspot}/500 flows hit the hotspot"
        );
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn degenerate_alive_sets() {
        let mut g = FlowGenerator::new(TrafficPattern::Uniform, 0);
        assert!(g.epoch_flows(&ids(1), 10).is_empty());
        assert!(g.epoch_flows(&[], 10).is_empty());
    }
}
