//! The lifetime engine's pluggable topology and link-reliability
//! interfaces.
//!
//! [`TopologyPolicy`](crate::TopologyPolicy) covers the paper's two
//! worlds (max power, CBTC over the ideal radio). The phy subsystem needs
//! to run the *same* lifetime arithmetic over topologies built on a
//! stochastic channel, and to charge energy for the retransmissions lossy
//! links force. These two traits are that seam:
//!
//! * [`TopologyBuilder`] — how the network (re)builds its topology, over
//!   everyone and over survivors;
//! * [`LinkReliability`] — the expected number of transmission attempts a
//!   packet needs per hop (ARQ with retransmit-until-delivered), which
//!   multiplies both the hop's energy drains and its routing weight.
//!
//! [`IdealLinks`] returns the literal constant `1.0`, and multiplying by
//! `1.0` is exact in IEEE 754 — so the default path through the lifetime
//! engine is bit-identical to one with no reliability concept at all.

use cbtc_core::reconfig::TopologyDelta;
use cbtc_core::Network;
use cbtc_graph::{NodeId, UndirectedGraph};
use cbtc_radio::Power;

/// An incrementally maintained survivor topology: the stateful
/// counterpart of [`TopologyBuilder::build_on_survivors`], patched per
/// death epoch instead of rebuilt.
///
/// Implementations must stay **edge-for-edge identical** to the
/// from-scratch rebuild at every alive mask — the lifetime engine
/// treats the two paths as interchangeable and the equivalence tests
/// replay whole simulations across them.
pub trait SurvivorTracker: std::fmt::Debug + Send {
    /// The current topology (dead nodes isolated, original node set).
    fn graph(&self) -> &UndirectedGraph;

    /// Kills `dead` and reconfigures incrementally, returning the final
    /// graph's exact edge delta.
    fn kill(&mut self, network: &Network, dead: &[NodeId]) -> TopologyDelta;

    /// Installs observability hooks on the underlying incremental engine,
    /// so every [`SurvivorTracker::kill`] records a per-batch
    /// reconfiguration sample. The default is a no-op (view-free
    /// trackers have no engine to instrument).
    fn set_trace(&mut self, trace: cbtc_trace::TraceHandle) {
        let _ = trace;
    }

    /// Advances the clock stamped onto recorded reconfiguration samples.
    fn set_trace_clock(&mut self, time: f64) {
        let _ = time;
    }

    /// Installs a metrics registry on the underlying incremental engine,
    /// so every [`SurvivorTracker::kill`] feeds the per-event-kind
    /// latency histograms and replay counters. The default is a no-op
    /// (view-free trackers have no engine to instrument).
    fn set_metrics(&mut self, registry: &cbtc_metrics::MetricsRegistry) {
        let _ = registry;
    }

    /// Clones the tracker behind the object seam (lifetime simulations
    /// are `Clone`).
    fn clone_box(&self) -> Box<dyn SurvivorTracker>;
}

impl Clone for Box<dyn SurvivorTracker> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// How a lifetime run builds (and rebuilds) its topology.
///
/// Implementations must be deterministic: both methods are pure functions
/// of the network and the mask.
pub trait TopologyBuilder: std::fmt::Debug + Send + Sync {
    /// Builds the topology over the full network.
    fn build(&self, network: &Network) -> UndirectedGraph;

    /// Builds the topology over the surviving subset: a graph on the
    /// original node set whose edges touch only nodes with `alive[i]`
    /// true (the §4 reconfiguration step).
    fn build_on_survivors(&self, network: &Network, alive: &[bool]) -> UndirectedGraph;

    /// An incremental survivor tracker whose maintained graph is
    /// bit-equal to [`TopologyBuilder::build_on_survivors`] at every
    /// mask, when the builder supports one. The lifetime engine prefers
    /// it over from-scratch rebuilds (`LifetimeConfig { incremental:
    /// true, .. }`); `None` falls back to rebuilding.
    fn survivor_tracker(&self, network: &Network) -> Option<Box<dyn SurvivorTracker>> {
        let _ = network;
        None
    }

    /// Whether nodes know link costs and can adapt per-packet
    /// transmission power.
    fn power_controlled(&self) -> bool;

    /// Display label for tables and JSON output.
    fn label(&self) -> String;
}

/// Expected transmission attempts per packet per directed link.
///
/// Under ARQ a packet over a link with delivery probability `p` takes
/// `1/p` attempts in expectation; the sender pays that many
/// transmissions and the receiver that many receptions. Implementations
/// must be deterministic (a frozen channel) and return values `≥ 1`.
pub trait LinkReliability: std::fmt::Debug + Send + Sync {
    /// Expected attempts for one packet over `u → v` at `tx_power`,
    /// where `distance` is the geometric link length. `1.0` = perfectly
    /// reliable.
    fn attempts(&self, u: NodeId, v: NodeId, tx_power: Power, distance: f64) -> f64;

    /// The distance the §2 measurement assumption would report for
    /// `u → v`: the effective distance `d·g^(−1/n)` on a stochastic
    /// channel, the geometric `distance` itself (returned literally, no
    /// arithmetic) on the ideal one. The lifetime engine prices hops by
    /// this value under `PowerBasis::Measured`.
    fn priced_distance(&self, u: NodeId, v: NodeId, distance: f64) -> f64 {
        let _ = (u, v);
        distance
    }
}

/// The ideal channel: every link needs exactly one attempt.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealLinks;

impl LinkReliability for IdealLinks {
    fn attempts(&self, _u: NodeId, _v: NodeId, _tx_power: Power, _distance: f64) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_links_are_exactly_one() {
        let r = IdealLinks;
        assert_eq!(
            r.attempts(NodeId::new(0), NodeId::new(1), Power::new(10.0), 42.0),
            1.0
        );
    }
}
