//! Edge-case integration tests for the discrete-event engine.

use cbtc_geom::Point2;
use cbtc_graph::{Layout, NodeId};
use cbtc_radio::{DirectionSensor, Power, PowerLaw};
use cbtc_sim::{Context, Engine, FaultConfig, Incoming, Node, QuiescenceResult, SimTime};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Records everything it observes.
#[derive(Debug, Default)]
struct Recorder {
    heard_from: Vec<NodeId>,
    directions: Vec<f64>,
    started: bool,
}

impl Node for Recorder {
    type Msg = u8;
    fn on_start(&mut self, ctx: &mut Context<u8>) {
        self.started = true;
        if ctx.self_id() == n(0) {
            ctx.broadcast(Power::new(250_000.0), 1);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<u8>, msg: Incoming<u8>) {
        self.heard_from.push(msg.from);
        self.directions.push(msg.direction.radians());
    }
}

fn two_nodes(d: f64) -> Layout {
    Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(d, 0.0)])
}

#[test]
fn crash_before_start_suppresses_everything() {
    let mut e = Engine::new(
        two_nodes(100.0),
        PowerLaw::paper_default(),
        vec![Recorder::default(), Recorder::default()],
        FaultConfig::reliable_synchronous(),
    );
    // Crash node 0 at t=0: the crash event is queued after the start
    // events (FIFO), so node 0 still starts — schedule at t=0 means same
    // tick. To suppress the start entirely we would need start times > 0.
    // Here we verify the clean case: node 1 crashed before node 0's
    // message arrives.
    e.schedule_crash(n(1), SimTime::ZERO);
    e.run_to_quiescence(100);
    assert!(e.node(n(1)).heard_from.is_empty());
    assert!(!e.is_alive(n(1)));
}

#[test]
fn deferred_node_misses_early_traffic_but_can_act_later() {
    #[derive(Debug, Default)]
    struct LateTalker {
        heard: u32,
    }
    impl Node for LateTalker {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut Context<u8>) {
            // Both nodes broadcast on start.
            ctx.broadcast(Power::new(250_000.0), 7);
        }
        fn on_message(&mut self, _ctx: &mut Context<u8>, _msg: Incoming<u8>) {
            self.heard += 1;
        }
    }
    let starts = [SimTime::ZERO, SimTime::new(100)];
    let mut e = Engine::with_start_times(
        two_nodes(100.0),
        PowerLaw::paper_default(),
        vec![LateTalker::default(), LateTalker::default()],
        FaultConfig::reliable_synchronous(),
        &starts,
    );
    e.run_to_quiescence(100);
    // Node 1 missed node 0's t=0 broadcast (not started), but node 0
    // hears node 1's broadcast from t=100.
    assert_eq!(e.node(n(1)).heard, 0);
    assert_eq!(e.node(n(0)).heard, 1);
}

#[test]
fn zero_power_broadcast_reaches_nobody() {
    #[derive(Debug, Default)]
    struct Whisper {
        heard: u32,
    }
    impl Node for Whisper {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut Context<u8>) {
            if ctx.self_id() == n(0) {
                ctx.broadcast(Power::ZERO, 1);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<u8>, _msg: Incoming<u8>) {
            self.heard += 1;
        }
    }
    let mut e = Engine::new(
        two_nodes(50.0),
        PowerLaw::paper_default(),
        vec![Whisper::default(), Whisper::default()],
        FaultConfig::reliable_synchronous(),
    );
    e.run_to_quiescence(10);
    assert_eq!(e.node(n(1)).heard, 0);
    assert_eq!(e.stats().deliveries, 0);
    assert_eq!(e.stats().broadcasts, 1);
}

#[test]
fn sensor_noise_perturbs_measured_directions() {
    let run = |noise: f64| {
        let mut e = Engine::new(
            two_nodes(100.0),
            PowerLaw::paper_default(),
            vec![Recorder::default(), Recorder::default()],
            FaultConfig::reliable_synchronous(),
        );
        e.set_sensor(DirectionSensor::with_error_bound(noise));
        e.run_to_quiescence(10);
        e.node(n(1)).directions[0]
    };
    let exact = run(0.0);
    assert!((exact - std::f64::consts::PI).abs() < 1e-12);
    let noisy = run(0.3);
    assert!((noisy - std::f64::consts::PI).abs() <= 0.3 + 1e-12);
    // Same seed ⇒ same perturbation.
    assert_eq!(noisy, run(0.3));
}

#[test]
fn async_runs_with_same_seed_are_identical() {
    let run = || {
        let config = FaultConfig::asynchronous(1, 6, 12345)
            .with_loss(0.2)
            .with_duplication(0.1);
        let mut e = Engine::new(
            Layout::new(vec![
                Point2::new(0.0, 0.0),
                Point2::new(150.0, 0.0),
                Point2::new(300.0, 0.0),
                Point2::new(450.0, 40.0),
            ]),
            PowerLaw::paper_default(),
            (0..4).map(|_| Recorder::default()).collect(),
            config,
        );
        e.run_to_quiescence(1000);
        (
            e.stats().clone(),
            e.nodes()
                .iter()
                .map(|r| r.heard_from.clone())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn run_until_is_idempotent_at_same_deadline() {
    let mut e = Engine::new(
        two_nodes(100.0),
        PowerLaw::paper_default(),
        vec![Recorder::default(), Recorder::default()],
        FaultConfig::reliable_synchronous(),
    );
    e.run_until(SimTime::new(50));
    let stats = e.stats().clone();
    e.run_until(SimTime::new(50));
    assert_eq!(&stats, e.stats());
    assert_eq!(e.now(), SimTime::new(50));
}

#[test]
fn engine_is_send() {
    // Engines can be moved across threads (e.g. one simulation per worker
    // in a parameter sweep), provided the protocol type is Send.
    fn assert_send<T: Send>() {}
    assert_send::<Engine<Recorder, PowerLaw>>();
    assert_send::<FaultConfig>();
    assert_send::<SimTime>();
}

#[test]
fn parallel_engines_are_independent() {
    // Two engines run on separate threads produce the same results as
    // sequential runs — no hidden shared state.
    let spawn_run = || {
        std::thread::spawn(|| {
            let mut e = Engine::new(
                two_nodes(100.0),
                PowerLaw::paper_default(),
                vec![Recorder::default(), Recorder::default()],
                FaultConfig::reliable_synchronous(),
            );
            e.run_to_quiescence(100);
            e.node(n(1)).heard_from.clone()
        })
    };
    let a = spawn_run().join().expect("thread a");
    let b = spawn_run().join().expect("thread b");
    assert_eq!(a, b);
    assert_eq!(a, vec![n(0)]);
}

#[test]
fn quiescence_result_carries_final_time() {
    let mut e = Engine::new(
        two_nodes(100.0),
        PowerLaw::paper_default(),
        vec![Recorder::default(), Recorder::default()],
        FaultConfig::reliable_synchronous(),
    );
    match e.run_to_quiescence(100) {
        QuiescenceResult::Quiescent(t) => assert_eq!(t, SimTime::new(1)),
        other => panic!("unexpected {other:?}"),
    }
}
