//! Fault and timing configuration for the asynchronous model (§4).

use serde::{Deserialize, Serialize};

/// Channel timing and fault parameters.
///
/// The default configuration is the paper's §2 model: synchronous
/// (unit latency), reliable (no loss, no duplication). §4 relaxes all of
/// it: "nodes are assumed to communicate asynchronously, messages may get
/// lost or duplicated, and nodes may fail".
///
/// All randomness derives from `seed`; two runs with equal configuration
/// are identical.
///
/// # Example
///
/// ```
/// use cbtc_sim::FaultConfig;
///
/// let sync = FaultConfig::reliable_synchronous();
/// assert_eq!(sync.latency(), (1, 1));
///
/// let lossy = FaultConfig::asynchronous(3, 9, 42).with_loss(0.1).with_duplication(0.05);
/// assert_eq!(lossy.latency(), (3, 9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    min_latency: u64,
    max_latency: u64,
    loss_probability: f64,
    duplication_probability: f64,
    seed: u64,
    start_jitter: u64,
}

impl FaultConfig {
    /// The §2 model: every message takes exactly one tick, nothing is lost
    /// or duplicated.
    pub fn reliable_synchronous() -> Self {
        FaultConfig {
            min_latency: 1,
            max_latency: 1,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            seed: 0,
            start_jitter: 0,
        }
    }

    /// An asynchronous channel with per-message latency drawn uniformly
    /// from `[min_latency, max_latency]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_latency == 0` (messages cannot arrive before they are
    /// sent... within the same event cascade) or `min > max`.
    pub fn asynchronous(min_latency: u64, max_latency: u64, seed: u64) -> Self {
        assert!(min_latency >= 1, "minimum latency must be at least 1 tick");
        assert!(
            min_latency <= max_latency,
            "min latency {min_latency} exceeds max {max_latency}"
        );
        FaultConfig {
            min_latency,
            max_latency,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            seed,
            start_jitter: 0,
        }
    }

    /// Adds a per-node random start jitter: each node's start event is
    /// delayed by a seeded uniform draw from `[0, max_jitter]` ticks — a
    /// real MAC's association scatter. Synchronized protocol drivers
    /// (everyone's first Hello in the same slot) are the worst case for
    /// SINR collisions and CSMA backoff; jitter desynchronizes the
    /// rounds. `0` (the default) adds no delay and draws nothing, so
    /// existing runs replay bit for bit.
    pub fn with_start_jitter(mut self, max_jitter: u64) -> Self {
        self.start_jitter = max_jitter;
        self
    }

    /// Sets the independent per-delivery loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1), got {p}"
        );
        self.loss_probability = p;
        self
    }

    /// Sets the independent per-delivery duplication probability (a
    /// duplicated message is delivered twice, the copy with fresh latency).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "duplication probability must be in [0, 1), got {p}"
        );
        self.duplication_probability = p;
        self
    }

    /// Replaces the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The latency bounds `(min, max)` in ticks.
    pub fn latency(&self) -> (u64, u64) {
        (self.min_latency, self.max_latency)
    }

    /// Per-delivery loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Per-delivery duplication probability.
    pub fn duplication_probability(&self) -> f64 {
        self.duplication_probability
    }

    /// The random seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The maximum per-node start jitter in ticks (0 = synchronized
    /// starts).
    pub fn start_jitter(&self) -> u64 {
        self.start_jitter
    }

    /// An upper bound on one message round trip (request out, reply back),
    /// used by protocols to size timeouts.
    pub fn round_trip_bound(&self) -> u64 {
        2 * self.max_latency
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::reliable_synchronous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_defaults() {
        let c = FaultConfig::default();
        assert_eq!(c.latency(), (1, 1));
        assert_eq!(c.loss_probability(), 0.0);
        assert_eq!(c.duplication_probability(), 0.0);
        assert_eq!(c.round_trip_bound(), 2);
    }

    #[test]
    fn builder_chain() {
        let c = FaultConfig::asynchronous(2, 5, 7)
            .with_loss(0.25)
            .with_duplication(0.125)
            .with_seed(99);
        assert_eq!(c.latency(), (2, 5));
        assert_eq!(c.loss_probability(), 0.25);
        assert_eq!(c.duplication_probability(), 0.125);
        assert_eq!(c.seed(), 99);
        assert_eq!(c.round_trip_bound(), 10);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_latency_rejected() {
        let _ = FaultConfig::asynchronous(0, 5, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn inverted_latency_rejected() {
        let _ = FaultConfig::asynchronous(5, 2, 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = FaultConfig::default().with_loss(1.0);
    }
}
