//! # cbtc-sim
//!
//! A deterministic discrete-event simulator for distributed wireless
//! protocols, built to run the CBTC algorithm exactly under the paper's two
//! execution models:
//!
//! * **Synchronous, reliable** (§2): communication proceeds in rounds
//!   governed by a global clock; a message sent in one round is received in
//!   the next. Realized by [`Engine`] with unit latency and no faults.
//! * **Asynchronous with faults** (§4): arbitrary (bounded) message
//!   latencies, message loss and duplication, and crash failures.
//!   Realized by [`Engine`] with a [`FaultConfig`].
//!
//! The paper's three communication primitives map directly:
//!
//! * `bcast(u, p, m)` → [`Context::broadcast`] — delivered to every node
//!   `v` with `p(d(u, v)) ≤ p`;
//! * `send(u, p, m, v)` → [`Context::send`] — unicast, delivered when the
//!   power actually reaches `v`;
//! * `recv(u, m, v)` → [`Node::on_message`] with an [`Incoming`] envelope
//!   carrying the reception power and angle-of-arrival — the *only*
//!   physical information a protocol may observe (no positions!).
//!
//! Everything is deterministic: events are ordered by `(time, sequence)`,
//! and all randomness (latency jitter, loss, duplication) flows from the
//! seed in [`FaultConfig`].
//!
//! Broadcast delivery resolves its reception set through an expanding
//! [`cbtc_graph::SpatialGrid`] shell scan over the node layout
//! (maintained incrementally under [`Engine::move_node`]), so a beacon
//! costs `O(neighbors)` rather than `O(n)` — the change that makes
//! §4-style beaconing simulable at 10⁴–10⁵ nodes. The same enumeration
//! path serves the physical layer's per-slot interference registry.
//!
//! # Beyond the paper: the stochastic physical layer
//!
//! [`Engine::set_phy`] installs a [`cbtc_phy::PhyProfile`]: per-link
//! log-normal shadowing gains, per-packet Rayleigh/Rician fading, a
//! PRR curve over the SINR margin, same-slot interference sums, and a
//! slotted-CSMA listen-before-talk MAC. The ideal profile
//! ([`cbtc_phy::PhyProfile::ideal`]) reproduces the paper's radio — and
//! the faultless code path — **bit for bit**; the engine's property
//! tests pin that equivalence down.
//!
//! # Paper map
//!
//! | item | implements |
//! |------|------------|
//! | [`Engine`] | §2's synchronous rounds / §4's asynchronous execution |
//! | [`Context`], [`Node`], [`Incoming`] | §2: `bcast`/`send`/`recv` and the reception-power + angle-of-arrival information model |
//! | [`FaultConfig`] | §4: bounded latency, loss, duplication, crash-stop |
//! | [`SimTime`] | the discrete clock both models share |
//! | [`TraceStats`] | the message/energy accounting the §5-style experiments report |
//! | [`Engine::set_phy`] | beyond the paper: shadowing/fading/PRR delivery, SINR interference, slotted CSMA |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod faults;
mod runtime;
mod time;
mod trace;

pub use engine::{Engine, QuiescenceResult};
pub use faults::FaultConfig;
pub use runtime::{Command, Context, Incoming, Node};
pub use time::SimTime;
pub use trace::TraceStats;
