//! # cbtc-sim
//!
//! A deterministic discrete-event simulator for distributed wireless
//! protocols, built to run the CBTC algorithm exactly under the paper's two
//! execution models:
//!
//! * **Synchronous, reliable** (§2): communication proceeds in rounds
//!   governed by a global clock; a message sent in one round is received in
//!   the next. Realized by [`Engine`] with unit latency and no faults.
//! * **Asynchronous with faults** (§4): arbitrary (bounded) message
//!   latencies, message loss and duplication, and crash failures.
//!   Realized by [`Engine`] with a [`FaultConfig`].
//!
//! The paper's three communication primitives map directly:
//!
//! * `bcast(u, p, m)` → [`Context::broadcast`] — delivered to every node
//!   `v` with `p(d(u, v)) ≤ p`;
//! * `send(u, p, m, v)` → [`Context::send`] — unicast, delivered when the
//!   power actually reaches `v`;
//! * `recv(u, m, v)` → [`Node::on_message`] with an [`Incoming`] envelope
//!   carrying the reception power and angle-of-arrival — the *only*
//!   physical information a protocol may observe (no positions!).
//!
//! Everything is deterministic: events are ordered by `(time, sequence)`,
//! and all randomness (latency jitter, loss, duplication) flows from the
//! seed in [`FaultConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod faults;
mod runtime;
mod time;
mod trace;

pub use engine::{Engine, QuiescenceResult};
pub use faults::FaultConfig;
pub use runtime::{Command, Context, Incoming, Node};
pub use time::SimTime;
pub use trace::TraceStats;
