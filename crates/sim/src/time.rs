//! Discrete simulation time.

use std::fmt;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in integer ticks.
///
/// In the synchronous model one tick is one communication round; in the
/// asynchronous model ticks are an arbitrary time unit against which
/// latencies and timeouts are expressed.
///
/// # Example
///
/// ```
/// use cbtc_sim::SimTime;
///
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert!(t < t + 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a tick count.
    pub const fn new(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Ticks elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_add(rhs).expect("simulation time overflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::new(10);
        assert_eq!(t + 5, SimTime::new(15));
        assert!(SimTime::ZERO < t);
        assert_eq!(t.since(SimTime::new(4)), 6);
        assert_eq!(SimTime::new(4).since(t), 0); // saturating
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(7).to_string(), "t7");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = SimTime::new(u64::MAX) + 1;
    }
}
