//! The deterministic event queue.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use cbtc_graph::NodeId;
use cbtc_radio::Power;

use crate::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    /// A node begins executing its protocol (`on_start`).
    Start { node: NodeId },
    /// A message arrives at `to`.
    Deliver {
        to: NodeId,
        from: NodeId,
        rx_power: Power,
        tx_power: Power,
        /// The slot the transmission aired in (for same-slot SINR sums).
        sent_at: SimTime,
        /// Received signal budget `p·g·f` (linear), frozen at air time.
        signal: f64,
        /// The interference-free decoding threshold `p(d)` (linear).
        threshold: f64,
        payload: M,
    },
    /// A CSMA-deferred transmission airs (phy pipeline only): a broadcast
    /// when `to` is `None`, a unicast otherwise.
    Transmit {
        origin: NodeId,
        power: Power,
        to: Option<NodeId>,
        /// Carrier-sense attempts already made.
        attempt: u32,
        payload: M,
    },
    /// A protocol timer fires at `node`.
    Timer { node: NodeId, id: u64 },
    /// A node crash-stops.
    Crash { node: NodeId },
}

#[derive(Debug)]
pub(crate) struct QueuedEvent<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for QueuedEvent<M> {}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Time first, then insertion order: a strict total order that makes
        // simulation runs reproducible.
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Reverse<QueuedEvent<M>>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(QueuedEvent { time, seq, kind }));
    }

    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, id: u64) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId::new(node),
            id,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(5), timer(0, 0));
        q.push(SimTime::new(1), timer(1, 0));
        q.push(SimTime::new(3), timer(2, 0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::new(1)));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.ticks())
            .collect();
        assert_eq!(times, vec![1, 3, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::new(7), timer(i as u32, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { id, .. } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(2), timer(0, 0));
        q.push(SimTime::new(1), timer(0, 1));
        assert_eq!(q.pop().unwrap().time, SimTime::new(1));
        q.push(SimTime::new(0), timer(0, 2));
        assert_eq!(q.pop().unwrap().time, SimTime::new(0));
        assert_eq!(q.pop().unwrap().time, SimTime::new(2));
        assert!(q.pop().is_none());
    }
}
