//! The discrete-event simulation engine.

use std::collections::BTreeMap;

use cbtc_geom::Angle;
use cbtc_graph::{Layout, NodeId, SpatialGrid};
use cbtc_phy::{InterferenceField, InterferenceProfile, PhyProfile};
use cbtc_radio::{DirectionSensor, LinkGain, PathLoss, Power, Prr};
use cbtc_trace::{TraceEvent, TraceHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{EventKind, EventQueue};
use crate::runtime::{Command, Context, Incoming, Node};
use crate::{FaultConfig, SimTime, TraceStats};

/// Hard cap on the broadcast reach expansion a lossy profile can demand,
/// as a multiple of the deterministic maximum range `R`. A candidate
/// beyond it would need a combined shadowing + fading + PRR-tail gain
/// above `REACH_FACTOR_CAP²ⁿ` in power (≈ +24 dB at n = 2) merely to hit
/// the PRR floor — the bounded-reach approximation that keeps broadcasts
/// output-sensitive under heavy shadowing profiles.
const REACH_FACTOR_CAP: f64 = 4.0;

/// The installed physical-layer pipeline: stochastic channel, reception
/// curve, and the optional SINR/CSMA machinery with its per-slot
/// transmission registry.
///
/// Everything here draws from fields frozen at [`Engine::set_phy`] time
/// (the channel) or from the dedicated phy RNG (PRR coins, backoff), so
/// installing a phy never perturbs the fault RNG stream — with the
/// [`PhyProfile::ideal`] profile the run is bit-identical to no phy at
/// all.
#[derive(Debug)]
struct PhyState {
    profile: PhyProfile,
    channel: cbtc_phy::StochasticChannel,
    rng: StdRng,
    /// Per-transmission fading token (transmission counter).
    token: u64,
    /// Slot start-time → that slot's transmissions, kept while deliveries
    /// from the slot can still arrive. Only populated when interference
    /// or CSMA is configured.
    slots: BTreeMap<u64, InterferenceField>,
    /// Cleared fields of pruned slots, recycled so steady-state ticks
    /// allocate nothing.
    field_pool: Vec<InterferenceField>,
    /// Cell side for newly created slot fields.
    field_cell: f64,
}

impl PhyState {
    fn tracks_slots(&self) -> bool {
        self.profile.interference.is_some() || self.profile.csma.is_some()
    }

    /// The combined worst-case factor by which gains and the PRR floor
    /// can extend a transmission's reach beyond the deterministic range.
    fn reach_expansion(&self) -> f64 {
        self.channel.max_gain() * self.channel.max_packet_gain()
            / self.profile.prr.min_viable_ratio()
    }
}

/// Outcome of [`Engine::run_to_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuiescenceResult {
    /// The event queue drained; no node has anything left to do. Carries
    /// the time of the last processed event.
    Quiescent(SimTime),
    /// The event budget was exhausted before the queue drained (e.g. a
    /// protocol that beacons forever).
    EventLimitReached,
}

/// A deterministic discrete-event simulator running one [`Node`] protocol
/// instance per network node over a [`PathLoss`] radio.
///
/// * **Information hiding** — protocols observe reception powers and
///   angles of arrival, never positions (the paper's GPS-free model).
/// * **Determinism** — events are processed in `(time, insertion)` order;
///   latency jitter, loss and duplication derive from the seed in
///   [`FaultConfig`].
/// * **Faults** — messages may be lost or duplicated; nodes can crash-stop
///   via [`Engine::schedule_crash`]. Crashed nodes neither receive nor
///   send, matching §4's crash-failure model.
///
/// # Example
///
/// A trivial protocol in which node 0 broadcasts once and everyone records
/// what they hear:
///
/// ```
/// use cbtc_graph::{Layout, NodeId};
/// use cbtc_geom::Point2;
/// use cbtc_radio::{PathLoss, Power, PowerLaw};
/// use cbtc_sim::{Context, Engine, FaultConfig, Incoming, Node};
///
/// struct Gossip { heard: bool }
/// impl Node for Gossip {
///     type Msg = ();
///     fn on_start(&mut self, ctx: &mut Context<()>) {
///         if ctx.self_id() == NodeId::new(0) {
///             ctx.broadcast(Power::new(10_000.0), ());
///         }
///     }
///     fn on_message(&mut self, _ctx: &mut Context<()>, _msg: Incoming<()>) {
///         self.heard = true;
///     }
/// }
///
/// let layout = Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)]);
/// let model = PowerLaw::paper_default();
/// let nodes = vec![Gossip { heard: false }, Gossip { heard: false }];
/// let mut engine = Engine::new(layout, model, nodes, FaultConfig::reliable_synchronous());
/// engine.run_to_quiescence(10_000);
/// assert!(engine.node(NodeId::new(1)).heard);
/// ```
#[derive(Debug)]
pub struct Engine<P: Node, M: PathLoss> {
    layout: Layout,
    /// Spatial index over `layout`, cell side `R`: broadcast delivery
    /// queries the 3×3 cell block around the sender instead of scanning
    /// all nodes. Kept in sync by [`Engine::move_node`].
    grid: SpatialGrid,
    /// Scratch buffer for grid queries (reused across broadcasts).
    scratch: Vec<NodeId>,
    model: M,
    sensor: DirectionSensor,
    config: FaultConfig,
    rng: StdRng,
    queue: EventQueue<P::Msg>,
    nodes: Vec<P>,
    alive: Vec<bool>,
    started: Vec<bool>,
    time: SimTime,
    stats: TraceStats,
    /// The stochastic physical layer, when installed ([`Engine::set_phy`]).
    phy: Option<PhyState>,
    /// Observability hooks, when installed ([`Engine::set_trace`]). With
    /// none, recording is a single `Option` check per lifecycle event.
    trace: Option<TraceHandle>,
}

impl<P: Node, M: PathLoss> Engine<P, M> {
    /// Creates an engine with every node starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != layout.len()`.
    pub fn new(layout: Layout, model: M, nodes: Vec<P>, config: FaultConfig) -> Self {
        let starts = vec![SimTime::ZERO; nodes.len()];
        Engine::with_start_times(layout, model, nodes, config, &starts)
    }

    /// Creates an engine with per-node start times (later starts model
    /// nodes joining an already-running network).
    ///
    /// When the fault configuration carries a
    /// [`FaultConfig::with_start_jitter`], each start is additionally
    /// delayed by a seeded uniform draw from `[0, jitter]` ticks —
    /// desynchronizing the otherwise slot-aligned first Hello rounds.
    /// The jitter RNG is dedicated (`seed ^ 0x5EED_1A57`), so enabling
    /// jitter never perturbs the fault stream, and a zero jitter draws
    /// nothing at all.
    ///
    /// # Panics
    ///
    /// Panics if the node, layout and start counts disagree.
    pub fn with_start_times(
        layout: Layout,
        model: M,
        nodes: Vec<P>,
        config: FaultConfig,
        starts: &[SimTime],
    ) -> Self {
        assert_eq!(nodes.len(), layout.len(), "one protocol instance per node");
        assert_eq!(nodes.len(), starts.len(), "one start time per node");
        let n = nodes.len();
        let mut queue = EventQueue::new();
        let jitter = config.start_jitter();
        let mut jitter_rng =
            (jitter > 0).then(|| StdRng::seed_from_u64(config.seed() ^ 0x5EED_1A57));
        for (i, &t) in starts.iter().enumerate() {
            let t = match &mut jitter_rng {
                Some(rng) => t + rng.gen_range(0..=jitter),
                None => t,
            };
            queue.push(
                t,
                EventKind::Start {
                    node: NodeId::new(i as u32),
                },
            );
        }
        Engine {
            grid: SpatialGrid::from_layout(&layout, model.max_range()),
            scratch: Vec::new(),
            layout,
            model,
            sensor: DirectionSensor::exact(),
            config,
            rng: StdRng::seed_from_u64(config.seed()),
            queue,
            nodes,
            alive: vec![true; n],
            started: vec![false; n],
            time: SimTime::ZERO,
            stats: TraceStats::new(n),
            phy: None,
            trace: None,
        }
    }

    /// Replaces the angle-of-arrival sensor (default: exact).
    pub fn set_sensor(&mut self, sensor: DirectionSensor) {
        self.sensor = sensor;
    }

    /// Installs a stochastic physical layer: per-link shadowing gains,
    /// per-packet fading, a PRR curve, and (per the profile) SINR
    /// interference between same-slot transmissions plus slotted-CSMA
    /// listen-before-talk. Install before the first event is processed.
    ///
    /// With [`PhyProfile::ideal`] the run is **bit-identical** to an
    /// engine without a phy: every gain is the constant `1.0`, the hard
    /// PRR threshold reproduces the `p(d) ≤ p` reception set exactly, and
    /// no extra RNG draws occur.
    ///
    /// Half-duplex falls out of the SINR sum: a node that transmitted in
    /// a slot sees its own (near-field, enormous) energy as interference
    /// on anything it would receive in that slot.
    pub fn set_phy(&mut self, profile: PhyProfile) {
        if profile.aoa_error > 0.0 {
            self.sensor = profile.sensor();
        }
        let cutoff_factor = profile
            .interference
            .map(|i| i.range_factor)
            .unwrap_or(1.0)
            .max(profile.csma.map(|c| c.cs_range_factor).unwrap_or(1.0));
        self.phy = Some(PhyState {
            channel: profile.channel(),
            rng: StdRng::seed_from_u64(profile.seed ^ 0x5EED_F1E1),
            token: 0,
            slots: BTreeMap::new(),
            field_pool: Vec::new(),
            field_cell: (cutoff_factor * self.model.max_range()).max(1.0),
            profile,
        });
    }

    /// The installed phy profile, if any.
    pub fn phy_profile(&self) -> Option<&PhyProfile> {
        self.phy.as_ref().map(|p| &p.profile)
    }

    /// Installs observability hooks: the engine records a
    /// [`TraceEvent::Death`] when a crash-stop fires and a
    /// [`TraceEvent::Join`] when a node with a late start time powers
    /// on. Hooks only *observe* already-computed state — they draw no
    /// randomness and schedule nothing, so a traced run is bit-identical
    /// to an untraced one.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Schedules a crash-stop of `node` at `time`. From that moment the
    /// node sends and receives nothing.
    pub fn schedule_crash(&mut self, node: NodeId, time: SimTime) {
        self.queue.push(time, EventKind::Crash { node });
    }

    /// Moves a node (mobility). Takes effect immediately: messages already
    /// in flight are delivered against the *new* geometry, matching a radio
    /// whose reception happens at arrival time.
    pub fn move_node(&mut self, node: NodeId, position: cbtc_geom::Point2) {
        let from = self.layout.position(node);
        self.layout.set_position(node, position);
        self.grid.update(node, from, position);
    }

    /// The current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The node layout (ground truth; tests and metrics only — protocols
    /// cannot see this).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The propagation model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// All protocol instances, indexed by node.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Whether `node` has not crashed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Whether `node` has processed its start event (a node with a future
    /// start time models a device that has not yet joined the network).
    pub fn has_started(&self, node: NodeId) -> bool {
        self.started[node.index()]
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.time = event.time;
        self.stats.last_event_time = event.time;
        self.prune_slots();
        match event.kind {
            EventKind::Start { node } => {
                if self.alive[node.index()] {
                    self.started[node.index()] = true;
                    if self.time > SimTime::ZERO {
                        if let Some(trace) = &self.trace {
                            let p = self.layout.position(node);
                            trace.record(TraceEvent::Join {
                                time: self.time.ticks() as f64,
                                node: node.raw(),
                                x: p.x,
                                y: p.y,
                            });
                        }
                    }
                    let mut ctx = Context::new(self.time, node);
                    self.nodes[node.index()].on_start(&mut ctx);
                    self.execute(node, ctx.into_commands());
                }
            }
            EventKind::Deliver {
                to,
                from,
                rx_power,
                tx_power,
                sent_at,
                signal,
                threshold,
                payload,
            } => {
                // A node that has not started yet (not powered on / not
                // joined) receives nothing.
                if self.alive[to.index()] && self.started[to.index()] {
                    if !self.phy_accepts(to, from, sent_at, signal, threshold) {
                        self.stats.phy_lost += 1;
                        return true;
                    }
                    self.stats.deliveries += 1;
                    let direction = self.bearing(to, from);
                    let incoming = Incoming {
                        from,
                        tx_power,
                        rx_power,
                        direction,
                        payload,
                    };
                    let mut ctx = Context::new(self.time, to);
                    self.nodes[to.index()].on_message(&mut ctx, incoming);
                    self.execute(to, ctx.into_commands());
                }
            }
            EventKind::Transmit {
                origin,
                power,
                to,
                attempt,
                payload,
            } => {
                // A node that crashed while backed off airs nothing.
                if self.alive[origin.index()] {
                    self.csma_transmit(origin, power, to, attempt, payload);
                }
            }
            EventKind::Timer { node, id } => {
                if self.alive[node.index()] {
                    self.stats.timer_firings += 1;
                    let mut ctx = Context::new(self.time, node);
                    self.nodes[node.index()].on_timer(&mut ctx, id);
                    self.execute(node, ctx.into_commands());
                }
            }
            EventKind::Crash { node } => {
                if self.alive[node.index()] {
                    if let Some(trace) = &self.trace {
                        trace.record(TraceEvent::Death {
                            time: self.time.ticks() as f64,
                            node: node.raw(),
                        });
                    }
                }
                self.alive[node.index()] = false;
            }
        }
        true
    }

    /// Runs until the queue holds no event at or before `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.queue.peek_time().is_some_and(|t| t <= deadline) {
            self.step();
        }
        self.time = self.time.max(deadline);
    }

    /// Runs until the event queue drains or `max_events` have been
    /// processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> QuiescenceResult {
        for _ in 0..max_events {
            if !self.step() {
                return QuiescenceResult::Quiescent(self.time);
            }
        }
        if self.queue.is_empty() {
            QuiescenceResult::Quiescent(self.time)
        } else {
            QuiescenceResult::EventLimitReached
        }
    }

    /// The direction `observer` measures for a transmission from `source`,
    /// including sensor error. Co-located nodes yield an arbitrary fixed
    /// bearing.
    fn bearing(&self, observer: NodeId, source: NodeId) -> Angle {
        let po = self.layout.position(observer);
        let ps = self.layout.position(source);
        let true_bearing = if po == ps {
            Angle::ZERO
        } else {
            po.direction_to(ps)
        };
        true_bearing.rotated(
            self.sensor
                .perturbation(observer.raw() as u64, source.raw() as u64),
        )
    }

    fn execute(&mut self, origin: NodeId, commands: Vec<Command<P::Msg>>) {
        let defer = self.phy.as_ref().is_some_and(|p| p.profile.csma.is_some());
        for command in commands {
            match command {
                Command::Broadcast { power, payload } => {
                    if defer {
                        // Listen-before-talk: the transmission becomes an
                        // event so carrier sensing sees every same-slot
                        // command, whatever handler order produced them.
                        self.queue.push(
                            self.time,
                            EventKind::Transmit {
                                origin,
                                power,
                                to: None,
                                attempt: 0,
                                payload,
                            },
                        );
                    } else {
                        self.transmit(origin, power, None, payload);
                    }
                }
                Command::Send { power, payload, to } => {
                    if defer {
                        self.queue.push(
                            self.time,
                            EventKind::Transmit {
                                origin,
                                power,
                                to: Some(to),
                                attempt: 0,
                                payload,
                            },
                        );
                    } else {
                        self.transmit(origin, power, Some(to), payload);
                    }
                }
                Command::SetTimer { delay, id } => {
                    self.queue
                        .push(self.time + delay, EventKind::Timer { node: origin, id });
                }
            }
        }
    }

    /// A [`EventKind::Transmit`] fires: sense the carrier, then air or
    /// back off. Slotted CSMA — "in progress" means "aired in this slot".
    fn csma_transmit(
        &mut self,
        origin: NodeId,
        power: Power,
        to: Option<NodeId>,
        attempt: u32,
        payload: P::Msg,
    ) {
        let position = self.layout.position(origin);
        let csma = match self.phy.as_ref().and_then(|phy| phy.profile.csma) {
            Some(csma) => csma,
            // A Transmit event without CSMA configured (phy swapped out
            // mid-flight): air directly.
            None => return self.transmit(origin, power, to, payload),
        };
        let cs_range = csma.cs_range_factor * self.model.max_range();
        let now = self.time.ticks();
        let phy = self.phy.as_mut().expect("csma implies a phy");
        let busy = phy
            .slots
            .get_mut(&now)
            .is_some_and(|field| field.carrier_busy(position, origin, cs_range));
        if busy && attempt + 1 < csma.max_attempts {
            self.stats.csma_deferrals += 1;
            let phy = self.phy.as_mut().expect("csma implies a phy");
            let backoff = 1 + phy.rng.gen_range(0..=csma.max_backoff);
            self.queue.push(
                self.time + backoff,
                EventKind::Transmit {
                    origin,
                    power,
                    to,
                    attempt: attempt + 1,
                    payload,
                },
            );
        } else {
            if busy {
                self.stats.csma_forced += 1;
            }
            self.transmit(origin, power, to, payload);
        }
    }

    /// Airs one transmission: accounts energy, registers it in the slot's
    /// interference field, resolves the reception set, and enqueues
    /// deliveries.
    fn transmit(&mut self, origin: NodeId, power: Power, to: Option<NodeId>, payload: P::Msg) {
        match to {
            None => self.stats.broadcasts += 1,
            Some(_) => self.stats.unicasts += 1,
        }
        self.charge(origin, power);
        let position = self.layout.position(origin);
        let now = self.time.ticks();
        let token = match self.phy.as_mut() {
            Some(phy) => {
                let token = phy.token;
                phy.token += 1;
                if phy.tracks_slots() {
                    let cell = phy.field_cell;
                    let pool = &mut phy.field_pool;
                    phy.slots
                        .entry(now)
                        .or_insert_with(|| {
                            // Recycle a pruned slot's field (its grid and
                            // buffers survive `clear`) before allocating.
                            pool.pop().unwrap_or_else(|| InterferenceField::new(cell))
                        })
                        .register(origin, position, power);
                }
                token
            }
            None => 0,
        };
        match to {
            None => {
                // Every node the transmission can plausibly reach lies
                // within range(power · worst-case gain) of the sender, so
                // the shared shell-scan enumeration plus the exact
                // per-candidate filter reproduces the all-nodes scan.
                // Sorting keeps delivery (and thus fault-RNG) order
                // identical to it. The worst-case expansion is capped at
                // REACH_FACTOR_CAP × R — a combined shadowing+fading+PRR
                // tail beyond that is vanishingly rare, and the cap is
                // what keeps lossy-profile broadcasts output-sensitive
                // (the bounded-reach counterpart of the interference
                // cutoff). The cap never binds for the ideal profile.
                let radius = match &self.phy {
                    None => self.model.range(power),
                    Some(phy) => self
                        .model
                        .range(power * phy.reach_expansion())
                        .min(self.model.max_range() * REACH_FACTOR_CAP),
                };
                let mut targets = std::mem::take(&mut self.scratch);
                targets.clear();
                let mut scan = self.grid.shell_scan(self.layout.position(origin), radius);
                while scan.scan_next(&mut targets) {}
                targets.sort_unstable();
                for &v in &targets {
                    if v != origin {
                        self.try_enqueue(origin, v, power, token, &payload);
                    }
                }
                self.scratch = targets;
            }
            Some(v) => {
                if v != origin {
                    self.try_enqueue(origin, v, power, token, &payload);
                }
            }
        }
    }

    /// Applies the per-link reception filter and enqueues the delivery.
    /// The payload is only cloned once a delivery is actually enqueued,
    /// so filtered-out candidates cost no allocation.
    ///
    /// Without a phy this is exactly the paper's reception set
    /// `p(d(u,v)) ≤ p`. With one, the signal budget `p·g·f` (link gain
    /// and this packet's fading draw, both frozen fields) is checked for
    /// *possible* delivery now; the SINR/PRR coin is tossed at arrival,
    /// when the slot's interference is known.
    fn try_enqueue(
        &mut self,
        from: NodeId,
        to: NodeId,
        power: Power,
        token: u64,
        payload: &P::Msg,
    ) {
        let distance = self.layout.distance(from, to);
        let required = self.model.required_power(distance);
        let (signal, gain, viable) = match &self.phy {
            None => (power.linear(), 1.0, required <= power),
            Some(phy) => {
                let g = phy.channel.link_gain(from.raw() as u64, to.raw() as u64);
                let f = phy
                    .channel
                    .packet_gain(from.raw() as u64, to.raw() as u64, token);
                let signal = power.linear() * g * f;
                let viable = phy
                    .profile
                    .prr
                    .delivery_probability(signal, required.linear())
                    > 0.0;
                (signal, g * f, viable)
            }
        };
        if !viable {
            return;
        }
        self.enqueue_delivery(from, to, power, distance, gain, signal, required, payload);
    }

    fn charge(&mut self, node: NodeId, power: Power) {
        self.stats.energy_spent += power.linear();
        self.stats.energy_per_node[node.index()] += power.linear();
    }

    /// The arrival-time phy decision for one delivery: PRR over the SINR
    /// margin, with the slot's interference raising the threshold.
    /// Always `true` without a phy; with the ideal profile the
    /// probability is exactly 1 and no RNG draw occurs.
    fn phy_accepts(
        &mut self,
        to: NodeId,
        from: NodeId,
        sent_at: SimTime,
        signal: f64,
        threshold: f64,
    ) -> bool {
        let Some(phy) = self.phy.as_mut() else {
            return true;
        };
        let channel = phy.channel;
        let interference = match phy.profile.interference {
            None => 0.0,
            Some(InterferenceProfile { range_factor }) => {
                match phy.slots.get_mut(&sent_at.ticks()) {
                    None => 0.0,
                    Some(field) => field.relative_interference(
                        &self.model,
                        self.layout.position(to),
                        to,
                        from,
                        range_factor * self.model.max_range(),
                        &channel,
                    ),
                }
            }
        };
        let probability = phy
            .profile
            .prr
            .delivery_probability(signal, threshold * (1.0 + interference));
        if probability >= 1.0 {
            true
        } else if probability <= 0.0 {
            false
        } else {
            phy.rng.gen::<f64>() < probability
        }
    }

    /// Drops slot interference registries no in-flight delivery can still
    /// reference (slots older than the maximum latency plus the same-slot
    /// margin).
    fn prune_slots(&mut self) {
        let now = self.time.ticks();
        let (_, max_latency) = self.config.latency();
        let Some(phy) = self.phy.as_mut() else { return };
        while let Some(entry) = phy.slots.first_entry() {
            if entry.key() + max_latency < now {
                let mut field = entry.remove();
                field.clear();
                phy.field_pool.push(field);
            } else {
                break;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        tx_power: Power,
        distance: f64,
        gain: f64,
        signal: f64,
        required: Power,
        payload: &P::Msg,
    ) {
        // Loss, duplication, then latency — all drawn deterministically.
        if self.config.loss_probability() > 0.0
            && self.rng.gen::<f64>() < self.config.loss_probability()
        {
            self.stats.lost += 1;
            return;
        }
        let copies = if self.config.duplication_probability() > 0.0
            && self.rng.gen::<f64>() < self.config.duplication_probability()
        {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        // The protocol-visible reception power carries the same channel
        // gains as the delivery decision, so the §2 attenuation estimate
        // recovers the *effective* link cost (what it actually takes to
        // close this link), not the geometric distance.
        let rx_power = match &self.phy {
            None => self.model.reception_power(tx_power, distance),
            Some(_) => self.model.reception_power(tx_power, distance) * gain,
        };
        for _ in 0..copies {
            let (lo, hi) = self.config.latency();
            let latency = if lo == hi {
                lo
            } else {
                self.rng.gen_range(lo..=hi)
            };
            self.queue.push(
                self.time + latency,
                EventKind::Deliver {
                    to,
                    from,
                    rx_power,
                    tx_power,
                    sent_at: self.time,
                    signal,
                    threshold: required.linear(),
                    payload: payload.clone(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_geom::Point2;
    use cbtc_radio::PowerLaw;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Flood: node 0 broadcasts a counter; every first reception
    /// rebroadcasts with decremented TTL.
    #[derive(Debug)]
    struct Flood {
        received: Vec<u32>,
    }

    impl Node for Flood {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if ctx.self_id() == n(0) {
                ctx.broadcast(Power::new(250_000.0), 3);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<u32>, msg: Incoming<u32>) {
            let first_time = self.received.is_empty();
            self.received.push(msg.payload);
            if first_time && msg.payload > 0 {
                ctx.broadcast(Power::new(250_000.0), msg.payload - 1);
            }
        }
    }

    fn line_layout(spacing: f64, count: usize) -> Layout {
        Layout::new(
            (0..count)
                .map(|i| Point2::new(i as f64 * spacing, 0.0))
                .collect(),
        )
    }

    fn flood_engine(count: usize, config: FaultConfig) -> Engine<Flood, PowerLaw> {
        let layout = line_layout(400.0, count);
        let nodes = (0..count).map(|_| Flood { received: vec![] }).collect();
        Engine::new(layout, PowerLaw::paper_default(), nodes, config)
    }

    #[test]
    fn flood_propagates_hop_by_hop() {
        // Nodes 400 apart, range 500: only adjacent nodes hear each other.
        let mut e = flood_engine(4, FaultConfig::reliable_synchronous());
        let result = e.run_to_quiescence(1_000);
        assert!(matches!(result, QuiescenceResult::Quiescent(_)));
        // Full trace: t1 node 1 gets TTL-3 and rebroadcasts TTL-2; t2 nodes
        // 0 and 2 both hear it (their first) and rebroadcast TTL-1; t3 node
        // 1 hears both TTL-1 copies (no rebroadcast — not first) and node 3
        // hears TTL-1 and rebroadcasts TTL-0; t4 node 2 hears TTL-0.
        assert_eq!(e.node(n(1)).received, vec![3, 1, 1]);
        assert_eq!(e.node(n(2)).received, vec![2, 0]);
        assert_eq!(e.node(n(3)).received, vec![1]);
        assert_eq!(e.now(), SimTime::new(4));
        assert_eq!(e.stats().broadcasts, 5);
        assert!(e.stats().energy_spent > 0.0);
    }

    #[test]
    fn unicast_requires_sufficient_power() {
        #[derive(Debug)]
        struct OneShot {
            got: u32,
        }
        impl Node for OneShot {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Context<u32>) {
                if ctx.self_id() == n(0) {
                    // Too weak to span 400 units (needs 160 000).
                    ctx.send(Power::new(10_000.0), 7, n(1));
                    // Strong enough.
                    ctx.send(Power::new(250_000.0), 9, n(1));
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<u32>, msg: Incoming<u32>) {
                self.got = msg.payload;
            }
        }
        let layout = line_layout(400.0, 2);
        let nodes = vec![OneShot { got: 0 }, OneShot { got: 0 }];
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            nodes,
            FaultConfig::reliable_synchronous(),
        );
        e.run_to_quiescence(100);
        assert_eq!(e.node(n(1)).got, 9);
        assert_eq!(e.stats().deliveries, 1);
        assert_eq!(e.stats().unicasts, 2);
    }

    #[test]
    fn incoming_envelope_carries_physics() {
        #[derive(Debug, Default)]
        struct Probe {
            seen: Option<(f64, f64, f64)>, // (tx, rx, direction)
        }
        impl Node for Probe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                if ctx.self_id() == n(0) {
                    ctx.broadcast(Power::new(40_000.0), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<()>, msg: Incoming<()>) {
                self.seen = Some((
                    msg.tx_power.linear(),
                    msg.rx_power.linear(),
                    msg.direction.radians(),
                ));
            }
        }
        // Node 1 is 100 units due *east* of node 0, so node 1 sees node 0
        // due west (π).
        let layout = Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)]);
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            vec![Probe::default(), Probe::default()],
            FaultConfig::reliable_synchronous(),
        );
        e.run_to_quiescence(10);
        let (tx, rx, dir) = e.node(n(1)).seen.expect("message must arrive");
        assert_eq!(tx, 40_000.0);
        assert!((rx - 4.0).abs() < 1e-9); // 40 000 / 100²
        assert!((dir - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn crashed_nodes_are_silent() {
        let mut e = flood_engine(3, FaultConfig::reliable_synchronous());
        e.schedule_crash(n(1), SimTime::ZERO);
        e.run_to_quiescence(100);
        // Node 1 crashed before receiving; node 2 (800 from node 0) never
        // hears anything.
        assert!(e.node(n(1)).received.is_empty());
        assert!(e.node(n(2)).received.is_empty());
        assert!(!e.is_alive(n(1)));
        assert!(e.is_alive(n(0)));
    }

    #[test]
    fn loss_drops_messages_deterministically() {
        let config = FaultConfig::asynchronous(1, 1, 7).with_loss(0.9);
        let mut a = flood_engine(4, config);
        let mut b = flood_engine(4, config);
        a.run_to_quiescence(10_000);
        b.run_to_quiescence(10_000);
        // Identical seeds → identical outcomes.
        for i in 0..4 {
            assert_eq!(a.node(n(i)).received, b.node(n(i)).received);
        }
        assert!(a.stats().lost > 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        // Two nodes, always duplicate: receiver sees the broadcast twice.
        #[derive(Debug, Default)]
        struct CountRx {
            count: u32,
        }
        impl Node for CountRx {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                if ctx.self_id() == n(0) {
                    ctx.broadcast(Power::new(250_000.0), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<()>, _msg: Incoming<()>) {
                self.count += 1;
            }
        }
        let config = FaultConfig::asynchronous(1, 1, 1).with_duplication(0.999_999);
        let layout = line_layout(100.0, 2);
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            vec![CountRx::default(), CountRx::default()],
            config,
        );
        e.run_to_quiescence(100);
        assert_eq!(e.node(n(1)).count, 2);
        assert_eq!(e.stats().duplicated, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug, Default)]
        struct Timers {
            fired: Vec<u64>,
        }
        impl Node for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.set_timer(5, 1);
                ctx.set_timer(2, 2);
                ctx.set_timer(9, 3);
            }
            fn on_message(&mut self, _ctx: &mut Context<()>, _msg: Incoming<()>) {}
            fn on_timer(&mut self, _ctx: &mut Context<()>, id: u64) {
                self.fired.push(id);
            }
        }
        let layout = line_layout(1.0, 1);
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            vec![Timers::default()],
            FaultConfig::reliable_synchronous(),
        );
        e.run_to_quiescence(100);
        assert_eq!(e.node(n(0)).fired, vec![2, 1, 3]);
        assert_eq!(e.stats().timer_firings, 3);
        assert_eq!(e.now(), SimTime::new(9));
    }

    #[test]
    fn deferred_start_times() {
        let layout = line_layout(100.0, 2);
        let nodes = vec![Flood { received: vec![] }, Flood { received: vec![] }];
        let starts = [SimTime::ZERO, SimTime::new(50)];
        let mut e = Engine::with_start_times(
            layout,
            PowerLaw::paper_default(),
            nodes,
            FaultConfig::reliable_synchronous(),
            &starts,
        );
        e.run_until(SimTime::new(10));
        // Node 1 has not started yet: node 0's broadcast is lost on it.
        assert_eq!(e.node(n(1)).received, Vec::<u32>::new());
        e.run_to_quiescence(100);
        // After starting at t=50, node 1 broadcasts nothing itself (only
        // node 0 initiates), so it still has heard nothing; node 0 heard
        // nothing either.
        assert_eq!(e.node(n(0)).received, Vec::<u32>::new());
        assert!(matches!(
            e.run_to_quiescence(1),
            QuiescenceResult::Quiescent(_)
        ));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let layout = line_layout(1.0, 1);
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            vec![Flood { received: vec![] }],
            FaultConfig::reliable_synchronous(),
        );
        e.run_until(SimTime::new(500));
        assert_eq!(e.now(), SimTime::new(500));
    }

    #[test]
    fn mobility_affects_in_flight_delivery() {
        // Node 1 starts in range but moves out before the message lands.
        let layout = line_layout(400.0, 2);
        let nodes = vec![Flood { received: vec![] }, Flood { received: vec![] }];
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            nodes,
            FaultConfig::reliable_synchronous(),
        );
        // Process node starts only (t=0): node 0's broadcast is now queued
        // for t=1 — the reaches() check already passed at send time, so the
        // message arrives, but the *measured direction* uses the new
        // position.
        e.run_until(SimTime::ZERO);
        e.move_node(n(1), Point2::new(0.0, 300.0));
        e.run_to_quiescence(100);
        // The in-flight TTL-3 lands despite the move; the echo chain then
        // runs over the new 300-unit geometry (still in range).
        assert_eq!(e.node(n(1)).received, vec![3, 1]);
    }

    #[test]
    fn ideal_phy_is_bit_identical_to_no_phy() {
        // Same seeds, same faults; the only difference is the installed
        // ideal phy. Every observable must match exactly.
        let config = FaultConfig::asynchronous(1, 3, 9)
            .with_loss(0.2)
            .with_duplication(0.1);
        let mut plain = flood_engine(4, config);
        let mut phy = flood_engine(4, config);
        phy.set_phy(cbtc_phy::PhyProfile::ideal());
        plain.run_to_quiescence(100_000);
        phy.run_to_quiescence(100_000);
        for i in 0..4 {
            assert_eq!(plain.node(n(i)).received, phy.node(n(i)).received);
        }
        assert_eq!(plain.stats(), phy.stats());
        assert_eq!(phy.stats().phy_lost, 0);
    }

    #[test]
    fn shadowing_changes_the_reception_set() {
        use cbtc_phy::{PhyProfile, ShadowingMode};
        // A link right at the reception margin: nodes 499.99 apart with
        // range 500. Under heavy per-direction shadowing some seeds close
        // the link and some do not.
        let layout = line_layout(499.99, 2);
        let mut outcomes = Vec::new();
        for seed in 0..12u64 {
            let nodes = vec![Flood { received: vec![] }, Flood { received: vec![] }];
            let mut e = Engine::new(
                layout.clone(),
                PowerLaw::paper_default(),
                nodes,
                FaultConfig::reliable_synchronous(),
            );
            let mut profile = PhyProfile::shadowed(8.0, seed);
            profile.shadowing_mode = ShadowingMode::Independent;
            e.set_phy(profile);
            e.run_to_quiescence(1_000);
            outcomes.push(!e.node(n(1)).received.is_empty());
        }
        assert!(
            outcomes.iter().any(|&heard| heard),
            "no seed ever delivered"
        );
        assert!(
            outcomes.iter().any(|&heard| !heard),
            "no seed ever faded out"
        );
    }

    #[test]
    fn same_slot_interference_drops_the_collision() {
        use cbtc_phy::{InterferenceProfile, PhyProfile};
        // Two senders flank a receiver at equal distance and broadcast in
        // the same slot: under SINR each packet sees the other at equal
        // power (SINR ≈ 1 ≪ required margin), so both are lost. The same
        // geometry without interference delivers both.
        #[derive(Debug, Default)]
        struct Pulse {
            got: u32,
        }
        impl Node for Pulse {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                if ctx.self_id() != n(1) {
                    ctx.broadcast(Power::new(250_000.0), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<()>, _msg: Incoming<()>) {
                self.got += 1;
            }
        }
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(400.0, 0.0),
            Point2::new(800.0, 0.0),
        ]);
        let run = |interference: bool| -> (u32, u64) {
            let nodes = vec![Pulse::default(), Pulse::default(), Pulse::default()];
            let mut e = Engine::new(
                layout.clone(),
                PowerLaw::paper_default(),
                nodes,
                FaultConfig::reliable_synchronous(),
            );
            let mut profile = PhyProfile::ideal();
            if interference {
                profile.interference = Some(InterferenceProfile { range_factor: 4.0 });
            }
            e.set_phy(profile);
            e.run_to_quiescence(1_000);
            (e.node(n(1)).got, e.stats().phy_lost)
        };
        let (clean, lost_clean) = run(false);
        assert_eq!(clean, 2);
        assert_eq!(lost_clean, 0);
        let (jammed, lost) = run(true);
        assert_eq!(jammed, 0, "equal-power same-slot packets must collide");
        assert!(lost >= 2);
    }

    #[test]
    fn csma_defers_the_second_transmission() {
        use cbtc_phy::{CsmaProfile, InterferenceProfile, PhyProfile};
        // Same collision geometry, now with listen-before-talk: the later
        // Transmit event senses the earlier one and backs off to another
        // slot, so both packets get through.
        #[derive(Debug, Default)]
        struct Pulse {
            got: u32,
        }
        impl Node for Pulse {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                if ctx.self_id() != n(1) {
                    ctx.broadcast(Power::new(250_000.0), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<()>, _msg: Incoming<()>) {
                self.got += 1;
            }
        }
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(400.0, 0.0),
            Point2::new(800.0, 0.0),
        ]);
        let nodes = vec![Pulse::default(), Pulse::default(), Pulse::default()];
        let mut e = Engine::new(
            layout.clone(),
            PowerLaw::paper_default(),
            nodes,
            FaultConfig::reliable_synchronous(),
        );
        let mut profile = PhyProfile::ideal();
        profile.interference = Some(InterferenceProfile { range_factor: 4.0 });
        profile.csma = Some(CsmaProfile {
            cs_range_factor: 2.0,
            max_backoff: 8,
            max_attempts: 5,
        });
        e.set_phy(profile);
        e.run_to_quiescence(1_000);
        assert_eq!(e.node(n(1)).got, 2, "backoff must separate the slots");
        assert_eq!(e.stats().csma_deferrals, 1);
        assert_eq!(e.stats().phy_lost, 0);
    }

    #[test]
    fn csma_runs_are_deterministic() {
        use cbtc_phy::PhyProfile;
        let run = || {
            let mut e = flood_engine(4, FaultConfig::asynchronous(1, 2, 5).with_loss(0.05));
            e.set_phy(PhyProfile::realistic(6.0, 3));
            e.run_to_quiescence(100_000);
            (
                (0..4)
                    .map(|i| e.node(n(i)).received.clone())
                    .collect::<Vec<_>>(),
                e.stats().clone(),
            )
        };
        let (a_rx, a_stats) = run();
        let (b_rx, b_stats) = run();
        assert_eq!(a_rx, b_rx);
        assert_eq!(a_stats, b_stats);
    }

    #[test]
    fn start_jitter_scatters_starts_deterministically() {
        // Jitter delays node starts reproducibly; zero jitter is the
        // bit-identical default.
        let base = FaultConfig::reliable_synchronous().with_seed(5);
        let mut plain = flood_engine(4, base);
        let mut zero = flood_engine(4, base.with_start_jitter(0));
        plain.run_to_quiescence(1_000);
        zero.run_to_quiescence(1_000);
        assert_eq!(plain.stats(), zero.stats());

        let jittered = || {
            let mut e = flood_engine(4, base.with_start_jitter(16));
            e.run_to_quiescence(1_000);
            (e.now(), e.stats().clone())
        };
        let (t1, s1) = jittered();
        let (t2, s2) = jittered();
        assert_eq!(t1, t2, "jitter must be seeded");
        assert_eq!(s1, s2);
        assert!(t1 > plain.now(), "scattered starts shift the timeline");
    }

    #[test]
    fn quiescence_limit() {
        // A protocol that reschedules a timer forever never quiesces.
        #[derive(Debug)]
        struct Beacon;
        impl Node for Beacon {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.set_timer(1, 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<()>, _msg: Incoming<()>) {}
            fn on_timer(&mut self, ctx: &mut Context<()>, _id: u64) {
                ctx.set_timer(1, 0);
            }
        }
        let layout = line_layout(1.0, 1);
        let mut e = Engine::new(
            layout,
            PowerLaw::paper_default(),
            vec![Beacon],
            FaultConfig::reliable_synchronous(),
        );
        assert_eq!(
            e.run_to_quiescence(100),
            QuiescenceResult::EventLimitReached
        );
    }
}
