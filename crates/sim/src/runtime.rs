//! The protocol-facing runtime interface.
//!
//! A distributed algorithm is implemented as a [`Node`] — per-node state
//! plus handlers. Handlers interact with the world exclusively through a
//! [`Context`], which exposes the paper's communication primitives and
//! timers, and through the [`Incoming`] envelope, which carries *only* the
//! information the paper allows a receiver to observe: the payload, the
//! sender, the transmission power (included in the message by the
//! protocol), the measured reception power, and the angle of arrival.

use cbtc_geom::Angle;
use cbtc_graph::NodeId;
use cbtc_radio::Power;

use crate::SimTime;

/// A received message, as observed by the receiving node.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// The sender (the paper's `recv(u, m, v)` exposes `v`; in practice the
    /// sender's ID travels in the message).
    pub from: NodeId,
    /// The power the message was *sent* with. CBTC messages carry this
    /// (§2: "the power used to broadcast the message is included in the
    /// message").
    pub tx_power: Power,
    /// The power the message was *received* at, after path loss.
    pub rx_power: Power,
    /// The measured angle of arrival: the direction from the receiver to
    /// the sender (`dir_u(v)`), including any configured sensor error.
    pub direction: Angle,
    /// The protocol payload.
    pub payload: M,
}

/// An action a protocol hands back to the engine.
#[derive(Debug, Clone)]
pub enum Command<M> {
    /// `bcast(self, power, payload)`: deliver to every node within range of
    /// `power`.
    Broadcast {
        /// Transmission power.
        power: Power,
        /// Message payload.
        payload: M,
    },
    /// `send(self, power, payload, to)`: unicast; delivered only if `power`
    /// physically reaches `to`.
    Send {
        /// Transmission power.
        power: Power,
        /// Message payload.
        payload: M,
        /// Destination node.
        to: NodeId,
    },
    /// Request a timer callback after `delay` ticks with the given
    /// protocol-chosen identifier.
    SetTimer {
        /// Ticks from now.
        delay: u64,
        /// Identifier passed back to [`Node::on_timer`].
        id: u64,
    },
}

/// The execution context handed to protocol handlers.
///
/// Collects the commands a handler issues; the engine executes them when
/// the handler returns (so handlers never re-enter the engine).
#[derive(Debug)]
pub struct Context<M> {
    now: SimTime,
    self_id: NodeId,
    commands: Vec<Command<M>>,
}

impl<M> Context<M> {
    pub(crate) fn new(now: SimTime, self_id: NodeId) -> Self {
        Context {
            now,
            self_id,
            commands: Vec::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's ID.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Broadcast `payload` with transmission power `power`
    /// (the paper's `bcast`).
    pub fn broadcast(&mut self, power: Power, payload: M) {
        self.commands.push(Command::Broadcast { power, payload });
    }

    /// Unicast `payload` to `to` with transmission power `power`
    /// (the paper's `send`).
    pub fn send(&mut self, power: Power, payload: M, to: NodeId) {
        self.commands.push(Command::Send { power, payload, to });
    }

    /// Schedule [`Node::on_timer`] with `id` after `delay` ticks
    /// (`delay = 0` fires at the current time, after pending events).
    pub fn set_timer(&mut self, delay: u64, id: u64) {
        self.commands.push(Command::SetTimer { delay, id });
    }

    pub(crate) fn into_commands(self) -> Vec<Command<M>> {
        self.commands
    }
}

/// A distributed protocol running at one node.
///
/// Implementations hold the node's local state. The engine calls the
/// handlers; all communication goes through the [`Context`].
pub trait Node {
    /// The protocol's message type.
    type Msg: Clone;

    /// Called once when the node starts (its start event fires).
    fn on_start(&mut self, ctx: &mut Context<Self::Msg>);

    /// Called when a message arrives.
    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, msg: Incoming<Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    ///
    /// The default implementation ignores timers.
    fn on_timer(&mut self, ctx: &mut Context<Self::Msg>, id: u64) {
        let _ = (ctx, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_commands_in_order() {
        let mut ctx: Context<&'static str> = Context::new(SimTime::new(3), NodeId::new(1));
        assert_eq!(ctx.now(), SimTime::new(3));
        assert_eq!(ctx.self_id(), NodeId::new(1));
        ctx.broadcast(Power::new(2.0), "hello");
        ctx.send(Power::new(1.0), "ack", NodeId::new(0));
        ctx.set_timer(5, 42);
        let cmds = ctx.into_commands();
        assert_eq!(cmds.len(), 3);
        assert!(matches!(cmds[0], Command::Broadcast { .. }));
        assert!(matches!(cmds[1], Command::Send { to, .. } if to == NodeId::new(0)));
        assert!(matches!(cmds[2], Command::SetTimer { delay: 5, id: 42 }));
    }
}
