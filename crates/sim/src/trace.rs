//! Execution statistics.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Aggregate statistics of a simulation run.
///
/// Energy accounting follows the paper's §5 observation that an algorithm
/// terminating at lower power "expends less power during its execution":
/// every transmission adds its power to the sender's energy tally.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Broadcasts issued (the paper's `bcast`).
    pub broadcasts: u64,
    /// Unicasts issued (the paper's `send`).
    pub unicasts: u64,
    /// Messages delivered to a handler.
    pub deliveries: u64,
    /// Deliveries suppressed by the loss fault.
    pub lost: u64,
    /// Extra deliveries injected by the duplication fault.
    pub duplicated: u64,
    /// Deliveries suppressed by the physical layer (failed PRR/SINR
    /// draws); 0 when no phy pipeline is installed.
    pub phy_lost: u64,
    /// Transmissions deferred by CSMA carrier sensing (each backoff
    /// counts once).
    pub csma_deferrals: u64,
    /// Transmissions that aired despite a busy carrier after exhausting
    /// their sense attempts.
    pub csma_forced: u64,
    /// Timer firings.
    pub timer_firings: u64,
    /// Sum over transmissions of the transmission power (linear units).
    pub energy_spent: f64,
    /// Per-node transmission energy (linear units), indexed by node.
    pub energy_per_node: Vec<f64>,
    /// The time of the last processed event.
    pub last_event_time: SimTime,
}

impl TraceStats {
    /// Creates zeroed statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        TraceStats {
            energy_per_node: vec![0.0; n],
            ..TraceStats::default()
        }
    }

    /// Total messages transmitted.
    pub fn transmissions(&self) -> u64 {
        self.broadcasts + self.unicasts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_construction() {
        let t = TraceStats::new(3);
        assert_eq!(t.energy_per_node, vec![0.0; 3]);
        assert_eq!(t.transmissions(), 0);
        assert_eq!(t.last_event_time, SimTime::ZERO);
    }

    #[test]
    fn transmissions_sum() {
        let t = TraceStats {
            broadcasts: 3,
            unicasts: 4,
            ..TraceStats::new(1)
        };
        assert_eq!(t.transmissions(), 7);
    }
}
