//! Execution statistics.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Aggregate statistics of a simulation run.
///
/// Energy accounting follows the paper's §5 observation that an algorithm
/// terminating at lower power "expends less power during its execution":
/// every transmission adds its power to the sender's energy tally.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Broadcasts issued (the paper's `bcast`).
    pub broadcasts: u64,
    /// Unicasts issued (the paper's `send`).
    pub unicasts: u64,
    /// Messages delivered to a handler.
    pub deliveries: u64,
    /// Deliveries suppressed by the loss fault.
    pub lost: u64,
    /// Extra deliveries injected by the duplication fault.
    pub duplicated: u64,
    /// Deliveries suppressed by the physical layer (failed PRR/SINR
    /// draws); 0 when no phy pipeline is installed.
    pub phy_lost: u64,
    /// Transmissions deferred by CSMA carrier sensing (each backoff
    /// counts once).
    pub csma_deferrals: u64,
    /// Transmissions that aired despite a busy carrier after exhausting
    /// their sense attempts.
    pub csma_forced: u64,
    /// Timer firings.
    pub timer_firings: u64,
    /// Sum over transmissions of the transmission power (linear units).
    pub energy_spent: f64,
    /// Per-node transmission energy (linear units), indexed by node.
    pub energy_per_node: Vec<f64>,
    /// The time of the last processed event.
    pub last_event_time: SimTime,
}

impl TraceStats {
    /// Creates zeroed statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        TraceStats {
            energy_per_node: vec![0.0; n],
            ..TraceStats::default()
        }
    }

    /// Total messages transmitted.
    pub fn transmissions(&self) -> u64 {
        self.broadcasts + self.unicasts
    }

    /// Total transmission energy as the sum of [`TraceStats::energy_per_node`]
    /// — the one sanctioned way to total per-node energy.
    ///
    /// Both tallies are fed by the same charge (the whole-run total and
    /// the sender's slot), so conservation must hold up to float
    /// summation order; the assertion catches any future accounting path
    /// that updates one tally but not the other.
    ///
    /// # Panics
    ///
    /// Panics if the sum disagrees with [`TraceStats::energy_spent`]
    /// beyond summation-order rounding.
    pub fn energy_total(&self) -> f64 {
        let total: f64 = self.energy_per_node.iter().sum();
        let tolerance = 1e-9 * total.abs().max(self.energy_spent.abs()).max(1.0);
        assert!(
            (total - self.energy_spent).abs() <= tolerance,
            "energy accounting leak: per-node sum {total} vs energy_spent {}",
            self.energy_spent
        );
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_construction() {
        let t = TraceStats::new(3);
        assert_eq!(t.energy_per_node, vec![0.0; 3]);
        assert_eq!(t.transmissions(), 0);
        assert_eq!(t.last_event_time, SimTime::ZERO);
    }

    #[test]
    fn transmissions_sum() {
        let t = TraceStats {
            broadcasts: 3,
            unicasts: 4,
            ..TraceStats::new(1)
        };
        assert_eq!(t.transmissions(), 7);
    }

    #[test]
    fn energy_total_sums_per_node() {
        let t = TraceStats {
            energy_spent: 6.0,
            energy_per_node: vec![1.0, 2.0, 3.0],
            ..TraceStats::default()
        };
        assert_eq!(t.energy_total(), 6.0);
        assert_eq!(TraceStats::new(4).energy_total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "energy accounting leak")]
    fn energy_total_catches_leaks() {
        let t = TraceStats {
            energy_spent: 10.0,
            energy_per_node: vec![1.0, 2.0],
            ..TraceStats::default()
        };
        let _ = t.energy_total();
    }
}
