//! Jittered grid placement.
//!
//! A near-regular deployment (sensor rows with placement error) — the
//! regime where CBTC's per-node radii become nearly uniform.

use cbtc_core::Network;
use cbtc_geom::Point2;
use cbtc_graph::Layout;
use cbtc_radio::PowerLaw;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Places `cols × rows` nodes on a grid with uniform jitter.
///
/// # Example
///
/// ```
/// use cbtc_workloads::GridPlacement;
///
/// let gen = GridPlacement::new(5, 4, 100.0, 10.0, 500.0);
/// assert_eq!(gen.generate(0).len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPlacement {
    cols: usize,
    rows: usize,
    spacing: f64,
    jitter: f64,
    max_range: f64,
}

impl GridPlacement {
    /// Creates a generator; `jitter` is the maximum per-axis displacement.
    ///
    /// # Panics
    ///
    /// Panics on non-positive spacing, negative jitter, or range below 1.
    pub fn new(cols: usize, rows: usize, spacing: f64, jitter: f64, max_range: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        assert!(jitter >= 0.0, "jitter must be non-negative");
        assert!(max_range >= 1.0, "max range must be at least 1");
        GridPlacement {
            cols,
            rows,
            spacing,
            jitter,
            max_range,
        }
    }

    /// Generates the layout only.
    pub fn generate_layout(&self, seed: u64) -> Layout {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(self.cols * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let jx = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..self.jitter)
                } else {
                    0.0
                };
                let jy = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..self.jitter)
                } else {
                    0.0
                };
                points.push(Point2::new(
                    c as f64 * self.spacing + jx,
                    r as f64 * self.spacing + jy,
                ));
            }
        }
        Layout::new(points)
    }

    /// Generates a full network with the free-space radio.
    pub fn generate(&self, seed: u64) -> Network {
        let model = PowerLaw::new(2.0, 1.0, self.max_range).expect("validated parameters");
        Network::new(self.generate_layout(seed), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_is_exact_grid() {
        let layout = GridPlacement::new(3, 2, 50.0, 0.0, 500.0).generate_layout(1);
        assert_eq!(layout.len(), 6);
        assert_eq!(
            layout.position(cbtc_graph::NodeId::new(0)),
            Point2::new(0.0, 0.0)
        );
        assert_eq!(
            layout.position(cbtc_graph::NodeId::new(4)),
            Point2::new(50.0, 50.0)
        );
    }

    #[test]
    fn jitter_bounded() {
        let layout = GridPlacement::new(4, 4, 100.0, 5.0, 500.0).generate_layout(2);
        for (i, (_, p)) in layout.iter().enumerate() {
            let gx = (i % 4) as f64 * 100.0;
            let gy = (i / 4) as f64 * 100.0;
            assert!((p.x - gx).abs() < 5.0);
            assert!((p.y - gy).abs() < 5.0);
        }
    }

    #[test]
    fn deterministic() {
        let gen = GridPlacement::new(3, 3, 80.0, 20.0, 400.0);
        assert_eq!(gen.generate_layout(11), gen.generate_layout(11));
    }
}
