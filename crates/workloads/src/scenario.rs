//! Named experiment scenarios.

use serde::{Deserialize, Serialize};

/// The parameters of a randomized experiment: field size, node count,
/// radio range and number of trials.
///
/// # Example
///
/// ```
/// use cbtc_workloads::Scenario;
///
/// let s = Scenario::paper_default();
/// assert_eq!(s.node_count, 100);
/// assert_eq!((s.width, s.height), (1500.0, 1500.0));
/// assert_eq!(s.max_range, 500.0);
/// assert_eq!(s.trials, 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name, used in experiment output.
    pub name: String,
    /// Nodes per network.
    pub node_count: usize,
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// Maximum transmission radius `R`.
    pub max_range: f64,
    /// Number of random networks to average over.
    pub trials: u32,
}

impl Scenario {
    /// The paper's §5 setup: 100 networks × 100 nodes, 1500×1500 field,
    /// `R = 500`.
    pub fn paper_default() -> Self {
        Scenario {
            name: "paper-default".to_owned(),
            node_count: 100,
            width: 1500.0,
            height: 1500.0,
            max_range: 500.0,
            trials: 100,
        }
    }

    /// A denser variant (twice the nodes on the same field) for ablations.
    pub fn dense() -> Self {
        Scenario {
            name: "dense".to_owned(),
            node_count: 200,
            ..Scenario::paper_default()
        }
    }

    /// A sparser variant (half the nodes) where boundary effects dominate.
    pub fn sparse() -> Self {
        Scenario {
            name: "sparse".to_owned(),
            node_count: 50,
            ..Scenario::paper_default()
        }
    }

    /// A small, quick scenario for smoke tests and doc examples.
    pub fn smoke() -> Self {
        Scenario {
            name: "smoke".to_owned(),
            node_count: 25,
            width: 800.0,
            height: 800.0,
            max_range: 500.0,
            trials: 5,
        }
    }

    /// Per-trial seeds: `base_seed + trial` for `trial ∈ 0..trials`.
    pub fn seeds(&self, base_seed: u64) -> impl Iterator<Item = u64> + '_ {
        (0..self.trials as u64).map(move |t| base_seed + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for s in [
            Scenario::paper_default(),
            Scenario::dense(),
            Scenario::sparse(),
            Scenario::smoke(),
        ] {
            assert!(s.node_count > 0);
            assert!(s.width > 0.0 && s.height > 0.0);
            assert!(s.max_range > 0.0);
            assert!(s.trials > 0);
            assert!(!s.name.is_empty());
        }
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let s = Scenario::smoke();
        let a: Vec<u64> = s.seeds(1000).collect();
        let b: Vec<u64> = s.seeds(1000).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a, vec![1000, 1001, 1002, 1003, 1004]);
    }
}
