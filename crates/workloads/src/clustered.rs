//! Clustered placement: dense groups with sparse interconnects.
//!
//! Topology control matters most when density varies — §5's Figure 6 shows
//! nodes "in the dense areas" reducing their radii. This generator makes
//! the contrast explicit: Gaussian clusters whose centers are spread
//! uniformly over the field.

use cbtc_core::Network;
use cbtc_geom::Point2;
use cbtc_graph::Layout;
use cbtc_radio::PowerLaw;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Places `clusters × nodes_per_cluster` nodes as Gaussian blobs.
///
/// # Example
///
/// ```
/// use cbtc_workloads::ClusteredPlacement;
///
/// let gen = ClusteredPlacement::new(4, 10, 80.0, 1500.0, 1500.0, 500.0);
/// let net = gen.generate(1);
/// assert_eq!(net.len(), 40);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteredPlacement {
    clusters: usize,
    nodes_per_cluster: usize,
    spread: f64,
    width: f64,
    height: f64,
    max_range: f64,
}

impl ClusteredPlacement {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions, spread or range.
    pub fn new(
        clusters: usize,
        nodes_per_cluster: usize,
        spread: f64,
        width: f64,
        height: f64,
        max_range: f64,
    ) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "field dimensions must be positive"
        );
        assert!(spread > 0.0, "cluster spread must be positive");
        assert!(max_range >= 1.0, "max range must be at least 1");
        ClusteredPlacement {
            clusters,
            nodes_per_cluster,
            spread,
            width,
            height,
            max_range,
        }
    }

    /// Generates the layout only.
    pub fn generate_layout(&self, seed: u64) -> Layout {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(self.clusters * self.nodes_per_cluster);
        for _ in 0..self.clusters {
            let cx = rng.gen_range(0.0..self.width);
            let cy = rng.gen_range(0.0..self.height);
            for _ in 0..self.nodes_per_cluster {
                // Box-Muller normal deviates, clamped into the field.
                let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen());
                let mag = self.spread * (-2.0 * u1.ln()).sqrt();
                let x = cx + mag * (std::f64::consts::TAU * u2).cos();
                let y = cy + mag * (std::f64::consts::TAU * u2).sin();
                points.push(Point2::new(
                    x.clamp(0.0, self.width),
                    y.clamp(0.0, self.height),
                ));
            }
        }
        Layout::new(points)
    }

    /// Generates a full network with the free-space radio.
    pub fn generate(&self, seed: u64) -> Network {
        let model = PowerLaw::new(2.0, 1.0, self.max_range).expect("validated parameters");
        Network::new(self.generate_layout(seed), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_count_inside_field() {
        let gen = ClusteredPlacement::new(3, 7, 50.0, 1000.0, 800.0, 400.0);
        let layout = gen.generate_layout(9);
        assert_eq!(layout.len(), 21);
        for (_, p) in layout.iter() {
            assert!((0.0..=1000.0).contains(&p.x));
            assert!((0.0..=800.0).contains(&p.y));
        }
    }

    #[test]
    fn clusters_are_denser_than_uniform() {
        // Mean nearest-neighbor distance in clusters must be well below
        // that of a uniform layout with the same node count.
        let n = 60;
        let clustered =
            ClusteredPlacement::new(6, 10, 40.0, 1500.0, 1500.0, 500.0).generate_layout(5);
        let uniform = crate::RandomPlacement::new(n, 1500.0, 1500.0, 500.0).generate_layout(5);
        let mean_nn = |l: &Layout| {
            let mut total = 0.0;
            for (u, pu) in l.iter() {
                let nn = l
                    .iter()
                    .filter(|(v, _)| *v != u)
                    .map(|(_, pv)| pu.distance(pv))
                    .fold(f64::INFINITY, f64::min);
                total += nn;
            }
            total / l.len() as f64
        };
        assert!(mean_nn(&clustered) < mean_nn(&uniform) * 0.8);
    }

    #[test]
    fn deterministic() {
        let gen = ClusteredPlacement::new(2, 5, 30.0, 500.0, 500.0, 250.0);
        assert_eq!(gen.generate_layout(3), gen.generate_layout(3));
    }
}
