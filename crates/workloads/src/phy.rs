//! The `cbtc-phy` robustness workload: CBTC's structural guarantees
//! measured off the unit disk.
//!
//! Two probes, composed by the CLI (`cbtc phy`) and the `phy` benchmark
//! binary into a shadowing-σ × node-density sweep:
//!
//! * [`phy_construction_probe`] — runs the centralized phy construction
//!   over many random networks at one `(σ, n)` point and reports how
//!   often the final graph (after asymmetric-edge removal) preserves the
//!   connectivity of the *symmetric reach graph* (the phy analogue of
//!   `G_R`), how asymmetric the channel actually was, how often the
//!   pairwise-removal connectivity guard had to intervene, and the power
//!   stretch against the reach graph;
//! * [`phy_protocol_probe`] — runs the *distributed* growing-phase
//!   protocol (Hello/Ack over the discrete-event engine) twice on the
//!   same layout — ideal radio vs. full stochastic stack (shadowing,
//!   fading, soft PRR, SINR interference, slotted CSMA) — and reports
//!   the beacon/Hello overhead the non-ideal channel induces.

use cbtc_core::phy::{phy_reach_digraph, phy_reach_graph, run_phy_centralized, PhyChannel};
use cbtc_core::protocol::{collect_outcome, CbtcNode, GrowthConfig};
use cbtc_core::{CbtcConfig, Network};
use cbtc_graph::connectivity::same_partition;
use cbtc_graph::metrics::average_degree;
use cbtc_graph::paths::{dijkstra, power_weight};
use cbtc_graph::{Layout, NodeId, UndirectedGraph};
use cbtc_phy::PhyProfile;
use cbtc_radio::{PathLoss, Power, PowerBasis, PowerLaw, PowerSchedule};
use cbtc_sim::{Engine, FaultConfig, QuiescenceResult};
use serde::{Deserialize, Serialize};

use crate::{RandomPlacement, Scenario};

/// Connectivity statistics of the phy construction at one `(σ, n)` sweep
/// point, aggregated over the scenario's trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhyConstructionStats {
    /// Shadowing standard deviation (dB) of the sweep point.
    pub sigma_db: f64,
    /// Nodes per network.
    pub nodes: usize,
    /// Trials aggregated.
    pub trials: u32,
    /// Trials whose symmetric reach graph was itself connected.
    pub base_connected: u32,
    /// Trials where the final graph partitions the node set exactly as
    /// the reach graph does (the §3.2 guarantee, measured off the unit
    /// disk).
    pub preserved: u32,
    /// `preserved / trials`.
    pub preserved_fraction: f64,
    /// Mean fraction of directed reach links with no reverse link — how
    /// asymmetric the channel actually was (0 under reciprocal or ideal
    /// shadowing).
    pub asymmetric_link_fraction: f64,
    /// Mean average degree of the final graph.
    pub mean_degree: f64,
    /// Mean count of redundant edges the pairwise connectivity guard had
    /// to restore per trial (0 on the unit disk, where Theorem 3.6
    /// holds).
    pub pairwise_restored_mean: f64,
    /// Mean power stretch (weight `d²`) of the final graph versus the
    /// reach graph, over sampled sources.
    pub power_stretch_mean: f64,
    /// Maximum observed power stretch.
    pub power_stretch_max: f64,
}

/// Sampled power stretch of `topo` versus `base` over a few spread
/// sources; `(mean, max, reachable-pair count)`.
fn sampled_power_stretch(
    topo: &UndirectedGraph,
    base: &UndirectedGraph,
    layout: &Layout,
) -> (f64, f64, u64) {
    const SOURCES: usize = 4;
    let n = layout.len();
    if n < 2 {
        return (1.0, 1.0, 0);
    }
    let picked: Vec<NodeId> = (0..SOURCES.min(n))
        .map(|i| NodeId::new((i * n / SOURCES.min(n).max(1)) as u32))
        .collect();
    let mut pairs = 0u64;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for &s in &picked {
        let d_topo = dijkstra(topo, s, power_weight(layout, 2.0));
        let d_base = dijkstra(base, s, power_weight(layout, 2.0));
        for v in layout.node_ids() {
            if v == s {
                continue;
            }
            if let (Some(a), Some(b)) = (d_topo[v.index()], d_base[v.index()]) {
                if b > 0.0 {
                    pairs += 1;
                    let ratio = a / b;
                    sum += ratio;
                    max = max.max(ratio);
                }
            }
        }
    }
    if pairs == 0 {
        (1.0, 1.0, 0)
    } else {
        (sum / pairs as f64, max, pairs)
    }
}

/// Runs the centralized phy construction over the scenario's random
/// networks with per-direction shadowing of `sigma_db`, and measures the
/// §3.2 guarantee off the unit disk.
///
/// The shadowing field is frozen per trial at `base_seed ^ trial seed`;
/// `config` is the CBTC configuration under test (asymmetric removal
/// requires `α ≤ 2π/3`).
pub fn phy_construction_probe(
    scenario: &Scenario,
    sigma_db: f64,
    config: &CbtcConfig,
    base_seed: u64,
) -> PhyConstructionStats {
    let generator = RandomPlacement::from_scenario(scenario);
    let mut base_connected = 0u32;
    let mut preserved = 0u32;
    let mut asym_sum = 0.0;
    let mut degree_sum = 0.0;
    let mut restored_sum = 0.0;
    let mut stretch_sum = 0.0;
    let mut stretch_pairs = 0u64;
    let mut stretch_max = 0.0f64;
    for seed in scenario.seeds(base_seed) {
        let network = generator.generate(seed);
        let profile = PhyProfile::shadowed(sigma_db, base_seed ^ seed);
        let shadowing = profile.shadowing();
        let channel = PhyChannel::new(network.model(), &shadowing);
        let run = run_phy_centralized(&network, &channel, config);
        // One reach scan per trial: the symmetric graph is derived from
        // the digraph rather than rebuilt.
        let digraph = phy_reach_digraph(&network, &channel);
        let reach = digraph.symmetric_core();
        let directed = digraph.edge_count();
        if directed > 0 {
            let symmetric = 2 * reach.edge_count();
            asym_sum += (directed - symmetric) as f64 / directed as f64;
        }
        if cbtc_graph::traversal::is_connected(&reach) {
            base_connected += 1;
        }
        if same_partition(run.final_graph(), &reach) {
            preserved += 1;
        }
        degree_sum += average_degree(run.final_graph());
        restored_sum += run.pairwise_restored().len() as f64;
        let (mean, max, pairs) = sampled_power_stretch(run.final_graph(), &reach, network.layout());
        stretch_sum += mean * pairs as f64;
        stretch_pairs += pairs;
        stretch_max = stretch_max.max(max);
    }
    let trials = scenario.trials;
    PhyConstructionStats {
        sigma_db,
        nodes: scenario.node_count,
        trials,
        base_connected,
        preserved,
        preserved_fraction: f64::from(preserved) / f64::from(trials.max(1)),
        asymmetric_link_fraction: asym_sum / f64::from(trials.max(1)),
        mean_degree: degree_sum / f64::from(trials.max(1)),
        pairwise_restored_mean: restored_sum / f64::from(trials.max(1)),
        power_stretch_mean: if stretch_pairs > 0 {
            stretch_sum / stretch_pairs as f64
        } else {
            1.0
        },
        power_stretch_max: if stretch_pairs > 0 { stretch_max } else { 1.0 },
    }
}

/// Distributed growing-phase overhead at one sweep point: the same
/// layout run over the ideal radio and over a stochastic profile, with
/// and without per-node start jitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhyProtocolStats {
    /// Nodes in the network.
    pub nodes: usize,
    /// The run's seed.
    pub seed: u64,
    /// Hello/Ack broadcasts per node over the ideal radio.
    pub ideal_broadcasts_per_node: f64,
    /// Hello/Ack broadcasts per node over the stochastic channel.
    pub phy_broadcasts_per_node: f64,
    /// `phy / ideal` — the Hello retry overhead of the non-ideal channel.
    pub hello_overhead: f64,
    /// Fraction of phy deliveries killed by PRR/SINR draws.
    pub phy_lost_fraction: f64,
    /// Raw count of deliveries killed by PRR/SINR draws (the numerator
    /// of [`PhyProtocolStats::phy_lost_fraction`]).
    pub phy_lost: u64,
    /// CSMA backoffs per node.
    pub csma_deferrals_per_node: f64,
    /// Raw count of CSMA carrier-sense backoffs.
    pub csma_deferrals: u64,
    /// Transmissions forced out after exhausting carrier-sense attempts.
    pub csma_forced: u64,
    /// Whether the phy run's symmetric closure partitions the node set
    /// the same way the reach graph does (fading can close links beyond
    /// the frozen-shadowing reach, so this is partition agreement, not a
    /// subgraph check).
    pub connectivity_preserved: bool,
    /// Link margin (dB) applied to every Hello broadcast level
    /// ([`PowerSchedule::with_margin_db`]): each round reaches its
    /// nominal neighbors plus a reliability cushion. `0` is the paper's
    /// exact schedule, bit for bit.
    pub hello_margin_db: f64,
    /// The per-node random start jitter (ticks) of the desynchronized
    /// run below; `0` means the jittered columns replay the synchronized
    /// run.
    pub jitter_ticks: u64,
    /// Hello/Ack broadcasts per node with jittered starts.
    pub jitter_broadcasts_per_node: f64,
    /// Fraction of deliveries killed by PRR/SINR draws with jittered
    /// starts — synchronized first rounds are the SINR worst case, so
    /// the gap to `phy_lost_fraction` is the collision loss jitter
    /// removes.
    pub jitter_phy_lost_fraction: f64,
    /// CSMA backoffs per node with jittered starts.
    pub jitter_csma_deferrals_per_node: f64,
    /// The pricing basis the Hello/Ack exchange ran under
    /// ([`PowerBasis::label`]): `"geometric"` replies with the reverse
    /// estimate, `"measured"` carries the forward §2 measurement in a
    /// max-power `MeasuredAck`.
    pub pricing: String,
}

/// Runs the distributed CBTC growing phase (Figure 1 over the simulator)
/// on one random layout — ideal vs. `profile` with slot-aligned starts,
/// plus a third run with per-node start jitter of `jitter` ticks — and
/// reports the overhead the stochastic channel induces and how much of
/// it desynchronization removes. A `jitter` of 0 skips the third
/// simulation and copies the synchronized columns. `hello_margin_db`
/// boosts every Hello broadcast level
/// ([`PowerSchedule::with_margin_db`]); `0.0` is the paper's exact
/// schedule. `basis` selects how discovered links are priced:
/// [`PowerBasis::Measured`] makes repliers carry the forward §2
/// measurement in a max-power `MeasuredAck` instead of echoing a
/// reverse-channel estimate (bit-identical on the ideal radio).
///
/// # Panics
///
/// Panics if a run fails to quiesce within the event budget, or if the
/// margin is negative or non-finite.
pub fn phy_protocol_probe(
    nodes: usize,
    scenario: &Scenario,
    profile: &PhyProfile,
    jitter: u64,
    hello_margin_db: f64,
    basis: PowerBasis,
    seed: u64,
) -> PhyProtocolStats {
    let model = PowerLaw::paper_default();
    let layout = RandomPlacement::new(nodes, scenario.width, scenario.height, model.max_range())
        .generate_layout(seed);
    // The Ack window must cover CSMA backoff delays on top of the round
    // trip; otherwise the phy run times out rounds the channel merely
    // deferred.
    let ack_timeout = 3 + profile.csma.map(|c| 2 * c.max_backoff).unwrap_or(0);
    let growth = GrowthConfig {
        alpha: cbtc_geom::Alpha::TWO_PI_THIRDS,
        schedule: PowerSchedule::doubling(Power::new(100.0), model.max_power())
            .with_margin_db(hello_margin_db)
            .with_basis(basis),
        ack_timeout,
        model,
    };
    let run = |phy: Option<&PhyProfile>, jitter: u64| -> (Engine<CbtcNode, PowerLaw>, f64) {
        let protocol_nodes = (0..nodes).map(|_| CbtcNode::new(growth, false)).collect();
        let mut engine = Engine::new(
            layout.clone(),
            model,
            protocol_nodes,
            FaultConfig::reliable_synchronous()
                .with_seed(seed)
                .with_start_jitter(jitter),
        );
        if let Some(p) = phy {
            engine.set_phy(*p);
        }
        let result = engine.run_to_quiescence(200_000_000);
        assert!(
            matches!(result, QuiescenceResult::Quiescent(_)),
            "growing phase failed to quiesce"
        );
        let per_node = engine.stats().broadcasts as f64 / nodes.max(1) as f64;
        (engine, per_node)
    };
    let (_, ideal_per_node) = run(None, 0);
    let (phy_engine, phy_per_node) = run(Some(profile), 0);
    let lost_fraction = |stats: &cbtc_sim::TraceStats| {
        stats.phy_lost as f64 / (stats.deliveries + stats.phy_lost).max(1) as f64
    };
    let (jitter_per_node, jitter_lost, jitter_deferrals) = if jitter > 0 {
        let (jitter_engine, per_node) = run(Some(profile), jitter);
        let stats = jitter_engine.stats();
        (
            per_node,
            lost_fraction(stats),
            stats.csma_deferrals as f64 / nodes.max(1) as f64,
        )
    } else {
        let stats = phy_engine.stats();
        (
            phy_per_node,
            lost_fraction(stats),
            stats.csma_deferrals as f64 / nodes.max(1) as f64,
        )
    };

    let stats = phy_engine.stats();
    let shadowing = profile.shadowing();
    let network = Network::new(layout, model);
    let channel = PhyChannel::new(network.model(), &shadowing).with_sensor(profile.sensor());
    let reach = phy_reach_graph(&network, &channel);
    let closure = collect_outcome(&phy_engine).symmetric_closure();
    PhyProtocolStats {
        nodes,
        seed,
        ideal_broadcasts_per_node: ideal_per_node,
        phy_broadcasts_per_node: phy_per_node,
        hello_overhead: phy_per_node / ideal_per_node.max(f64::MIN_POSITIVE),
        phy_lost_fraction: lost_fraction(stats),
        phy_lost: stats.phy_lost,
        csma_deferrals_per_node: stats.csma_deferrals as f64 / nodes.max(1) as f64,
        csma_deferrals: stats.csma_deferrals,
        csma_forced: stats.csma_forced,
        connectivity_preserved: same_partition(&closure, &reach),
        hello_margin_db,
        jitter_ticks: jitter,
        jitter_broadcasts_per_node: jitter_per_node,
        jitter_phy_lost_fraction: jitter_lost,
        jitter_csma_deferrals_per_node: jitter_deferrals,
        pricing: basis.label().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_geom::Alpha;

    fn small_scenario(nodes: usize, trials: u32) -> Scenario {
        Scenario {
            name: "phy-test".to_owned(),
            node_count: nodes,
            width: 1000.0,
            height: 1000.0,
            max_range: 500.0,
            trials,
        }
    }

    #[test]
    fn sigma_zero_probe_always_preserves() {
        let scenario = small_scenario(30, 4);
        let stats = phy_construction_probe(
            &scenario,
            0.0,
            &CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS),
            5,
        );
        assert_eq!(stats.preserved, stats.trials, "ideal channel is the paper");
        assert_eq!(stats.asymmetric_link_fraction, 0.0);
        assert_eq!(stats.pairwise_restored_mean, 0.0);
        assert!(stats.power_stretch_mean >= 1.0 - 1e-12);
    }

    #[test]
    fn heavy_shadowing_creates_asymmetry() {
        let scenario = small_scenario(30, 4);
        let stats = phy_construction_probe(
            &scenario,
            8.0,
            &CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS),
            5,
        );
        assert!(
            stats.asymmetric_link_fraction > 0.05,
            "8 dB independent shadowing must desymmetrize links, got {}",
            stats.asymmetric_link_fraction
        );
        // The guard keeps the final graph a connectivity-preserver of
        // whatever pre-pairwise graph existed, but against the reach
        // graph preservation may genuinely fail — both outcomes are
        // valid; the probe just has to report coherently.
        assert!(stats.preserved <= stats.trials);
        assert!(stats.power_stretch_mean >= 1.0 - 1e-12);
    }

    #[test]
    fn protocol_probe_reports_overhead() {
        let scenario = small_scenario(25, 1);
        let stats = phy_protocol_probe(
            25,
            &scenario,
            &PhyProfile::realistic(6.0, 2),
            16,
            0.0,
            PowerBasis::Geometric,
            3,
        );
        assert!(stats.ideal_broadcasts_per_node > 0.0);
        assert!(
            stats.hello_overhead >= 1.0,
            "stochastic channel cannot reduce Hello traffic, got {}",
            stats.hello_overhead
        );
        assert!(stats.phy_lost_fraction >= 0.0 && stats.phy_lost_fraction < 1.0);
        assert_eq!(stats.jitter_ticks, 16);
        assert!(stats.jitter_phy_lost_fraction >= 0.0 && stats.jitter_phy_lost_fraction < 1.0);
    }

    #[test]
    fn start_jitter_removes_collision_loss_and_backoff() {
        // Synchronized first rounds are the SINR worst case: scattering
        // starts must cut both the collision loss and the carrier-sense
        // deferrals on the full stochastic stack.
        let scenario = small_scenario(30, 1);
        let stats = phy_protocol_probe(
            30,
            &scenario,
            &PhyProfile::realistic(4.0, 5),
            16,
            0.0,
            PowerBasis::Geometric,
            5,
        );
        assert!(
            stats.jitter_phy_lost_fraction < stats.phy_lost_fraction,
            "jitter must remove collision loss: {} vs {}",
            stats.jitter_phy_lost_fraction,
            stats.phy_lost_fraction
        );
        assert!(
            stats.jitter_csma_deferrals_per_node < stats.csma_deferrals_per_node,
            "jitter must remove backoff burden: {} vs {}",
            stats.jitter_csma_deferrals_per_node,
            stats.csma_deferrals_per_node
        );
    }

    #[test]
    fn zero_jitter_copies_the_synchronized_columns() {
        let scenario = small_scenario(20, 1);
        let stats = phy_protocol_probe(
            20,
            &scenario,
            &PhyProfile::realistic(4.0, 2),
            0,
            0.0,
            PowerBasis::Geometric,
            3,
        );
        assert_eq!(stats.jitter_ticks, 0);
        assert_eq!(
            stats.jitter_broadcasts_per_node,
            stats.phy_broadcasts_per_node
        );
        assert_eq!(stats.jitter_phy_lost_fraction, stats.phy_lost_fraction);
        assert_eq!(
            stats.jitter_csma_deferrals_per_node,
            stats.csma_deferrals_per_node
        );
    }

    #[test]
    fn protocol_probe_with_ideal_profile_is_overhead_free() {
        let scenario = small_scenario(20, 1);
        let stats = phy_protocol_probe(
            20,
            &scenario,
            &PhyProfile::ideal(),
            16,
            0.0,
            PowerBasis::Geometric,
            7,
        );
        assert_eq!(stats.hello_overhead, 1.0);
        assert_eq!(stats.phy_lost_fraction, 0.0);
        assert_eq!(stats.jitter_phy_lost_fraction, 0.0);
        assert_eq!(stats.csma_forced, 0);
        assert!(stats.connectivity_preserved);
    }

    #[test]
    fn measured_basis_probe_is_overhead_free_on_ideal() {
        // The MeasuredAck path on the ideal radio carries exactly the
        // estimate the geometric path re-derives, so the probe stays
        // overhead-free and connectivity-preserving.
        let scenario = small_scenario(20, 1);
        let stats = phy_protocol_probe(
            20,
            &scenario,
            &PhyProfile::ideal(),
            0,
            0.0,
            PowerBasis::Measured,
            7,
        );
        assert_eq!(stats.hello_overhead, 1.0);
        assert_eq!(stats.phy_lost_fraction, 0.0);
        assert_eq!(stats.pricing, "measured");
        assert!(stats.connectivity_preserved);
    }

    #[test]
    fn probes_are_deterministic() {
        let scenario = small_scenario(25, 2);
        let config = CbtcConfig::all_applicable(Alpha::TWO_PI_THIRDS);
        assert_eq!(
            phy_construction_probe(&scenario, 6.0, &config, 9),
            phy_construction_probe(&scenario, 6.0, &config, 9)
        );
        let p = PhyProfile::realistic(4.0, 11);
        assert_eq!(
            phy_protocol_probe(20, &scenario, &p, 16, 0.0, PowerBasis::Geometric, 1),
            phy_protocol_probe(20, &scenario, &p, 16, 0.0, PowerBasis::Geometric, 1)
        );
    }
}
