//! The event-granular reconfiguration service: a sustained churn stream
//! through one [`DeltaTopology`], measured like a production system.
//!
//! ROADMAP item 3's serving story. The churn suite batches events per
//! burst; this driver feeds the engine **one event at a time** — the §4
//! model's actual arrival process — and reports throughput (events/s)
//! and per-event wall-clock latency percentiles (p50/p99/max, by event
//! kind) from the same log-bucketed histograms (`cbtc-metrics`) the
//! rest of the stack uses. At the end the maintained graph is judged
//! bit-for-bit against a from-scratch `CBTC(α)` construction over the
//! final membership and positions, so a throughput number can never be
//! bought with drift.
//!
//! The stream is deterministic in the seed: a weighted mix of `Move`
//! (bounded random displacement of an active node), `Death` (random
//! active node, floored so the population never collapses), and `Join`
//! (random standby slot re-entering at a fresh position). Deaths feed
//! the standby pool and joins drain it, so membership hovers around its
//! starting point for the whole run — every event hits a live,
//! realistic topology.

use std::time::Instant;

use cbtc_core::reconfig::{DeltaTopology, GeometricMetric, NodeEvent};
use cbtc_core::{run_centralized_masked, CbtcConfig, Network};
use cbtc_geom::{Alpha, Point2};
use cbtc_graph::NodeId;
use cbtc_metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot};
use cbtc_radio::{PathLoss, PowerLaw};
use cbtc_trace::{TraceEvent, TraceHandle, TRACE_VERSION};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::RandomPlacement;

/// Parameters of a reconfiguration-service run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Node slots (active population plus the standby join pool).
    pub nodes: usize,
    /// Events to stream, one `apply` per event.
    pub events: u64,
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// The cone angle α of the maintained topology.
    pub alpha: Alpha,
    /// `Death` events per 1000 (the rest after deaths + joins are
    /// `Move`s). Deaths are skipped (demoted to `Move`) when the active
    /// population has fallen to half the slots.
    pub death_per_mille: u32,
    /// `Join` events per 1000. Joins are demoted to `Move` when the
    /// standby pool is empty.
    pub join_per_mille: u32,
    /// Maximum per-axis displacement of one `Move` event.
    pub max_step: f64,
    /// Fraction of slots that start in the standby pool (inactive,
    /// available to `Join`).
    pub standby_fraction: f64,
}

impl ServiceConfig {
    /// A run sized for `nodes` slots and `events` events: the field is
    /// scaled so the max-power graph keeps an average degree of ≈ 18
    /// under the paper's radio (`R = 500`) — the same density the churn
    /// suite uses — with a 5 % standby pool and a 90/5/5 move/death/join
    /// mix.
    pub fn sized(nodes: usize, events: u64) -> Self {
        let range = PowerLaw::paper_default().max_range();
        let side = (nodes as f64 * std::f64::consts::PI * range * range / 18.0).sqrt();
        ServiceConfig {
            nodes,
            events,
            width: side,
            height: side,
            alpha: Alpha::FIVE_PI_SIXTHS,
            death_per_mille: 50,
            join_per_mille: 50,
            max_step: 50.0,
            standby_fraction: 0.05,
        }
    }
}

/// The outcome of a service run: throughput, per-kind latency
/// percentiles, final-state integrity, and the full metrics snapshot.
/// This is the `BENCH_reconfig.json` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Schema version of this report.
    pub schema_version: u32,
    /// Node slots in the run.
    pub nodes: u32,
    /// Events streamed.
    pub events: u64,
    /// Wall-clock seconds spent in the event loop.
    pub elapsed_secs: f64,
    /// Sustained single-stream throughput.
    pub events_per_sec: f64,
    /// `Move` events applied.
    pub moves: u64,
    /// `Join` events applied.
    pub joins: u64,
    /// `Death` events applied.
    pub deaths: u64,
    /// Per-event latency histograms: one per event kind (named `move`,
    /// `join`, `death`) plus the combined `all` series, each with exact
    /// count/min/max and p50/p99/p999 plus the full nonzero buckets.
    pub latency: Vec<HistogramSnapshot>,
    /// Active nodes at the end of the stream.
    pub final_active: u32,
    /// Edges of the final maintained topology.
    pub final_edges: u64,
    /// Whether the final maintained graph is bit-identical to a
    /// from-scratch construction over the final membership/positions.
    pub matches_scratch: bool,
    /// The installed registry's final snapshot (empty when the service
    /// ran without metrics).
    pub metrics: MetricsSnapshot,
}

impl ServiceReport {
    /// The named latency series, if present.
    pub fn latency_for(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.latency.iter().find(|h| h.name == name)
    }
}

/// Runs the service stream without external observability installed
/// (the report's own latency series are always measured).
pub fn run_service(config: &ServiceConfig, seed: u64) -> ServiceReport {
    run_service_observed(config, seed, &MetricsRegistry::disabled(), None)
}

/// [`run_service`] with observability: the engine's `reconfig.*` series
/// land in `registry` (and in the report's `metrics` snapshot), and —
/// when a trace is supplied — the run streams a `Meta` header, the
/// engine's per-batch `Reconfig` samples, and (metrics enabled) the
/// final [`TraceEvent::Metrics`] record.
///
/// The hooks only observe: the maintained graph, the event stream, and
/// every report field except the wall-clock timings are bit-identical
/// whether or not a registry or trace is installed.
///
/// # Panics
///
/// Panics on a config with no nodes, no events, non-positive field
/// dimensions, or an event mix exceeding 1000 per mille.
pub fn run_service_observed(
    config: &ServiceConfig,
    seed: u64,
    registry: &MetricsRegistry,
    trace: Option<&TraceHandle>,
) -> ServiceReport {
    assert!(config.nodes >= 2, "need at least two node slots");
    assert!(config.events > 0, "need at least one event");
    assert!(
        config.width > 0.0 && config.height > 0.0,
        "field dimensions must be positive"
    );
    assert!(
        config.death_per_mille + config.join_per_mille <= 1000,
        "event mix exceeds 1000 per mille"
    );
    assert!(
        (0.0..1.0).contains(&config.standby_fraction),
        "standby fraction must be in [0, 1)"
    );

    let model = PowerLaw::paper_default();
    let cbtc = CbtcConfig::new(config.alpha);
    let layout = RandomPlacement::new(config.nodes, config.width, config.height, model.max_range())
        .generate_layout(seed);
    // The standby pool is the tail of the slot space; joins re-enter at
    // fresh positions, so which slots start inactive is immaterial.
    let standby = ((config.nodes as f64 * config.standby_fraction) as usize).min(config.nodes - 2);
    let first_standby = config.nodes - standby;
    let active: Vec<bool> = (0..config.nodes).map(|i| i < first_standby).collect();
    let mut topo = DeltaTopology::new(
        layout,
        active,
        model.max_range(),
        cbtc,
        false,
        GeometricMetric,
    );
    topo.set_metrics(registry);
    if let Some(trace) = trace {
        trace.record(TraceEvent::Meta {
            version: TRACE_VERSION,
            run: format!("serve/{}-nodes", config.nodes),
            nodes: config.nodes as u32,
            seed,
            alpha: config.alpha.radians(),
            width: config.width,
            height: config.height,
            pricing: "geometric".to_owned(),
        });
        topo.set_trace(trace.clone());
    }

    let mut active_ids: Vec<NodeId> = (0..first_standby as u32).map(NodeId::new).collect();
    let mut standby_ids: Vec<NodeId> = (first_standby as u32..config.nodes as u32)
        .map(NodeId::new)
        .collect();
    let min_active = config.nodes / 2;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E7C_E0D5);

    let mut hist_move = LogHistogram::new();
    let mut hist_join = LogHistogram::new();
    let mut hist_death = LogHistogram::new();
    let mut hist_all = LogHistogram::new();
    let (mut moves, mut joins, mut deaths) = (0u64, 0u64, 0u64);

    let loop_start = Instant::now();
    for i in 0..config.events {
        let roll: u32 = rng.gen_range(0..1000);
        let death_cut = config.death_per_mille;
        let join_cut = death_cut + config.join_per_mille;
        let (event, hist) = if roll < death_cut && active_ids.len() > min_active {
            let victim = active_ids.swap_remove(rng.gen_range(0..active_ids.len()));
            standby_ids.push(victim);
            deaths += 1;
            (NodeEvent::Death(victim), &mut hist_death)
        } else if roll < join_cut && !standby_ids.is_empty() {
            let joiner = standby_ids.swap_remove(rng.gen_range(0..standby_ids.len()));
            active_ids.push(joiner);
            joins += 1;
            let p = Point2::new(
                rng.gen_range(0.0..config.width),
                rng.gen_range(0.0..config.height),
            );
            (NodeEvent::Join(joiner, p), &mut hist_join)
        } else {
            let mover = active_ids[rng.gen_range(0..active_ids.len())];
            let p = topo.layout().position(mover);
            let p = Point2::new(
                (p.x + rng.gen_range(-config.max_step..config.max_step)).clamp(0.0, config.width),
                (p.y + rng.gen_range(-config.max_step..config.max_step)).clamp(0.0, config.height),
            );
            moves += 1;
            (NodeEvent::Move(mover, p), &mut hist_move)
        };
        if trace.is_some() {
            topo.set_trace_clock(i as f64);
        }
        let t0 = Instant::now();
        topo.apply(std::slice::from_ref(&event));
        let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        hist.record(nanos);
        hist_all.record(nanos);
    }
    let elapsed_secs = loop_start.elapsed().as_secs_f64();

    let network = Network::new(topo.layout().clone(), model);
    let scratch = run_centralized_masked(&network, &cbtc, topo.active()).into_final_graph();
    let matches_scratch = *topo.graph() == scratch;

    let snapshot = registry.snapshot();
    if let (Some(trace), true) = (trace, registry.is_enabled()) {
        trace.record(TraceEvent::Metrics {
            time: config.events as f64,
            snapshot: snapshot.clone(),
        });
    }

    ServiceReport {
        schema_version: 1,
        nodes: config.nodes as u32,
        events: config.events,
        elapsed_secs,
        events_per_sec: config.events as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        moves,
        joins,
        deaths,
        latency: vec![
            HistogramSnapshot::of("move", &hist_move),
            HistogramSnapshot::of("join", &hist_join),
            HistogramSnapshot::of("death", &hist_death),
            HistogramSnapshot::of("all", &hist_all),
        ],
        final_active: active_ids.len() as u32,
        final_edges: topo.graph().edge_count() as u64,
        matches_scratch,
        metrics: snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_trace::MemorySink;

    fn small() -> ServiceConfig {
        ServiceConfig {
            events: 400,
            ..ServiceConfig::sized(60, 400)
        }
    }

    /// Strips the wall-clock fields, leaving only the deterministic
    /// part of a report.
    fn deterministic(report: &ServiceReport) -> ServiceReport {
        let mut r = report.clone();
        r.elapsed_secs = 0.0;
        r.events_per_sec = 0.0;
        r.latency.clear();
        r
    }

    #[test]
    fn stream_mixes_kinds_and_matches_scratch() {
        let report = run_service(&small(), 9);
        assert_eq!(report.moves + report.joins + report.deaths, 400);
        assert!(report.moves > 0 && report.joins > 0 && report.deaths > 0);
        assert!(report.matches_scratch, "maintained graph drifted");
        assert_eq!(report.latency_for("all").unwrap().count, 400);
        let h = report.latency_for("move").unwrap();
        assert_eq!(h.count, report.moves);
        assert!(h.p50 <= h.p99 && h.p99 <= h.max, "percentiles not monotone");
        assert!(h.max > 0, "moves must cost nonzero time");
        // Membership conservation: every slot is active or standby.
        assert!(report.final_active >= (small().nodes / 2) as u32);
    }

    #[test]
    fn observed_run_is_deterministically_identical_and_counts_events() {
        let plain = run_service(&small(), 4);

        let registry = MetricsRegistry::enabled();
        let (handle, sink) = TraceHandle::in_memory();
        let report = run_service_observed(&small(), 4, &registry, Some(&handle));
        assert_eq!(deterministic(&report), {
            let mut p = deterministic(&plain);
            p.metrics = report.metrics.clone();
            p
        });

        // The engine counted exactly the stream's events.
        assert_eq!(
            report.metrics.counter("reconfig.events.move"),
            Some(report.moves)
        );
        assert_eq!(
            report.metrics.counter("reconfig.events.join"),
            Some(report.joins)
        );
        assert_eq!(
            report.metrics.counter("reconfig.events.death"),
            Some(report.deaths)
        );
        assert_eq!(report.metrics.counter("reconfig.batches"), Some(400));

        // The trace ends with the Metrics record carrying that snapshot.
        let jsonl = MemorySink::to_jsonl(&sink.lock().unwrap());
        let events = cbtc_trace::parse_trace(&jsonl).unwrap();
        match events.last() {
            Some(TraceEvent::Metrics { snapshot, .. }) => {
                assert_eq!(snapshot, &report.metrics);
            }
            other => panic!("expected final Metrics record, got {other:?}"),
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = run_service(&small(), 2);
        let json = serde_json::to_string(&report).unwrap();
        let back: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
