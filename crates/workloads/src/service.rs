//! The reconfiguration service: sustained churn streams through
//! [`DeltaTopology`] engines, measured like a production system.
//!
//! ROADMAP item 3's serving story, grown into a sharded, batched
//! pipeline:
//!
//! * **Group-commit admission** — arriving events are coalesced into
//!   mixed batches of up to `batch_max` under the `batch_wait_us`
//!   admission window, committed through `apply`'s mixed-batch path
//!   instead of one call per event. A batch is cut early when the next
//!   event concerns a node already in it (the engine requires one event
//!   per node per batch); the conflicting event opens the next batch.
//!   Every event in a batch observes the batch's commit latency — the
//!   group-commit trade: amortized throughput for a bounded latency
//!   spread. With `batch_wait_us = 0` the window is closed and the
//!   service degrades to the event-at-a-time driver of schema v1.
//! * **Sharded multi-stream serving** — `streams > 1` runs that many
//!   independent engines over spatially partitioned sub-fields (equal
//!   vertical strips, equal density), each with its own deterministic
//!   generator and metrics shard. The event router is round-robin by
//!   arrival index, so stream `s`'s substream is exactly the standalone
//!   run of [`stream_plan`]`(config, seed, s)` — what the equivalence
//!   property suite asserts. Shard histograms and registries merge
//!   exactly ([`MetricsSnapshot::merge`]) into one aggregate report.
//!
//! Every stream's final maintained graph is judged bit-for-bit against
//! a from-scratch `CBTC(α)` construction over its final membership and
//! positions, so a throughput number can never be bought with drift.
//!
//! ## Paper map (group commit vs §4)
//!
//! | §4 notion | here |
//! |-----------|------|
//! | reconfiguration ops arrive one at a time | the admission window batches them; Theorem 4.1's "equals a full re-run" holds per *batch*, so the commit point sees the same graph as op-at-a-time application |
//! | ops at distinct nodes commute | the batch cut on node conflict is exactly the non-commuting case: two ops at one node must order through separate batches |
//!
//! The stream mix is deterministic in the seed: weighted `Move`
//! (bounded random displacement), `Death` (random active node, floored
//! so the population never collapses), and `Join` (random standby slot
//! re-entering at a fresh position). Deaths feed the standby pool and
//! joins drain it, so membership hovers around its starting point. The
//! generator tracks positions itself, so the *event sequence* is a
//! function of the seed alone — identical across batch sizes, stream
//! counts and thread schedules.

use std::time::Instant;

use cbtc_core::parallel::{detected_cores, effective_parallelism, without_nested_fan_out};
use cbtc_core::reconfig::{DeltaTopology, GeometricMetric, NodeEvent};
use cbtc_core::{run_centralized_masked, CbtcConfig, Network};
use cbtc_geom::{Alpha, Point2};
use cbtc_graph::NodeId;
use cbtc_metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot};
use cbtc_radio::{PathLoss, PowerLaw};
use cbtc_trace::{TraceEvent, TraceHandle, TRACE_VERSION};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::RandomPlacement;

/// Parameters of a reconfiguration-service run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Node slots (active population plus the standby join pool),
    /// summed across streams.
    pub nodes: usize,
    /// Events to stream, summed across streams.
    pub events: u64,
    /// Field width (split into `streams` equal strips).
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// The cone angle α of the maintained topology.
    pub alpha: Alpha,
    /// `Death` events per 1000 (the rest after deaths + joins are
    /// `Move`s). Deaths are skipped (demoted to `Move`) when the active
    /// population has fallen to half the slots.
    pub death_per_mille: u32,
    /// `Join` events per 1000. Joins are demoted to `Move` when the
    /// standby pool is empty.
    pub join_per_mille: u32,
    /// Maximum per-axis displacement of one `Move` event.
    pub max_step: f64,
    /// Fraction of slots that start in the standby pool (inactive,
    /// available to `Join`).
    pub standby_fraction: f64,
    /// Most events one group commit may coalesce (≥ 1). Only consulted
    /// when the admission window is open (`batch_wait_us > 0`).
    pub batch_max: u32,
    /// Group-commit admission window in microseconds. `0` closes the
    /// window: every event commits alone, the schema-v1 behavior. In
    /// this closed-loop harness the arrival queue is always backlogged,
    /// so any open window fills each batch to `batch_max` (or to the
    /// first node conflict) — the window's *length* models the latency
    /// budget an online deployment would trade and is carried into the
    /// report verbatim.
    pub batch_wait_us: u64,
    /// Independent sharded engines ( ≥ 1). See [`stream_plan`] for how
    /// slots, field and events partition.
    pub streams: u32,
    /// When nonzero and a trace + metrics are installed: each stream
    /// snapshots its metrics shard every this-many *local* events, and
    /// the run emits the snapshots as periodic [`TraceEvent::Metrics`]
    /// records — the live percentile timeline `cbtc analyze` renders.
    pub metrics_every: u64,
}

impl ServiceConfig {
    /// A run sized for `nodes` slots and `events` events: the field is
    /// scaled so the max-power graph keeps an average degree of ≈ 18
    /// under the paper's radio (`R = 500`) — the same density the churn
    /// suite uses — with a 5 % standby pool and a 90/5/5 move/death/join
    /// mix. Batching and sharding default off (`batch_wait_us = 0`,
    /// one stream), reproducing the schema-v1 single-stream run.
    pub fn sized(nodes: usize, events: u64) -> Self {
        let range = PowerLaw::paper_default().max_range();
        let side = (nodes as f64 * std::f64::consts::PI * range * range / 18.0).sqrt();
        ServiceConfig {
            nodes,
            events,
            width: side,
            height: side,
            alpha: Alpha::FIVE_PI_SIXTHS,
            death_per_mille: 50,
            join_per_mille: 50,
            max_step: 50.0,
            standby_fraction: 0.05,
            batch_max: 1,
            batch_wait_us: 0,
            streams: 1,
            metrics_every: 0,
        }
    }
}

/// The slice of a sharded run one stream serves: a [`ServiceConfig`]
/// with `streams = 1` over the stream's own sub-field, plus the
/// stream's seed.
///
/// The partition is deterministic and exact:
///
/// * **slots**: `nodes / streams`, remainder to the lowest streams;
/// * **field**: a `width / streams` vertical strip of full height —
///   every strip keeps the global node density;
/// * **events**: round-robin by arrival index, so `events / streams`
///   with the remainder to the lowest streams;
/// * **seed**: `seed ^ (stream · golden-ratio-odd)`, so substreams are
///   decorrelated while stream 0 of a one-stream plan keeps the
///   original seed (the sharded server with `streams = 1` *is* the
///   single-stream server).
///
/// Running [`run_service`] on the returned plan reproduces stream
/// `stream` of the sharded run bit for bit — the equivalence the
/// property suite pins.
///
/// # Panics
///
/// Panics if `stream` is out of range.
pub fn stream_plan(config: &ServiceConfig, seed: u64, stream: u32) -> (ServiceConfig, u64) {
    let streams = config.streams.max(1);
    assert!(stream < streams, "stream {stream} out of {streams}");
    let (s, n) = (streams as usize, stream as usize);
    let nodes = config.nodes / s + usize::from(n < config.nodes % s);
    let events = config.events / u64::from(streams)
        + u64::from(u64::from(stream) < config.events % u64::from(streams));
    let plan = ServiceConfig {
        nodes,
        events,
        width: config.width / streams as f64,
        streams: 1,
        ..*config
    };
    (
        plan,
        seed ^ u64::from(stream).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// One stream's share of a [`ServiceReport`]: its own throughput,
/// per-kind latency and integrity verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Stream index.
    pub stream: u32,
    /// Node slots this stream owns.
    pub nodes: u32,
    /// Events this stream served.
    pub events: u64,
    /// `Move` events applied.
    pub moves: u64,
    /// `Join` events applied.
    pub joins: u64,
    /// `Death` events applied.
    pub deaths: u64,
    /// Group commits executed.
    pub batches: u64,
    /// Wall-clock seconds in this stream's event loop.
    pub elapsed_secs: f64,
    /// This stream's sustained throughput.
    pub events_per_sec: f64,
    /// Latency histograms: per kind (`move`, `join`, `death`), the
    /// combined `all` series (all four charge each event its group
    /// commit's latency), the per-commit `batch` series, and the
    /// `batch_size` distribution (events per commit).
    pub latency: Vec<HistogramSnapshot>,
    /// Active nodes at the end of the stream.
    pub final_active: u32,
    /// Edges of this stream's final maintained topology.
    pub final_edges: u64,
    /// Whether this stream's final maintained graph is bit-identical to
    /// a from-scratch construction over its final membership/positions.
    pub matches_scratch: bool,
}

impl StreamReport {
    /// The named latency series, if present.
    pub fn latency_for(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.latency.iter().find(|h| h.name == name)
    }
}

/// The outcome of a service run: aggregate throughput, merged per-kind
/// latency percentiles, per-stream shares, final-state integrity, and
/// the merged metrics snapshot. This is the `BENCH_reconfig.json`
/// schema (v2; v1 was the single-stream, event-at-a-time report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Schema version of this report.
    pub schema_version: u32,
    /// Node slots across all streams.
    pub nodes: u32,
    /// Events streamed across all streams.
    pub events: u64,
    /// Streams served.
    pub streams: u32,
    /// The group-commit size cap the run was admitted under.
    pub batch_max: u32,
    /// The admission window (µs); `0` means event-at-a-time.
    pub batch_wait_us: u64,
    /// Hardware cores visible to the run.
    pub detected_cores: u32,
    /// Stream worker threads the run actually used (`1` when streams
    /// ran sequentially — single-core hosts, or one stream).
    pub stream_workers: u32,
    /// Wall-clock seconds from first admission to last commit (streams
    /// overlap, so this is the *aggregate* window, not a sum).
    pub elapsed_secs: f64,
    /// Sustained aggregate throughput.
    pub events_per_sec: f64,
    /// `Move` events applied, all streams.
    pub moves: u64,
    /// `Join` events applied, all streams.
    pub joins: u64,
    /// `Death` events applied, all streams.
    pub deaths: u64,
    /// Group commits executed, all streams.
    pub batches: u64,
    /// Merged latency histograms (exact shard merges): `move`, `join`,
    /// `death`, `all`, per-commit `batch`, and the `batch_size`
    /// distribution.
    pub latency: Vec<HistogramSnapshot>,
    /// Each stream's own report, ascending by stream index.
    pub per_stream: Vec<StreamReport>,
    /// Active nodes at the end, all streams.
    pub final_active: u32,
    /// Edges of the final maintained topologies, all streams.
    pub final_edges: u64,
    /// Whether **every** stream's final maintained graph is
    /// bit-identical to its from-scratch construction.
    pub matches_scratch: bool,
    /// The merged metrics snapshot: every stream's registry shard
    /// folded into the caller's registry snapshot (which carries the
    /// process-wide `par.*` fan-out series when installed). Empty when
    /// the service ran without metrics.
    pub metrics: MetricsSnapshot,
}

impl ServiceReport {
    /// The named merged latency series, if present.
    pub fn latency_for(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.latency.iter().find(|h| h.name == name)
    }
}

/// Runs the service without external observability installed (the
/// report's own latency series are always measured).
pub fn run_service(config: &ServiceConfig, seed: u64) -> ServiceReport {
    run_service_observed(config, seed, &MetricsRegistry::disabled(), None)
}

/// Event kinds, for latency routing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Move,
    Join,
    Death,
}

/// The deterministic event source of one stream. It owns the membership
/// bookkeeping *and* a shadow of every slot's position, so the sequence
/// it produces depends on the seed alone — never on when (or in what
/// batch) the engine applies the events. That independence is what
/// makes batched, sharded and threaded runs bit-identical to the
/// event-at-a-time baseline.
struct EventGen {
    rng: StdRng,
    active_ids: Vec<NodeId>,
    standby_ids: Vec<NodeId>,
    positions: Vec<Point2>,
    min_active: usize,
    death_cut: u32,
    join_cut: u32,
    width: f64,
    height: f64,
    max_step: f64,
}

impl EventGen {
    fn next(&mut self) -> (NodeEvent, Kind) {
        let roll: u32 = self.rng.gen_range(0..1000);
        if roll < self.death_cut && self.active_ids.len() > self.min_active {
            let victim = self
                .active_ids
                .swap_remove(self.rng.gen_range(0..self.active_ids.len()));
            self.standby_ids.push(victim);
            (NodeEvent::Death(victim), Kind::Death)
        } else if roll < self.join_cut && !self.standby_ids.is_empty() {
            let joiner = self
                .standby_ids
                .swap_remove(self.rng.gen_range(0..self.standby_ids.len()));
            self.active_ids.push(joiner);
            let p = Point2::new(
                self.rng.gen_range(0.0..self.width),
                self.rng.gen_range(0.0..self.height),
            );
            self.positions[joiner.index()] = p;
            (NodeEvent::Join(joiner, p), Kind::Join)
        } else {
            let mover = self.active_ids[self.rng.gen_range(0..self.active_ids.len())];
            let p = self.positions[mover.index()];
            let p = Point2::new(
                (p.x + self.rng.gen_range(-self.max_step..self.max_step)).clamp(0.0, self.width),
                (p.y + self.rng.gen_range(-self.max_step..self.max_step)).clamp(0.0, self.height),
            );
            self.positions[mover.index()] = p;
            (NodeEvent::Move(mover, p), Kind::Move)
        }
    }
}

/// What one stream hands back to the driver: live histograms (merged
/// exactly into the aggregate), counts, its integrity verdict, its
/// metrics shard and the periodic checkpoint snapshots.
struct StreamOutcome {
    moves: u64,
    joins: u64,
    deaths: u64,
    batches: u64,
    hist_move: LogHistogram,
    hist_join: LogHistogram,
    hist_death: LogHistogram,
    hist_all: LogHistogram,
    hist_batch: LogHistogram,
    hist_batch_size: LogHistogram,
    elapsed_secs: f64,
    events: u64,
    nodes: u32,
    final_active: u32,
    final_edges: u64,
    matches_scratch: bool,
    snapshot: MetricsSnapshot,
    /// `(local events done, shard snapshot)` at each `metrics_every`
    /// boundary.
    checkpoints: Vec<(u64, MetricsSnapshot)>,
}

impl StreamOutcome {
    fn into_report(self, stream: u32) -> StreamReport {
        StreamReport {
            stream,
            nodes: self.nodes,
            events: self.events,
            moves: self.moves,
            joins: self.joins,
            deaths: self.deaths,
            batches: self.batches,
            elapsed_secs: self.elapsed_secs,
            events_per_sec: self.events as f64 / self.elapsed_secs.max(f64::MIN_POSITIVE),
            latency: vec![
                HistogramSnapshot::of("move", &self.hist_move),
                HistogramSnapshot::of("join", &self.hist_join),
                HistogramSnapshot::of("death", &self.hist_death),
                HistogramSnapshot::of("all", &self.hist_all),
                HistogramSnapshot::of("batch", &self.hist_batch),
                HistogramSnapshot::of("batch_size", &self.hist_batch_size),
            ],
            final_active: self.final_active,
            final_edges: self.final_edges,
            matches_scratch: self.matches_scratch,
        }
    }
}

/// Serves one stream: build the engine over the stream's sub-field,
/// pump its whole event share through group commits, verify against a
/// from-scratch construction. `config.streams` must be 1 (see
/// [`stream_plan`]).
fn run_stream(
    config: &ServiceConfig,
    seed: u64,
    stream: u32,
    metrics_enabled: bool,
    trace: Option<&TraceHandle>,
) -> StreamOutcome {
    let model = PowerLaw::paper_default();
    let cbtc = CbtcConfig::new(config.alpha);
    let layout = RandomPlacement::new(config.nodes, config.width, config.height, model.max_range())
        .generate_layout(seed);
    // The standby pool is the tail of the slot space; joins re-enter at
    // fresh positions, so which slots start inactive is immaterial.
    let standby = ((config.nodes as f64 * config.standby_fraction) as usize).min(config.nodes - 2);
    let first_standby = config.nodes - standby;
    let active: Vec<bool> = (0..config.nodes).map(|i| i < first_standby).collect();
    let positions: Vec<Point2> = layout.node_ids().map(|u| layout.position(u)).collect();
    let mut topo = DeltaTopology::new(
        layout,
        active,
        model.max_range(),
        cbtc,
        false,
        GeometricMetric,
    );
    let shard = if metrics_enabled {
        MetricsRegistry::enabled()
    } else {
        MetricsRegistry::disabled()
    };
    topo.set_metrics(&shard);
    let stream_gauge = shard.gauge("serve.stream");
    let progress_gauge = shard.gauge("serve.events_done");
    stream_gauge.set(f64::from(stream));
    if let Some(trace) = trace {
        topo.set_trace(trace.clone());
    }

    let mut gen = EventGen {
        rng: StdRng::seed_from_u64(seed ^ 0x5E7C_E0D5),
        active_ids: (0..first_standby as u32).map(NodeId::new).collect(),
        standby_ids: (first_standby as u32..config.nodes as u32)
            .map(NodeId::new)
            .collect(),
        positions,
        min_active: config.nodes / 2,
        death_cut: config.death_per_mille,
        join_cut: config.death_per_mille + config.join_per_mille,
        width: config.width,
        height: config.height,
        max_step: config.max_step,
    };

    let cap = if config.batch_wait_us == 0 {
        1
    } else {
        config.batch_max.max(1) as usize
    };
    let mut outcome = StreamOutcome {
        moves: 0,
        joins: 0,
        deaths: 0,
        batches: 0,
        hist_move: LogHistogram::new(),
        hist_join: LogHistogram::new(),
        hist_death: LogHistogram::new(),
        hist_all: LogHistogram::new(),
        hist_batch: LogHistogram::new(),
        hist_batch_size: LogHistogram::new(),
        elapsed_secs: 0.0,
        events: config.events,
        nodes: config.nodes as u32,
        final_active: 0,
        final_edges: 0,
        matches_scratch: false,
        snapshot: MetricsSnapshot::default(),
        checkpoints: Vec::new(),
    };
    let mut batch: Vec<NodeEvent> = Vec::with_capacity(cap);
    let mut kinds: Vec<Kind> = Vec::with_capacity(cap);
    let mut pending: Option<(NodeEvent, Kind)> = None;
    let mut generated = 0u64;
    let mut done = 0u64;
    let checkpointing = config.metrics_every > 0 && metrics_enabled && trace.is_some();

    let loop_start = Instant::now();
    while done < config.events {
        batch.clear();
        kinds.clear();
        if let Some((event, kind)) = pending.take() {
            batch.push(event);
            kinds.push(kind);
        }
        // Group-commit admission: coalesce up to `cap`, cut on the
        // first event whose node is already aboard (it must order
        // after this commit) or when the stream's share is exhausted.
        while batch.len() < cap && generated < config.events {
            let (event, kind) = gen.next();
            generated += 1;
            if batch.iter().any(|b| b.node() == event.node()) {
                pending = Some((event, kind));
                break;
            }
            batch.push(event);
            kinds.push(kind);
        }
        if trace.is_some() {
            topo.set_trace_clock(done as f64);
        }
        let t0 = Instant::now();
        topo.apply(&batch);
        let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        outcome.batches += 1;
        outcome.hist_batch.record(nanos);
        outcome.hist_batch_size.record(batch.len() as u64);
        for &kind in &kinds {
            // Group commit: each coalesced event observes its batch's
            // commit latency.
            match kind {
                Kind::Move => {
                    outcome.moves += 1;
                    outcome.hist_move.record(nanos);
                }
                Kind::Join => {
                    outcome.joins += 1;
                    outcome.hist_join.record(nanos);
                }
                Kind::Death => {
                    outcome.deaths += 1;
                    outcome.hist_death.record(nanos);
                }
            }
            outcome.hist_all.record(nanos);
        }
        let before = done;
        done += batch.len() as u64;
        if checkpointing && done / config.metrics_every > before / config.metrics_every {
            progress_gauge.set(done as f64);
            outcome.checkpoints.push((done, shard.snapshot()));
        }
    }
    outcome.elapsed_secs = loop_start.elapsed().as_secs_f64();

    let network = Network::new(topo.layout().clone(), model);
    let scratch = run_centralized_masked(&network, &cbtc, topo.active()).into_final_graph();
    outcome.matches_scratch = *topo.graph() == scratch;
    outcome.final_active = gen.active_ids.len() as u32;
    outcome.final_edges = topo.graph().edge_count() as u64;
    progress_gauge.set(done as f64);
    outcome.snapshot = shard.snapshot();
    outcome
}

/// [`run_service`] with observability: every stream's `reconfig.*`
/// series land in a per-stream registry shard, merged (with `registry`'s
/// own snapshot — the home of the process-wide `par.*` fan-out series)
/// into the report's `metrics`. When a trace is supplied the run streams
/// a `Meta` header, every engine's per-commit `Reconfig` samples
/// (stamped with the stream's local event clock), periodic
/// [`TraceEvent::Metrics`] checkpoints (`metrics_every > 0`, metrics
/// enabled) in ascending local-time order, and the final merged
/// [`TraceEvent::Metrics`] record.
///
/// Streams run on their own worker threads when the host has more than
/// one core (`stream_workers` in the report says what happened);
/// otherwise sequentially. Either way the outcome is bit-identical:
/// streams share nothing but the trace sink, and each stream's
/// substream is deterministic in the seed (see [`stream_plan`]). Inside
/// a stream worker the engine's own re-grow fan-out runs inline
/// (workers are already one-per-core); in single-stream mode the
/// engine fans re-grows across the cores itself.
///
/// The hooks only observe: the maintained graphs, the event streams,
/// and every report field except the wall-clock timings are
/// bit-identical whether or not a registry or trace is installed.
///
/// # Panics
///
/// Panics on a config with no streams, fewer than two node slots or one
/// event per stream, non-positive field dimensions, or an event mix
/// exceeding 1000 per mille.
pub fn run_service_observed(
    config: &ServiceConfig,
    seed: u64,
    registry: &MetricsRegistry,
    trace: Option<&TraceHandle>,
) -> ServiceReport {
    let streams = config.streams;
    assert!(streams >= 1, "need at least one stream");
    assert!(
        config.nodes >= 2 * streams as usize,
        "need at least two node slots per stream"
    );
    assert!(
        config.events >= u64::from(streams),
        "need at least one event per stream"
    );
    assert!(
        config.width > 0.0 && config.height > 0.0,
        "field dimensions must be positive"
    );
    assert!(
        config.death_per_mille + config.join_per_mille <= 1000,
        "event mix exceeds 1000 per mille"
    );
    assert!(
        (0.0..1.0).contains(&config.standby_fraction),
        "standby fraction must be in [0, 1)"
    );

    if let Some(trace) = trace {
        trace.record(TraceEvent::Meta {
            version: TRACE_VERSION,
            run: format!("serve/{}-nodes-{}-streams", config.nodes, streams),
            nodes: config.nodes as u32,
            seed,
            alpha: config.alpha.radians(),
            width: config.width,
            height: config.height,
            pricing: "geometric".to_owned(),
        });
    }

    let plans: Vec<(ServiceConfig, u64)> =
        (0..streams).map(|s| stream_plan(config, seed, s)).collect();
    let parallel = streams > 1 && effective_parallelism() > 1;
    let metrics_enabled = registry.is_enabled();
    let start = Instant::now();
    let outcomes: Vec<StreamOutcome> = if parallel {
        std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(s, (plan, stream_seed))| {
                    scope.spawn(move || {
                        // A stream worker already owns its core; its
                        // engine's re-grow fan-outs run inline.
                        without_nested_fan_out(|| {
                            run_stream(plan, *stream_seed, s as u32, metrics_enabled, trace)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    } else {
        plans
            .iter()
            .enumerate()
            .map(|(s, (plan, stream_seed))| {
                run_stream(plan, *stream_seed, s as u32, metrics_enabled, trace)
            })
            .collect()
    };
    let elapsed_secs = start.elapsed().as_secs_f64();

    // Periodic checkpoints, ascending by local event time (ties by
    // stream) so the analyzer's timeline ordering holds however the
    // stream threads interleaved.
    if let Some(trace) = trace {
        let mut timeline: Vec<(u64, u32, &MetricsSnapshot)> = outcomes
            .iter()
            .enumerate()
            .flat_map(|(s, o)| {
                o.checkpoints
                    .iter()
                    .map(move |(at, snap)| (*at, s as u32, snap))
            })
            .collect();
        timeline.sort_by_key(|&(at, s, _)| (at, s));
        for (at, _, snap) in timeline {
            trace.record(TraceEvent::Metrics {
                time: at as f64,
                snapshot: snap.clone(),
            });
        }
    }

    // Exact shard merges: histograms bucket-merge, counters add, the
    // caller's registry contributes the process-wide series (par.*).
    let mut hist_move = LogHistogram::new();
    let mut hist_join = LogHistogram::new();
    let mut hist_death = LogHistogram::new();
    let mut hist_all = LogHistogram::new();
    let mut hist_batch = LogHistogram::new();
    let mut hist_batch_size = LogHistogram::new();
    let mut metrics = registry.snapshot();
    let (mut moves, mut joins, mut deaths, mut batches) = (0u64, 0u64, 0u64, 0u64);
    let (mut final_active, mut final_edges) = (0u32, 0u64);
    let mut matches_scratch = true;
    for o in &outcomes {
        hist_move.merge(&o.hist_move);
        hist_join.merge(&o.hist_join);
        hist_death.merge(&o.hist_death);
        hist_all.merge(&o.hist_all);
        hist_batch.merge(&o.hist_batch);
        hist_batch_size.merge(&o.hist_batch_size);
        metrics.merge(&o.snapshot);
        moves += o.moves;
        joins += o.joins;
        deaths += o.deaths;
        batches += o.batches;
        final_active += o.final_active;
        final_edges += o.final_edges;
        matches_scratch &= o.matches_scratch;
    }

    if let (Some(trace), true) = (trace, metrics_enabled) {
        trace.record(TraceEvent::Metrics {
            time: config.events as f64,
            snapshot: metrics.clone(),
        });
    }

    ServiceReport {
        schema_version: 2,
        nodes: config.nodes as u32,
        events: config.events,
        streams,
        batch_max: config.batch_max,
        batch_wait_us: config.batch_wait_us,
        detected_cores: detected_cores() as u32,
        stream_workers: if parallel {
            (effective_parallelism() as u32).min(streams)
        } else {
            1
        },
        elapsed_secs,
        events_per_sec: config.events as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        moves,
        joins,
        deaths,
        batches,
        latency: vec![
            HistogramSnapshot::of("move", &hist_move),
            HistogramSnapshot::of("join", &hist_join),
            HistogramSnapshot::of("death", &hist_death),
            HistogramSnapshot::of("all", &hist_all),
            HistogramSnapshot::of("batch", &hist_batch),
            HistogramSnapshot::of("batch_size", &hist_batch_size),
        ],
        per_stream: outcomes
            .into_iter()
            .enumerate()
            .map(|(s, o)| o.into_report(s as u32))
            .collect(),
        final_active,
        final_edges,
        matches_scratch,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_trace::MemorySink;

    fn small() -> ServiceConfig {
        ServiceConfig {
            events: 400,
            ..ServiceConfig::sized(60, 400)
        }
    }

    /// Strips the wall-clock fields, leaving only the deterministic
    /// part of a report.
    fn deterministic(report: &ServiceReport) -> ServiceReport {
        let mut r = report.clone();
        r.elapsed_secs = 0.0;
        r.events_per_sec = 0.0;
        r.latency.clear();
        for s in &mut r.per_stream {
            s.elapsed_secs = 0.0;
            s.events_per_sec = 0.0;
            s.latency.clear();
        }
        r
    }

    #[test]
    fn stream_mixes_kinds_and_matches_scratch() {
        let report = run_service(&small(), 9);
        assert_eq!(report.moves + report.joins + report.deaths, 400);
        assert!(report.moves > 0 && report.joins > 0 && report.deaths > 0);
        assert!(report.matches_scratch, "maintained graph drifted");
        assert_eq!(report.latency_for("all").unwrap().count, 400);
        let h = report.latency_for("move").unwrap();
        assert_eq!(h.count, report.moves);
        assert!(h.p50 <= h.p99 && h.p99 <= h.max, "percentiles not monotone");
        assert!(h.max > 0, "moves must cost nonzero time");
        // Event-at-a-time: every commit carries one event.
        assert_eq!(report.batches, 400);
        let sizes = report.latency_for("batch_size").unwrap();
        assert_eq!(sizes.min, 1);
        assert_eq!(sizes.max, 1);
        // Membership conservation: every slot is active or standby.
        assert!(report.final_active >= (small().nodes / 2) as u32);
        assert_eq!(report.schema_version, 2);
        assert_eq!(report.per_stream.len(), 1);
        assert_eq!(report.stream_workers, 1);
    }

    #[test]
    fn batched_run_is_bit_identical_and_coalesces() {
        let sequential = run_service(&small(), 9);
        let batched = run_service(
            &ServiceConfig {
                batch_max: 16,
                batch_wait_us: 200,
                ..small()
            },
            9,
        );
        // Same events, same final graph — only the commit grouping (and
        // the wall clock) differ.
        let mut seq = deterministic(&sequential);
        let mut bat = deterministic(&batched);
        assert!(bat.batches < seq.batches, "batching must coalesce");
        assert_eq!(bat.moves, seq.moves);
        assert_eq!(bat.joins, seq.joins);
        assert_eq!(bat.deaths, seq.deaths);
        assert_eq!(bat.final_edges, seq.final_edges);
        assert_eq!(bat.final_active, seq.final_active);
        assert!(bat.matches_scratch, "batched maintained graph drifted");
        // Everything else matches once the batching knobs are aligned.
        seq.batches = 0;
        bat.batches = 0;
        seq.batch_max = 0;
        bat.batch_max = 0;
        seq.batch_wait_us = 0;
        bat.batch_wait_us = 0;
        for r in seq.per_stream.iter_mut().chain(bat.per_stream.iter_mut()) {
            r.batches = 0;
        }
        assert_eq!(seq, bat);
        let sizes = batched.latency_for("batch_size").unwrap();
        assert!(sizes.max > 1, "open window must form multi-event batches");
        assert!(sizes.max <= 16, "cap respected");
    }

    #[test]
    fn sharded_run_partitions_everything_and_matches_each_stream_plan() {
        let config = ServiceConfig {
            streams: 3,
            ..ServiceConfig::sized(90, 300)
        };
        let report = run_service(&config, 5);
        assert_eq!(report.per_stream.len(), 3);
        assert_eq!(report.moves + report.joins + report.deaths, 300);
        assert!(report.matches_scratch, "some stream drifted");
        let total_nodes: u32 = report.per_stream.iter().map(|s| s.nodes).sum();
        let total_events: u64 = report.per_stream.iter().map(|s| s.events).sum();
        assert_eq!(total_nodes, 90);
        assert_eq!(total_events, 300);
        // Each stream is exactly the standalone run of its plan.
        for (s, stream_report) in report.per_stream.iter().enumerate() {
            let (plan, stream_seed) = stream_plan(&config, 5, s as u32);
            let standalone = run_service(&plan, stream_seed);
            assert_eq!(standalone.per_stream.len(), 1);
            let mut solo = standalone.per_stream[0].clone();
            let mut shard = stream_report.clone();
            assert_eq!(solo.stream, 0);
            solo.stream = shard.stream;
            solo.elapsed_secs = 0.0;
            shard.elapsed_secs = 0.0;
            solo.events_per_sec = 0.0;
            shard.events_per_sec = 0.0;
            solo.latency.clear();
            shard.latency.clear();
            assert_eq!(solo, shard, "stream {s} diverged from its plan");
        }
    }

    #[test]
    fn stream_plan_is_exact_and_identity_for_one_stream() {
        let config = ServiceConfig {
            streams: 4,
            ..ServiceConfig::sized(103, 1001)
        };
        let mut nodes = 0usize;
        let mut events = 0u64;
        for s in 0..4 {
            let (plan, _) = stream_plan(&config, 7, s);
            assert_eq!(plan.streams, 1);
            assert!((plan.width - config.width / 4.0).abs() < 1e-12);
            nodes += plan.nodes;
            events += plan.events;
        }
        assert_eq!(nodes, 103);
        assert_eq!(events, 1001);
        let single = ServiceConfig::sized(50, 100);
        let (plan, seed) = stream_plan(&single, 42, 0);
        assert_eq!(plan, single, "one-stream plan is the identity");
        assert_eq!(seed, 42, "stream 0 keeps the original seed");
    }

    #[test]
    fn observed_run_is_deterministically_identical_and_counts_events() {
        let plain = run_service(&small(), 4);

        let registry = MetricsRegistry::enabled();
        let (handle, sink) = TraceHandle::in_memory();
        let report = run_service_observed(&small(), 4, &registry, Some(&handle));
        assert_eq!(deterministic(&report), {
            let mut p = deterministic(&plain);
            p.metrics = report.metrics.clone();
            p
        });

        // The engine counted exactly the stream's events.
        assert_eq!(
            report.metrics.counter("reconfig.events.move"),
            Some(report.moves)
        );
        assert_eq!(
            report.metrics.counter("reconfig.events.join"),
            Some(report.joins)
        );
        assert_eq!(
            report.metrics.counter("reconfig.events.death"),
            Some(report.deaths)
        );
        assert_eq!(report.metrics.counter("reconfig.batches"), Some(400));

        // The trace ends with the Metrics record carrying the merged
        // snapshot.
        let jsonl = MemorySink::to_jsonl(&sink.lock().unwrap());
        let events = cbtc_trace::parse_trace(&jsonl).unwrap();
        match events.last() {
            Some(TraceEvent::Metrics { snapshot, .. }) => {
                assert_eq!(snapshot, &report.metrics);
            }
            other => panic!("expected final Metrics record, got {other:?}"),
        }
    }

    #[test]
    fn periodic_checkpoints_build_an_analyzable_timeline() {
        let config = ServiceConfig {
            metrics_every: 100,
            batch_max: 8,
            batch_wait_us: 100,
            ..small()
        };
        let registry = MetricsRegistry::enabled();
        let (handle, sink) = TraceHandle::in_memory();
        let report = run_service_observed(&config, 11, &registry, Some(&handle));
        assert!(report.matches_scratch);
        let jsonl = MemorySink::to_jsonl(&sink.lock().unwrap());
        let events = cbtc_trace::parse_trace(&jsonl).unwrap();
        let analysis = cbtc_trace::analyze(&events).unwrap();
        // 400 events at one checkpoint per 100: at least three periodic
        // records (a batch may straddle a boundary) plus the final one.
        assert!(
            analysis.metrics_timeline.len() >= 4,
            "timeline has {} records",
            analysis.metrics_timeline.len()
        );
        let times: Vec<f64> = analysis.metrics_timeline.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        // Checkpoint event counts grow monotonically within the stream.
        let counts: Vec<u64> = analysis
            .metrics_timeline
            .iter()
            .filter_map(|(_, s)| s.counter("reconfig.events.move"))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(
            analysis.metrics.as_ref().unwrap(),
            &report.metrics,
            "final record carries the merged snapshot"
        );
    }

    #[test]
    fn report_json_round_trips() {
        let report = run_service(&small(), 2);
        let json = serde_json::to_string(&report).unwrap();
        let back: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
