//! Mobility-and-churn reconfiguration scenarios (`cbtc-churn`).
//!
//! The paper analyzes the reconfiguration protocol (§4) but evaluates only
//! static layouts (§5). This module supplies the missing experiment: it
//! drives [`ReconfigNode`] — NDP beacons plus the §4 `join`/`leave`/
//! `aChange` rules — under continuous [`RandomWaypoint`] motion with
//! scheduled node joins and crash-stops, and measures what the §4 guarantee
//! promises:
//!
//! * **beacon overhead** — broadcasts per live node per beacon interval;
//! * **reconvergence time** — ticks from each churn burst until the
//!   maintained topology again preserves the partition of the live
//!   max-power graph `G_R` (Theorem 2.1's predicate, applied online);
//! * **degree/connectivity maintenance** — average degree and the fraction
//!   of probes at which the partition is preserved;
//! * **stretch over time** — sampled power/hop stretch of the maintained
//!   topology versus the live `G_R`.
//!
//! The suite is built to run at 10⁴–10⁵ nodes: every geometric query goes
//! through [`cbtc_graph::SpatialGrid`] (the simulator's broadcast delivery
//! does too), so a probe costs `O(n + |E|)` rather than `O(n²)`.
//!
//! [`ReconfigNode`]: cbtc_core::reconfig::ReconfigNode

use cbtc_core::protocol::GrowthConfig;
use cbtc_core::reconfig::{collect_topology, NdpConfig, ReconfigNode};
use cbtc_geom::Alpha;
use cbtc_graph::connectivity::same_partition;
use cbtc_graph::paths::{dijkstra, power_weight};
use cbtc_graph::unit_disk::unit_disk_graph_where;
use cbtc_graph::{Layout, NodeId, UndirectedGraph};
use cbtc_radio::{PathLoss, Power, PowerLaw, PowerSchedule};
use cbtc_sim::{Engine, FaultConfig, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{RandomPlacement, RandomWaypoint};

/// Parameters of one churn experiment.
///
/// Timeline: `initial_nodes` start at tick 0 and run a `warmup` quiet
/// period; then `cycles` churn *bursts* fire every `cycle_ticks`, each
/// injecting its share of the `joins` (late node starts) and `crashes`
/// (crash-stops). Mobility runs continuously throughout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnScenario {
    /// Human-readable name, used in experiment output.
    pub name: String,
    /// Nodes live from tick 0.
    pub initial_nodes: usize,
    /// Nodes that join at churn bursts (total node count is
    /// `initial_nodes + joins`).
    pub joins: usize,
    /// Crash-stops injected at churn bursts.
    pub crashes: usize,
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// The cone angle α.
    pub alpha: Alpha,
    /// Ticks between NDP beacons.
    pub beacon_interval: u64,
    /// Missed beacons before a neighbor is declared gone.
    pub miss_limit: u32,
    /// Minimum waypoint speed (distance units per tick).
    pub speed_min: f64,
    /// Maximum waypoint speed (distance units per tick).
    pub speed_max: f64,
    /// Pause at each waypoint (ticks).
    pub pause: f64,
    /// Quiet ticks before the first churn burst.
    pub warmup: u64,
    /// Number of churn bursts.
    pub cycles: u32,
    /// Ticks between bursts (the settle window reconvergence is measured
    /// within).
    pub cycle_ticks: u64,
    /// Ticks between mobility pushes into the simulator.
    pub mobility_dt: u64,
}

impl ChurnScenario {
    /// A scenario sized for `nodes` total nodes: the field is scaled so
    /// the max-power graph keeps an average degree of ≈ 18 under the
    /// paper's radio (`R = 500`), which keeps `G_R` connected with high
    /// probability while staying sparse enough to stress reconfiguration.
    ///
    /// 10% of the nodes arrive as late joins and 10% crash during the run.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 10`.
    pub fn sized(nodes: usize) -> Self {
        assert!(nodes >= 10, "need at least 10 nodes, got {nodes}");
        let range = PowerLaw::paper_default().max_range();
        let target_degree = 18.0;
        let side = (nodes as f64 * std::f64::consts::PI * range * range / target_degree).sqrt();
        let joins = nodes / 10;
        let crashes = nodes / 10;
        ChurnScenario {
            name: format!("churn-{nodes}"),
            initial_nodes: nodes - joins,
            joins,
            crashes,
            width: side,
            height: side,
            alpha: Alpha::FIVE_PI_SIXTHS,
            beacon_interval: 10,
            miss_limit: 3,
            speed_min: 0.5,
            speed_max: 2.0,
            pause: 20.0,
            warmup: 200,
            cycles: 4,
            cycle_ticks: 250,
            mobility_dt: 5,
        }
    }

    /// A tiny fast scenario for tests and doc examples.
    pub fn smoke() -> Self {
        ChurnScenario {
            name: "churn-smoke".to_owned(),
            initial_nodes: 24,
            joins: 4,
            crashes: 3,
            width: 1100.0,
            height: 1100.0,
            cycles: 2,
            cycle_ticks: 200,
            warmup: 150,
            ..ChurnScenario::sized(28)
        }
    }

    /// Last tick of the run: `warmup + cycles·cycle_ticks`.
    pub fn horizon(&self) -> u64 {
        self.warmup + u64::from(self.cycles) * self.cycle_ticks
    }

    /// Total node count, including late joiners.
    pub fn total_nodes(&self) -> usize {
        self.initial_nodes + self.joins
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_nodes < 2 {
            return Err("initial_nodes must be at least 2".into());
        }
        if self.crashes >= self.initial_nodes {
            return Err("crashes must leave at least one initial node alive".into());
        }
        if !(self.width.is_finite()
            && self.width > 0.0
            && self.height.is_finite()
            && self.height > 0.0)
        {
            return Err("field dimensions must be positive".into());
        }
        if self.cycles == 0 || self.cycle_ticks == 0 {
            return Err("cycles and cycle_ticks must be positive".into());
        }
        if self.mobility_dt == 0 {
            return Err("mobility_dt must be positive".into());
        }
        if self.beacon_interval == 0 || self.miss_limit == 0 {
            return Err("beacon_interval and miss_limit must be positive".into());
        }
        if !(self.speed_min > 0.0 && self.speed_min <= self.speed_max) || self.pause < 0.0 {
            return Err("need 0 < speed_min ≤ speed_max and pause ≥ 0".into());
        }
        Ok(())
    }

    /// Expands the scenario into a concrete churn plan for `seed`.
    pub fn schedule(&self, seed: u64) -> ChurnSchedule {
        let total = self.total_nodes();
        let bursts: Vec<u64> = (0..self.cycles)
            .map(|k| self.warmup + u64::from(k) * self.cycle_ticks)
            .collect();
        let mut start_ticks = vec![0u64; total];
        for j in 0..self.joins {
            start_ticks[self.initial_nodes + j] = bursts[j % bursts.len()];
        }
        // Distinct crash victims among the initial nodes (partial
        // Fisher–Yates over the ID pool).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let mut pool: Vec<u32> = (0..self.initial_nodes as u32).collect();
        let mut crashes = Vec::with_capacity(self.crashes);
        for c in 0..self.crashes.min(pool.len()) {
            let pick = rng.gen_range(c..pool.len());
            pool.swap(c, pick);
            crashes.push((NodeId::new(pool[c]), bursts[c % bursts.len()]));
        }
        ChurnSchedule {
            start_ticks,
            crashes,
            bursts,
            horizon: self.horizon(),
        }
    }
}

/// A concrete churn plan: who starts when, who crashes when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Start tick per node (0 for the initial population).
    pub start_ticks: Vec<u64>,
    /// `(victim, tick)` crash-stops.
    pub crashes: Vec<(NodeId, u64)>,
    /// Burst ticks (every join/crash happens at one of these).
    pub bursts: Vec<u64>,
    /// Last tick of the run.
    pub horizon: u64,
}

/// One churn burst and how long the network took to recover from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstOutcome {
    /// The burst tick.
    pub t: u64,
    /// Nodes that joined at this burst.
    pub joins: u32,
    /// Nodes that crashed at this burst.
    pub crashes: u32,
    /// Ticks until the maintained topology again preserved the partition
    /// of the live `G_R`; `None` if it never did before the horizon.
    pub reconverged_after: Option<u64>,
}

/// One periodic probe of the maintained topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Probe tick.
    pub t: u64,
    /// Live (started, not crashed) nodes.
    pub live: u32,
    /// Edges of the maintained topology.
    pub edges: u64,
    /// Average degree over live nodes.
    pub avg_degree: f64,
    /// Whether the topology preserves the partition of the live `G_R`.
    pub partition_preserved: bool,
}

/// Sampled stretch of the maintained topology versus the live `G_R`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StretchSample {
    /// Probe tick.
    pub t: u64,
    /// Source nodes sampled.
    pub sources: u32,
    /// Destination pairs measured.
    pub pairs: u64,
    /// Mean power-stretch over measured pairs.
    pub power_mean: f64,
    /// Maximum power-stretch over measured pairs.
    pub power_max: f64,
    /// Pairs reachable in the live `G_R` but not in the topology (0 when
    /// the partition is preserved).
    pub unreachable: u64,
}

/// Aggregate message/energy accounting for the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnTraffic {
    /// Broadcasts issued (Hellos + beacons).
    pub broadcasts: u64,
    /// Unicasts issued (Acks).
    pub unicasts: u64,
    /// Messages delivered to a handler.
    pub deliveries: u64,
    /// Broadcasts per live node per beacon interval — the beacon-overhead
    /// headline (1.0 ≈ steady-state beaconing, excess is reconfiguration
    /// traffic).
    pub broadcasts_per_node_per_interval: f64,
    /// Total transmission energy (linear power units).
    pub energy_spent: f64,
}

/// The full result of one churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// The scenario that was run.
    pub scenario: ChurnScenario,
    /// The seed it was run under.
    pub seed: u64,
    /// Per-burst reconvergence outcomes.
    pub bursts: Vec<BurstOutcome>,
    /// Periodic topology probes.
    pub samples: Vec<SamplePoint>,
    /// Periodic stretch probes (one per cycle boundary).
    pub stretch: Vec<StretchSample>,
    /// Message and energy accounting.
    pub traffic: ChurnTraffic,
    /// Total growing-phase re-runs across all nodes (§4 event handling).
    pub reruns: u64,
    /// Live nodes at the horizon.
    pub live_at_end: u32,
    /// Fraction of probes at which the partition was preserved.
    pub connectivity_fraction: f64,
    /// Mean reconvergence ticks over bursts that reconverged.
    pub mean_reconvergence: Option<f64>,
}

/// The engine type the churn suite drives.
pub type ChurnEngine = Engine<ReconfigNode, PowerLaw>;

/// Builds `G_R` restricted to the live nodes: edges of the unit-disk graph
/// over the *current* positions whose endpoints are both live. Dead and
/// not-yet-started nodes stay as isolated vertices, mirroring
/// [`collect_topology`]'s treatment so the two graphs are comparable with
/// [`same_partition`].
pub fn live_unit_disk(layout: &Layout, radius: f64, live: &[bool]) -> UndirectedGraph {
    assert_eq!(layout.len(), live.len(), "live mask size mismatch");
    unit_disk_graph_where(layout, radius, |u| live[u.index()])
}

/// Runs one churn experiment and reports the measurements.
///
/// Deterministic in `(scenario, seed)`.
///
/// # Panics
///
/// Panics if the scenario fails [`ChurnScenario::validate`].
///
/// # Example
///
/// ```
/// use cbtc_workloads::churn::{run_churn, ChurnScenario};
///
/// let report = run_churn(&ChurnScenario::smoke(), 7);
/// assert!(!report.samples.is_empty());
/// assert!(report.traffic.broadcasts > 0);
/// ```
pub fn run_churn(scenario: &ChurnScenario, seed: u64) -> ChurnReport {
    run_churn_with(scenario, seed, None)
}

/// [`run_churn`] with an optional stochastic physical layer installed on
/// the engine ([`cbtc_sim::Engine::set_phy`]). With
/// [`cbtc_phy::PhyProfile::ideal`] the report is **bit-identical** to
/// [`run_churn`]; with a lossy profile the NDP beacons, Hellos and Acks
/// experience shadowing, fading, PRR loss and (per the profile) SINR
/// collisions and CSMA backoff.
///
/// Note the probes still judge reconvergence against the *geometric*
/// live `G_R` — the measurement is how well §4 maintenance tracks the
/// ideal topology when its control traffic is lossy.
///
/// # Panics
///
/// Panics if the scenario fails [`ChurnScenario::validate`].
pub fn run_churn_with(
    scenario: &ChurnScenario,
    seed: u64,
    phy: Option<&cbtc_phy::PhyProfile>,
) -> ChurnReport {
    if let Err(e) = scenario.validate() {
        panic!("invalid churn scenario: {e}");
    }
    let model = PowerLaw::paper_default();
    let total = scenario.total_nodes();
    let schedule = scenario.schedule(seed);

    let layout = RandomPlacement::new(total, scenario.width, scenario.height, model.max_range())
        .generate_layout(seed);
    let growth = GrowthConfig {
        alpha: scenario.alpha,
        schedule: PowerSchedule::doubling(Power::new(100.0), model.max_power()),
        ack_timeout: 3,
        model,
    };
    let ndp = NdpConfig::new(scenario.beacon_interval, scenario.miss_limit, 0.05);
    let nodes: Vec<ReconfigNode> = (0..total).map(|_| ReconfigNode::new(growth, ndp)).collect();
    let starts: Vec<SimTime> = schedule
        .start_ticks
        .iter()
        .map(|&t| SimTime::new(t))
        .collect();
    let mut engine = ChurnEngine::with_start_times(
        layout.clone(),
        model,
        nodes,
        FaultConfig::reliable_synchronous(),
        &starts,
    );
    if let Some(profile) = phy {
        engine.set_phy(*profile);
    }
    for &(victim, t) in &schedule.crashes {
        engine.schedule_crash(victim, SimTime::new(t));
    }

    let mut roaming = layout;
    let mut mobility = RandomWaypoint::new(
        scenario.width,
        scenario.height,
        scenario.speed_min,
        scenario.speed_max,
        scenario.pause,
        total,
        seed ^ 0x5EED_CAFE,
    );

    // Burst bookkeeping: joins/crashes per burst tick, pending
    // reconvergence measurements.
    let mut bursts: Vec<BurstOutcome> = schedule
        .bursts
        .iter()
        .map(|&t| BurstOutcome {
            t,
            joins: schedule.start_ticks[scenario.initial_nodes..]
                .iter()
                .filter(|&&s| s == t)
                .count() as u32,
            crashes: schedule.crashes.iter().filter(|&&(_, c)| c == t).count() as u32,
            reconverged_after: None,
        })
        .collect();
    let mut pending: Vec<usize> = Vec::new();
    let mut next_burst = 0usize;

    let probe_interval = scenario.beacon_interval;
    let step = scenario.mobility_dt;
    let mut samples = Vec::new();
    let mut stretch = Vec::new();
    let mut next_probe = 0u64;
    let mut next_stretch = schedule.horizon.min(scenario.warmup);
    let mut live_ticks = 0f64;
    let mut preserved_probes = 0u64;

    let mut t = 0u64;
    loop {
        engine.run_until(SimTime::new(t));

        // Register bursts whose tick has arrived (they just fired inside
        // run_until) so the next preserved probe closes them out.
        while next_burst < bursts.len() && bursts[next_burst].t <= t {
            pending.push(next_burst);
            next_burst += 1;
        }

        if t >= next_probe {
            let live: Vec<bool> = (0..total as u32)
                .map(NodeId::new)
                .map(|u| engine.is_alive(u) && engine.has_started(u))
                .collect();
            let live_count = live.iter().filter(|&&l| l).count() as u32;
            let topo = collect_topology(&engine);
            let target = live_unit_disk(engine.layout(), model.max_range(), &live);
            let preserved = same_partition(&topo, &target);
            if preserved {
                preserved_probes += 1;
                for &b in &pending {
                    bursts[b].reconverged_after = Some(t - bursts[b].t);
                }
                pending.clear();
            }
            samples.push(SamplePoint {
                t,
                live: live_count,
                edges: topo.edge_count() as u64,
                avg_degree: 2.0 * topo.edge_count() as f64 / f64::from(live_count.max(1)),
                partition_preserved: preserved,
            });
            if t >= next_stretch {
                stretch.push(sample_stretch(&topo, &target, engine.layout(), &live, t));
                next_stretch = t + scenario.cycle_ticks;
            }
            next_probe = t + probe_interval;
        }

        if t >= schedule.horizon {
            break;
        }

        // Advance mobility and push the new positions into the simulator
        // (incremental spatial-index updates).
        let dt = step.min(schedule.horizon - t);
        mobility.advance(&mut roaming, dt as f64);
        for (id, p) in roaming.iter() {
            if p != engine.layout().position(id) {
                engine.move_node(id, p);
            }
        }
        let live_now = (0..total as u32)
            .map(NodeId::new)
            .filter(|&u| engine.is_alive(u) && engine.has_started(u))
            .count();
        live_ticks += live_now as f64 * dt as f64;
        t += dt;
    }

    let stats = engine.stats();
    let live_at_end = (0..total as u32)
        .map(NodeId::new)
        .filter(|&u| engine.is_alive(u) && engine.has_started(u))
        .count() as u32;
    let reruns: u64 = engine.nodes().iter().map(|n| u64::from(n.reruns())).sum();
    let reconverged: Vec<u64> = bursts.iter().filter_map(|b| b.reconverged_after).collect();
    ChurnReport {
        scenario: scenario.clone(),
        seed,
        traffic: ChurnTraffic {
            broadcasts: stats.broadcasts,
            unicasts: stats.unicasts,
            deliveries: stats.deliveries,
            broadcasts_per_node_per_interval: stats.broadcasts as f64
                / (live_ticks / scenario.beacon_interval as f64).max(1.0),
            energy_spent: stats.energy_spent,
        },
        reruns,
        live_at_end,
        connectivity_fraction: preserved_probes as f64 / samples.len().max(1) as f64,
        mean_reconvergence: if reconverged.is_empty() {
            None
        } else {
            Some(reconverged.iter().sum::<u64>() as f64 / reconverged.len() as f64)
        },
        bursts,
        samples,
        stretch,
    }
}

/// Power-stretch of `topo` versus `target` sampled from a few sources:
/// Dijkstra under the power weight `d²` from each source in both graphs,
/// ratio per destination reachable in both.
fn sample_stretch(
    topo: &UndirectedGraph,
    target: &UndirectedGraph,
    layout: &Layout,
    live: &[bool],
    t: u64,
) -> StretchSample {
    const SOURCES: usize = 4;
    let exponent = 2.0;
    let live_ids: Vec<NodeId> = layout.node_ids().filter(|u| live[u.index()]).collect();
    let picked: Vec<NodeId> = (0..SOURCES.min(live_ids.len()))
        .map(|i| live_ids[i * live_ids.len() / SOURCES.min(live_ids.len()).max(1)])
        .collect();
    let mut pairs = 0u64;
    let mut unreachable = 0u64;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for &s in &picked {
        let d_sub = dijkstra(topo, s, power_weight(layout, exponent));
        let d_full = dijkstra(target, s, power_weight(layout, exponent));
        for &v in &live_ids {
            if v == s {
                continue;
            }
            match (d_sub[v.index()], d_full[v.index()]) {
                (Some(a), Some(b)) if b > 0.0 => {
                    pairs += 1;
                    let ratio = a / b;
                    sum += ratio;
                    max = max.max(ratio);
                }
                (None, Some(_)) => unreachable += 1,
                _ => {}
            }
        }
    }
    StretchSample {
        t,
        sources: picked.len() as u32,
        pairs,
        power_mean: if pairs > 0 { sum / pairs as f64 } else { 1.0 },
        power_max: if pairs > 0 { max } else { 1.0 },
        unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_runs_and_reconverges() {
        let report = run_churn(&ChurnScenario::smoke(), 3);
        assert_eq!(report.bursts.len(), 2);
        assert!(report.traffic.broadcasts > 0);
        assert!(report.traffic.deliveries > 0);
        assert!(!report.samples.is_empty());
        assert!(report.live_at_end > 0);
        // The run must spend most probes partition-preserving: the §4
        // rules are supposed to maintain connectivity under churn.
        assert!(
            report.connectivity_fraction > 0.5,
            "connectivity fraction {} too low",
            report.connectivity_fraction
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_churn(&ChurnScenario::smoke(), 11);
        let b = run_churn(&ChurnScenario::smoke(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn ideal_phy_churn_is_bit_identical() {
        let ideal = cbtc_phy::PhyProfile::ideal();
        let a = run_churn(&ChurnScenario::smoke(), 11);
        let b = run_churn_with(&ChurnScenario::smoke(), 11, Some(&ideal));
        assert_eq!(a, b, "σ = 0 / PRR = 1 churn must replay the ideal run");
    }

    #[test]
    fn lossy_phy_churn_still_mostly_reconverges() {
        let profile = cbtc_phy::PhyProfile::realistic(4.0, 3);
        let report = run_churn_with(&ChurnScenario::smoke(), 3, Some(&profile));
        assert!(report.traffic.broadcasts > 0);
        // Lossy control traffic degrades but must not collapse §4
        // maintenance on the small smoke scenario.
        assert!(
            report.connectivity_fraction > 0.3,
            "connectivity fraction {} under lossy phy",
            report.connectivity_fraction
        );
        let ideal = run_churn(&ChurnScenario::smoke(), 3);
        assert_ne!(report, ideal, "a lossy channel must change the run");
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_churn(&ChurnScenario::smoke(), 1);
        let b = run_churn(&ChurnScenario::smoke(), 2);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn schedule_spreads_churn_over_bursts() {
        let scenario = ChurnScenario::smoke();
        let schedule = scenario.schedule(9);
        assert_eq!(schedule.bursts.len(), scenario.cycles as usize);
        assert_eq!(schedule.start_ticks.len(), scenario.total_nodes());
        // Joiners all start at burst ticks.
        for j in 0..scenario.joins {
            let s = schedule.start_ticks[scenario.initial_nodes + j];
            assert!(schedule.bursts.contains(&s), "join at non-burst tick {s}");
        }
        // Crash victims are distinct initial nodes.
        let mut victims: Vec<u32> = schedule.crashes.iter().map(|(v, _)| v.raw()).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), scenario.crashes);
        assert!(victims
            .iter()
            .all(|&v| (v as usize) < scenario.initial_nodes));
    }

    #[test]
    fn live_unit_disk_ignores_dead_nodes() {
        use cbtc_geom::Point2;
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(200.0, 0.0),
        ]);
        let g = live_unit_disk(&layout, 150.0, &[true, false, true]);
        assert_eq!(g.edge_count(), 0, "middle node is dead; ends are 200 apart");
        let g2 = live_unit_disk(&layout, 250.0, &[true, false, true]);
        assert!(g2.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let mut s = ChurnScenario::smoke();
        s.crashes = s.initial_nodes;
        assert!(s.validate().is_err());
        let mut s = ChurnScenario::smoke();
        s.mobility_dt = 0;
        assert!(s.validate().is_err());
        let mut s = ChurnScenario::smoke();
        s.speed_min = 0.0;
        assert!(s.validate().is_err());
    }
}
