//! Mobility-and-churn reconfiguration scenarios (`cbtc-churn`).
//!
//! The paper analyzes the reconfiguration protocol (§4) but evaluates only
//! static layouts (§5). This module supplies the missing experiment: it
//! drives [`ReconfigNode`] — NDP beacons plus the §4 `join`/`leave`/
//! `aChange` rules — under continuous [`RandomWaypoint`] motion with
//! scheduled node joins and crash-stops, and measures what the §4 guarantee
//! promises:
//!
//! * **beacon overhead** — broadcasts per live node per beacon interval;
//! * **reconvergence time** — ticks from each churn burst until the
//!   maintained topology again preserves the partition of the live
//!   max-power graph `G_R` (Theorem 2.1's predicate, applied online);
//! * **degree/connectivity maintenance** — average degree and the fraction
//!   of probes at which the partition is preserved;
//! * **stretch over time** — sampled power/hop stretch of the maintained
//!   topology versus the live `G_R`;
//! * **centralized `G_α` tracking** — at every burst, the distributed
//!   topology is additionally judged against the *centralized* `CBTC(α)`
//!   reference over the live nodes at their current positions.
//!
//! The suite is built to run at 10⁴–10⁵ nodes: every geometric query goes
//! through [`cbtc_graph::SpatialGrid`] (the simulator's broadcast delivery
//! does too), so a probe costs `O(n + |E|)` rather than `O(n²)` — and the
//! centralized probes are *incremental*: the `G_α` reference is
//! maintained across bursts by [`DeltaTopology`] (join/crash/waypoint
//! events in, edge delta out) instead of rebuilt, and the stretch probes
//! reuse shortest-path trees across bursts under the lifetime engine's
//! keep rules ([`tree_reusable`]). Both are bit-identical to their
//! from-scratch counterparts (the in-module equivalence test replays
//! both modes).
//!
//! [`ReconfigNode`]: cbtc_core::reconfig::ReconfigNode

use cbtc_core::protocol::GrowthConfig;
use cbtc_core::reconfig::routing::{tree_reusable, SpTree};
use cbtc_core::reconfig::{
    collect_topology, graph_delta, DeltaTopology, GeometricMetric, NdpConfig, NodeEvent,
    ReconfigNode,
};
use cbtc_core::{run_centralized_masked, CbtcConfig, Network};
use cbtc_geom::{Alpha, Point2};
use cbtc_graph::connectivity::same_partition;
use cbtc_graph::paths::power_weight;
use cbtc_graph::unit_disk::unit_disk_graph_where;
use cbtc_graph::{Layout, NodeId, UndirectedGraph};
use cbtc_metrics::MetricsRegistry;
use cbtc_radio::{PathLoss, Power, PowerLaw, PowerSchedule};
use cbtc_sim::{Engine, FaultConfig, SimTime};
use cbtc_trace::{TraceEvent, TraceHandle, TRACE_VERSION};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{RandomPlacement, RandomWaypoint};

/// Parameters of one churn experiment.
///
/// Timeline: `initial_nodes` start at tick 0 and run a `warmup` quiet
/// period; then `cycles` churn *bursts* fire every `cycle_ticks`, each
/// injecting its share of the `joins` (late node starts) and `crashes`
/// (crash-stops). Mobility runs continuously throughout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnScenario {
    /// Human-readable name, used in experiment output.
    pub name: String,
    /// Nodes live from tick 0.
    pub initial_nodes: usize,
    /// Nodes that join at churn bursts (total node count is
    /// `initial_nodes + joins`).
    pub joins: usize,
    /// Crash-stops injected at churn bursts.
    pub crashes: usize,
    /// Field width.
    pub width: f64,
    /// Field height.
    pub height: f64,
    /// The cone angle α.
    pub alpha: Alpha,
    /// Ticks between NDP beacons.
    pub beacon_interval: u64,
    /// Missed beacons before a neighbor is declared gone.
    pub miss_limit: u32,
    /// Minimum waypoint speed (distance units per tick).
    pub speed_min: f64,
    /// Maximum waypoint speed (distance units per tick).
    pub speed_max: f64,
    /// Pause at each waypoint (ticks).
    pub pause: f64,
    /// Quiet ticks before the first churn burst.
    pub warmup: u64,
    /// Number of churn bursts.
    pub cycles: u32,
    /// Ticks between bursts (the settle window reconvergence is measured
    /// within).
    pub cycle_ticks: u64,
    /// Ticks between mobility pushes into the simulator.
    pub mobility_dt: u64,
}

impl ChurnScenario {
    /// A scenario sized for `nodes` total nodes: the field is scaled so
    /// the max-power graph keeps an average degree of ≈ 18 under the
    /// paper's radio (`R = 500`), which keeps `G_R` connected with high
    /// probability while staying sparse enough to stress reconfiguration.
    ///
    /// 10% of the nodes arrive as late joins and 10% crash during the run.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 10`.
    pub fn sized(nodes: usize) -> Self {
        assert!(nodes >= 10, "need at least 10 nodes, got {nodes}");
        let range = PowerLaw::paper_default().max_range();
        let target_degree = 18.0;
        let side = (nodes as f64 * std::f64::consts::PI * range * range / target_degree).sqrt();
        let joins = nodes / 10;
        let crashes = nodes / 10;
        ChurnScenario {
            name: format!("churn-{nodes}"),
            initial_nodes: nodes - joins,
            joins,
            crashes,
            width: side,
            height: side,
            alpha: Alpha::FIVE_PI_SIXTHS,
            beacon_interval: 10,
            miss_limit: 3,
            speed_min: 0.5,
            speed_max: 2.0,
            pause: 20.0,
            warmup: 200,
            cycles: 4,
            cycle_ticks: 250,
            mobility_dt: 5,
        }
    }

    /// A tiny fast scenario for tests and doc examples.
    pub fn smoke() -> Self {
        ChurnScenario {
            name: "churn-smoke".to_owned(),
            initial_nodes: 24,
            joins: 4,
            crashes: 3,
            width: 1100.0,
            height: 1100.0,
            cycles: 2,
            cycle_ticks: 200,
            warmup: 150,
            ..ChurnScenario::sized(28)
        }
    }

    /// Last tick of the run: `warmup + cycles·cycle_ticks`.
    pub fn horizon(&self) -> u64 {
        self.warmup + u64::from(self.cycles) * self.cycle_ticks
    }

    /// Total node count, including late joiners.
    pub fn total_nodes(&self) -> usize {
        self.initial_nodes + self.joins
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_nodes < 2 {
            return Err("initial_nodes must be at least 2".into());
        }
        if self.crashes >= self.initial_nodes {
            return Err("crashes must leave at least one initial node alive".into());
        }
        if !(self.width.is_finite()
            && self.width > 0.0
            && self.height.is_finite()
            && self.height > 0.0)
        {
            return Err("field dimensions must be positive".into());
        }
        if self.cycles == 0 || self.cycle_ticks == 0 {
            return Err("cycles and cycle_ticks must be positive".into());
        }
        if self.mobility_dt == 0 {
            return Err("mobility_dt must be positive".into());
        }
        if self.cycle_ticks < self.mobility_dt {
            // Burst registration advances with the mobility clock; a
            // settle window shorter than one mobility step would batch
            // two bursts into one registration pass and the per-burst
            // reference probes would measure batching, not maintenance.
            return Err("cycle_ticks must be at least mobility_dt".into());
        }
        if self.beacon_interval == 0 || self.miss_limit == 0 {
            return Err("beacon_interval and miss_limit must be positive".into());
        }
        if !(self.speed_min > 0.0 && self.speed_min <= self.speed_max) || self.pause < 0.0 {
            return Err("need 0 < speed_min ≤ speed_max and pause ≥ 0".into());
        }
        Ok(())
    }

    /// Expands the scenario into a concrete churn plan for `seed`.
    pub fn schedule(&self, seed: u64) -> ChurnSchedule {
        let total = self.total_nodes();
        let bursts: Vec<u64> = (0..self.cycles)
            .map(|k| self.warmup + u64::from(k) * self.cycle_ticks)
            .collect();
        let mut start_ticks = vec![0u64; total];
        for j in 0..self.joins {
            start_ticks[self.initial_nodes + j] = bursts[j % bursts.len()];
        }
        // Distinct crash victims among the initial nodes (partial
        // Fisher–Yates over the ID pool).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let mut pool: Vec<u32> = (0..self.initial_nodes as u32).collect();
        let mut crashes = Vec::with_capacity(self.crashes);
        for c in 0..self.crashes.min(pool.len()) {
            let pick = rng.gen_range(c..pool.len());
            pool.swap(c, pick);
            crashes.push((NodeId::new(pool[c]), bursts[c % bursts.len()]));
        }
        ChurnSchedule {
            start_ticks,
            crashes,
            bursts,
            horizon: self.horizon(),
        }
    }
}

/// A concrete churn plan: who starts when, who crashes when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Start tick per node (0 for the initial population).
    pub start_ticks: Vec<u64>,
    /// `(victim, tick)` crash-stops.
    pub crashes: Vec<(NodeId, u64)>,
    /// Burst ticks (every join/crash happens at one of these).
    pub bursts: Vec<u64>,
    /// Last tick of the run.
    pub horizon: u64,
}

/// One churn burst and how long the network took to recover from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstOutcome {
    /// The burst tick.
    pub t: u64,
    /// Nodes that joined at this burst.
    pub joins: u32,
    /// Nodes that crashed at this burst.
    pub crashes: u32,
    /// Ticks until the maintained topology again preserved the partition
    /// of the live `G_R`; `None` if it never did before the horizon.
    pub reconverged_after: Option<u64>,
}

/// One periodic probe of the maintained topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Probe tick.
    pub t: u64,
    /// Live (started, not crashed) nodes.
    pub live: u32,
    /// Edges of the maintained topology.
    pub edges: u64,
    /// Average degree over live nodes.
    pub avg_degree: f64,
    /// Whether the topology preserves the partition of the live `G_R`.
    pub partition_preserved: bool,
}

/// One update of the centralized `CBTC(α)` reference topology — the
/// `G_α` a centralized observer would build over the live nodes at their
/// current positions — maintained across bursts by the incremental
/// [`DeltaTopology`] engine instead of rebuilt from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReferenceSample {
    /// The burst tick the reference was brought up to date at.
    pub t: u64,
    /// Live (started, not crashed) nodes.
    pub live: u32,
    /// Edges of the reference `G_α`.
    pub edges: u64,
    /// Nodes the update re-grew (a from-scratch probe re-grows every
    /// live node; the gap between the two is the incremental win).
    pub regrown: u32,
    /// Join/crash/move events fed into the engine at this update.
    pub events: u32,
    /// Whether the *maintained* distributed topology partitions the node
    /// set exactly as the centralized reference does — §4 maintenance
    /// judged against the paper's own construction rather than `G_R`.
    /// Measured at the **end of this burst's settle window** (the next
    /// burst tick, or the horizon for the last burst), with the
    /// reference synced to the positions at that instant; judging at the
    /// burst tick itself would only measure NDP detection latency.
    pub preserved: bool,
}

/// Sampled stretch of the maintained topology versus the live `G_R`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StretchSample {
    /// Probe tick.
    pub t: u64,
    /// Source nodes sampled.
    pub sources: u32,
    /// Destination pairs measured.
    pub pairs: u64,
    /// Mean power-stretch over measured pairs.
    pub power_mean: f64,
    /// Maximum power-stretch over measured pairs.
    pub power_max: f64,
    /// Pairs reachable in the live `G_R` but not in the topology (0 when
    /// the partition is preserved).
    pub unreachable: u64,
}

/// Aggregate message/energy accounting for the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnTraffic {
    /// Broadcasts issued (Hellos + beacons).
    pub broadcasts: u64,
    /// Unicasts issued (Acks).
    pub unicasts: u64,
    /// Messages delivered to a handler.
    pub deliveries: u64,
    /// Broadcasts per live node per beacon interval — the beacon-overhead
    /// headline (1.0 ≈ steady-state beaconing, excess is reconfiguration
    /// traffic).
    pub broadcasts_per_node_per_interval: f64,
    /// Deliveries suppressed by the physical layer (failed PRR/SINR
    /// draws); 0 without a phy profile.
    pub phy_lost: u64,
    /// Transmissions deferred by CSMA carrier sensing.
    pub csma_deferrals: u64,
    /// Transmissions that aired despite a busy carrier after exhausting
    /// their sense attempts.
    pub csma_forced: u64,
    /// Total transmission energy (linear power units).
    pub energy_spent: f64,
}

/// The full result of one churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// The scenario that was run.
    pub scenario: ChurnScenario,
    /// The seed it was run under.
    pub seed: u64,
    /// Per-burst reconvergence outcomes.
    pub bursts: Vec<BurstOutcome>,
    /// Per-burst centralized `G_α` reference probes (incrementally
    /// maintained through [`DeltaTopology`]).
    pub reference: Vec<ReferenceSample>,
    /// Periodic topology probes.
    pub samples: Vec<SamplePoint>,
    /// Periodic stretch probes (one per cycle boundary).
    pub stretch: Vec<StretchSample>,
    /// Message and energy accounting.
    pub traffic: ChurnTraffic,
    /// Total growing-phase re-runs across all nodes (§4 event handling).
    pub reruns: u64,
    /// Live nodes at the horizon.
    pub live_at_end: u32,
    /// Fraction of probes at which the partition was preserved.
    pub connectivity_fraction: f64,
    /// Mean reconvergence ticks over bursts that reconverged.
    pub mean_reconvergence: Option<f64>,
}

/// The engine type the churn suite drives.
pub type ChurnEngine = Engine<ReconfigNode, PowerLaw>;

/// Builds `G_R` restricted to the live nodes: edges of the unit-disk graph
/// over the *current* positions whose endpoints are both live. Dead and
/// not-yet-started nodes stay as isolated vertices, mirroring
/// [`collect_topology`]'s treatment so the two graphs are comparable with
/// [`same_partition`].
pub fn live_unit_disk(layout: &Layout, radius: f64, live: &[bool]) -> UndirectedGraph {
    assert_eq!(layout.len(), live.len(), "live mask size mismatch");
    unit_disk_graph_where(layout, radius, |u| live[u.index()])
}

/// Runs one churn experiment and reports the measurements.
///
/// Deterministic in `(scenario, seed)`.
///
/// # Panics
///
/// Panics if the scenario fails [`ChurnScenario::validate`].
///
/// # Example
///
/// ```
/// use cbtc_workloads::churn::{run_churn, ChurnScenario};
///
/// let report = run_churn(&ChurnScenario::smoke(), 7);
/// assert!(!report.samples.is_empty());
/// assert!(report.traffic.broadcasts > 0);
/// ```
pub fn run_churn(scenario: &ChurnScenario, seed: u64) -> ChurnReport {
    run_churn_with(scenario, seed, None)
}

/// [`run_churn`] with an optional stochastic physical layer installed on
/// the engine ([`cbtc_sim::Engine::set_phy`]). With
/// [`cbtc_phy::PhyProfile::ideal`] the report is **bit-identical** to
/// [`run_churn`]; with a lossy profile the NDP beacons, Hellos and Acks
/// experience shadowing, fading, PRR loss and (per the profile) SINR
/// collisions and CSMA backoff.
///
/// Note the probes still judge reconvergence against the *geometric*
/// live `G_R` — the measurement is how well §4 maintenance tracks the
/// ideal topology when its control traffic is lossy.
///
/// # Panics
///
/// Panics if the scenario fails [`ChurnScenario::validate`].
pub fn run_churn_with(
    scenario: &ChurnScenario,
    seed: u64,
    phy: Option<&cbtc_phy::PhyProfile>,
) -> ChurnReport {
    run_churn_impl(scenario, seed, phy, true, None, None)
}

/// [`run_churn_with`] with a metrics registry installed on the
/// incremental `G_α` reference: every burst's event batch lands in the
/// engine's `reconfig.*` series (per-kind latency, affected-set sizes,
/// replay-vs-grid-scan counters) — the same names the lifetime engine
/// and the reconfiguration service report through. Purely
/// observational: the report is **bit-identical** to [`run_churn_with`].
///
/// # Panics
///
/// Panics if the scenario fails [`ChurnScenario::validate`].
pub fn run_churn_metered(
    scenario: &ChurnScenario,
    seed: u64,
    phy: Option<&cbtc_phy::PhyProfile>,
    registry: &MetricsRegistry,
) -> ChurnReport {
    run_churn_impl(scenario, seed, phy, true, None, Some(registry))
}

/// [`run_churn_with`] with observability hooks installed: the run streams
/// [`TraceEvent`]s to `trace` — the `Meta` header, per-probe
/// `Beacon`/`TopologyEpoch` edge deltas and `PrrSnapshot` counters,
/// engine `Join`/`Death` lifecycle events, `Burst`/`Reconverged` markers,
/// per-batch `Reconfig` latency samples from the incremental `G_α`
/// reference, and periodic `Positions`/`EnergySnapshot` keyframes.
///
/// The hooks only observe computed state and draw no randomness: the
/// returned report is **bit-identical** to [`run_churn_with`], and —
/// with the handle's timing off — the recorded trace is byte-identical
/// across machines and thread counts.
///
/// Position/energy keyframes follow the trace-size policy: every probe
/// tick up to 2048 total nodes, else only at start, bursts and the
/// horizon (a 10k-node trace stays tens of megabytes, not gigabytes).
///
/// # Panics
///
/// Panics if the scenario fails [`ChurnScenario::validate`].
pub fn run_churn_traced(
    scenario: &ChurnScenario,
    seed: u64,
    phy: Option<&cbtc_phy::PhyProfile>,
    trace: &TraceHandle,
) -> ChurnReport {
    run_churn_impl(scenario, seed, phy, true, Some(trace), None)
}

/// The suite body, with the centralized-probe strategy explicit:
/// `incremental_probes` routes the `G_α` reference through
/// [`DeltaTopology`] and the stretch dijkstras through the
/// [`tree_reusable`] cache; `false` rebuilds/recomputes everything from
/// scratch at each probe. The two produce identical reports (up to the
/// `regrown` accounting field, which *measures* the difference) — the
/// in-module equivalence test replays both.
fn run_churn_impl(
    scenario: &ChurnScenario,
    seed: u64,
    phy: Option<&cbtc_phy::PhyProfile>,
    incremental_probes: bool,
    trace: Option<&TraceHandle>,
    metrics: Option<&MetricsRegistry>,
) -> ChurnReport {
    if let Err(e) = scenario.validate() {
        panic!("invalid churn scenario: {e}");
    }
    let model = PowerLaw::paper_default();
    let total = scenario.total_nodes();
    let schedule = scenario.schedule(seed);

    let layout = RandomPlacement::new(total, scenario.width, scenario.height, model.max_range())
        .generate_layout(seed);
    let growth = GrowthConfig {
        alpha: scenario.alpha,
        schedule: PowerSchedule::doubling(Power::new(100.0), model.max_power()),
        ack_timeout: 3,
        model,
    };
    let ndp = NdpConfig::new(scenario.beacon_interval, scenario.miss_limit, 0.05);
    let nodes: Vec<ReconfigNode> = (0..total).map(|_| ReconfigNode::new(growth, ndp)).collect();
    let starts: Vec<SimTime> = schedule
        .start_ticks
        .iter()
        .map(|&t| SimTime::new(t))
        .collect();
    let mut engine = ChurnEngine::with_start_times(
        layout.clone(),
        model,
        nodes,
        FaultConfig::reliable_synchronous(),
        &starts,
    );
    if let Some(profile) = phy {
        engine.set_phy(*profile);
    }
    for &(victim, t) in &schedule.crashes {
        engine.schedule_crash(victim, SimTime::new(t));
    }
    if let Some(trace) = trace {
        trace.record(TraceEvent::Meta {
            version: TRACE_VERSION,
            run: scenario.name.clone(),
            nodes: total as u32,
            seed,
            alpha: scenario.alpha.radians(),
            width: scenario.width,
            height: scenario.height,
            // The churn engine's energy probe charges geometric powers.
            pricing: "geometric".to_owned(),
        });
        // Engine lifecycle hooks: late starts → `Join`, crash-stops →
        // `Death`, both at their exact simulation tick.
        engine.set_trace(trace.clone());
    }

    // The centralized G_α reference: live nodes at current positions,
    // under the scenario's α with no optional optimizations — maintained
    // across bursts by the incremental engine (or rebuilt from scratch
    // when validating the incremental path).
    let ref_config = CbtcConfig::new(scenario.alpha);
    let ref_active: Vec<bool> = schedule.start_ticks.iter().map(|&s| s == 0).collect();
    let mut ref_positions: Vec<Point2> = layout.positions().to_vec();
    let mut ref_track = if incremental_probes {
        RefTrack::Incremental(Box::new(DeltaTopology::new(
            layout.clone(),
            ref_active.clone(),
            model.max_range(),
            ref_config,
            false,
            GeometricMetric,
        )))
    } else {
        RefTrack::Scratch {
            model,
            config: ref_config,
            graph: run_centralized_masked(
                &Network::new(layout.clone(), model),
                &ref_config,
                &ref_active,
            )
            .into_final_graph(),
        }
    };
    if let Some(trace) = trace {
        // Incremental-reference hooks: every `DeltaTopology::apply`
        // batch records a `Reconfig` cost sample.
        ref_track.set_trace(trace.clone());
    }
    if let Some(registry) = metrics {
        ref_track.set_metrics(registry);
    }
    let mut ref_active = ref_active;
    let mut reference: Vec<ReferenceSample> = Vec::new();

    let mut roaming = layout;
    let mut mobility = RandomWaypoint::new(
        scenario.width,
        scenario.height,
        scenario.speed_min,
        scenario.speed_max,
        scenario.pause,
        total,
        seed ^ 0x5EED_CAFE,
    );

    // Burst bookkeeping: joins/crashes per burst tick, pending
    // reconvergence measurements.
    let mut bursts: Vec<BurstOutcome> = schedule
        .bursts
        .iter()
        .map(|&t| BurstOutcome {
            t,
            joins: schedule.start_ticks[scenario.initial_nodes..]
                .iter()
                .filter(|&&s| s == t)
                .count() as u32,
            crashes: schedule.crashes.iter().filter(|&&(_, c)| c == t).count() as u32,
            reconverged_after: None,
        })
        .collect();
    let mut pending: Vec<usize> = Vec::new();
    let mut next_burst = 0usize;

    let probe_interval = scenario.beacon_interval;
    let step = scenario.mobility_dt;
    let mut samples = Vec::new();
    let mut stretch = Vec::new();
    let mut prober = StretchProber::new(incremental_probes);
    let mut next_probe = 0u64;
    let mut next_stretch = schedule.horizon.min(scenario.warmup);
    let mut live_ticks = 0f64;
    let mut preserved_probes = 0u64;

    // Trace-size policy: position/energy keyframes at every probe tick
    // for small runs, only at start/bursts/horizon for large ones.
    let snap_every_probe = total <= 2048;
    let mut traced_prev: Option<UndirectedGraph> = None;
    let mut trace_epoch = 0u32;

    let mut t = 0u64;
    loop {
        engine.run_until(SimTime::new(t));
        if trace.is_some() {
            ref_track.set_trace_clock(t as f64);
        }

        // Register bursts whose tick has arrived (they just fired inside
        // run_until) so the next preserved probe closes them out, and
        // bring the centralized G_α reference up to date: first close
        // the *previous* burst's settle window (sync waypoint drift,
        // then judge the distributed topology against the settled
        // reference — comparing at the burst instant would measure NDP
        // detection latency, not §4 maintenance), then apply this
        // burst's join/crash events.
        while next_burst < bursts.len() && bursts[next_burst].t <= t {
            let bt = bursts[next_burst].t;
            let (drift_count, drift_regrown) = settle_reference(
                &mut ref_track,
                &mut ref_positions,
                &ref_active,
                engine.layout(),
            );
            if let Some(prev) = reference.last_mut() {
                prev.preserved = same_partition(&collect_topology(&engine), ref_track.graph());
            }
            let mut events: Vec<NodeEvent> = Vec::new();
            for &(victim, ct) in &schedule.crashes {
                if ct == bt && ref_active[victim.index()] {
                    ref_active[victim.index()] = false;
                    events.push(NodeEvent::Death(victim));
                }
            }
            // Joiners occupy the slots above the initial population
            // (crash victims are initial nodes, so a slot freed above
            // can never re-join here).
            for u in scenario.initial_nodes..total {
                if !ref_active[u] && schedule.start_ticks[u] == bt {
                    let id = NodeId::new(u as u32);
                    let here = engine.layout().position(id);
                    ref_active[u] = true;
                    ref_positions[u] = here;
                    events.push(NodeEvent::Join(id, here));
                }
            }
            let (edges, regrown) = ref_track.update(&events, &ref_positions, &ref_active);
            let live_now = ref_active.iter().filter(|a| **a).count() as u32;
            reference.push(ReferenceSample {
                t: bt,
                live: live_now,
                edges,
                regrown: regrown + drift_regrown,
                events: (events.len() + drift_count) as u32,
                // Judged at the end of this burst's settle window (the
                // next burst tick or the horizon).
                preserved: false,
            });
            if let Some(trace) = trace {
                trace.record(TraceEvent::Burst {
                    time: bt as f64,
                    joins: bursts[next_burst].joins,
                    crashes: bursts[next_burst].crashes,
                });
                if !snap_every_probe {
                    record_keyframes(trace, &engine, total, t as f64);
                }
            }
            pending.push(next_burst);
            next_burst += 1;
        }

        if t >= next_probe {
            let live: Vec<bool> = (0..total as u32)
                .map(NodeId::new)
                .map(|u| engine.is_alive(u) && engine.has_started(u))
                .collect();
            let live_count = live.iter().filter(|&&l| l).count() as u32;
            let topo = collect_topology(&engine);
            let target = live_unit_disk(engine.layout(), model.max_range(), &live);
            let preserved = same_partition(&topo, &target);
            if preserved {
                preserved_probes += 1;
                if let Some(trace) = trace {
                    for &b in &pending {
                        trace.record(TraceEvent::Reconverged {
                            time: t as f64,
                            burst: bursts[b].t as f64,
                            after: (t - bursts[b].t) as f64,
                        });
                    }
                }
                for &b in &pending {
                    bursts[b].reconverged_after = Some(t - bursts[b].t);
                }
                pending.clear();
            }
            samples.push(SamplePoint {
                t,
                live: live_count,
                edges: topo.edge_count() as u64,
                avg_degree: 2.0 * topo.edge_count() as f64 / f64::from(live_count.max(1)),
                partition_preserved: preserved,
            });
            if let Some(trace) = trace {
                trace.record(TraceEvent::Beacon { time: t as f64 });
                let prev = traced_prev
                    .take()
                    .unwrap_or_else(|| UndirectedGraph::new(total));
                let delta = graph_delta(&prev, &topo);
                let pairs = |edges: &[(NodeId, NodeId)]| -> Vec<(u32, u32)> {
                    edges.iter().map(|&(u, v)| (u.raw(), v.raw())).collect()
                };
                trace.record(TraceEvent::TopologyEpoch {
                    time: t as f64,
                    epoch: trace_epoch,
                    live: live_count,
                    edges: topo.edge_count() as u64,
                    added: pairs(&delta.added),
                    removed: pairs(&delta.removed),
                });
                trace_epoch += 1;
                traced_prev = Some(topo.clone());
                let stats = engine.stats();
                let attempted = stats.deliveries + stats.lost + stats.phy_lost;
                trace.record(TraceEvent::PrrSnapshot {
                    time: t as f64,
                    delivered: stats.deliveries,
                    lost: stats.lost,
                    phy_lost: stats.phy_lost,
                    csma_deferrals: stats.csma_deferrals,
                    csma_forced: stats.csma_forced,
                    prr: if attempted == 0 {
                        1.0
                    } else {
                        stats.deliveries as f64 / attempted as f64
                    },
                });
                if snap_every_probe || t == 0 {
                    record_keyframes(trace, &engine, total, t as f64);
                }
            }
            if t >= next_stretch {
                stretch.push(prober.sample(&topo, &target, engine.layout(), &live, t));
                next_stretch = t + scenario.cycle_ticks;
            }
            next_probe = t + probe_interval;
        }

        if t >= schedule.horizon {
            // Close out the last burst's settle window at the horizon.
            settle_reference(
                &mut ref_track,
                &mut ref_positions,
                &ref_active,
                engine.layout(),
            );
            if let Some(prev) = reference.last_mut() {
                prev.preserved = same_partition(&collect_topology(&engine), ref_track.graph());
            }
            if let Some(trace) = trace {
                if !snap_every_probe {
                    record_keyframes(trace, &engine, total, t as f64);
                }
                trace.flush();
            }
            break;
        }

        // Advance mobility and push the new positions into the simulator
        // (incremental spatial-index updates).
        let dt = step.min(schedule.horizon - t);
        mobility.advance(&mut roaming, dt as f64);
        for (id, p) in roaming.iter() {
            if p != engine.layout().position(id) {
                engine.move_node(id, p);
            }
        }
        let live_now = (0..total as u32)
            .map(NodeId::new)
            .filter(|&u| engine.is_alive(u) && engine.has_started(u))
            .count();
        live_ticks += live_now as f64 * dt as f64;
        t += dt;
    }

    let stats = engine.stats();
    let live_at_end = (0..total as u32)
        .map(NodeId::new)
        .filter(|&u| engine.is_alive(u) && engine.has_started(u))
        .count() as u32;
    let reruns: u64 = engine.nodes().iter().map(|n| u64::from(n.reruns())).sum();
    let reconverged: Vec<u64> = bursts.iter().filter_map(|b| b.reconverged_after).collect();
    ChurnReport {
        scenario: scenario.clone(),
        seed,
        traffic: ChurnTraffic {
            broadcasts: stats.broadcasts,
            unicasts: stats.unicasts,
            deliveries: stats.deliveries,
            broadcasts_per_node_per_interval: stats.broadcasts as f64
                / (live_ticks / scenario.beacon_interval as f64).max(1.0),
            phy_lost: stats.phy_lost,
            csma_deferrals: stats.csma_deferrals,
            csma_forced: stats.csma_forced,
            // Through the conservation assertion: per-node energy must
            // sum to the whole-run tally.
            energy_spent: stats.energy_total(),
        },
        reruns,
        live_at_end,
        connectivity_fraction: preserved_probes as f64 / samples.len().max(1) as f64,
        mean_reconvergence: if reconverged.is_empty() {
            None
        } else {
            Some(reconverged.iter().sum::<u64>() as f64 / reconverged.len() as f64)
        },
        bursts,
        reference,
        samples,
        stretch,
    }
}

/// Emits one `Positions` + `EnergySnapshot` keyframe pair from the
/// engine's current state. Positions are quantized to 0.01 distance
/// units — enough for replay rendering, and it keeps large traces from
/// drowning in 17-digit waypoint coordinates.
fn record_keyframes(trace: &TraceHandle, engine: &ChurnEngine, total: usize, time: f64) {
    let quant = |v: f64| (v * 100.0).round() / 100.0;
    let mut xs = Vec::with_capacity(total);
    let mut ys = Vec::with_capacity(total);
    for (_, p) in engine.layout().iter() {
        xs.push(quant(p.x));
        ys.push(quant(p.y));
    }
    let alive: Vec<bool> = (0..total as u32)
        .map(NodeId::new)
        .map(|u| engine.is_alive(u) && engine.has_started(u))
        .collect();
    trace.record(TraceEvent::Positions {
        time,
        xs,
        ys,
        alive,
    });
    trace.record(TraceEvent::EnergySnapshot {
        time,
        energy: engine.stats().energy_per_node.clone(),
    });
}

/// Syncs the reference with waypoint drift: feeds a `Move` event for
/// every active node whose position changed since the last update.
/// Returns `(moves fed, nodes re-grown)`.
fn settle_reference(
    track: &mut RefTrack,
    positions: &mut [Point2],
    active: &[bool],
    layout: &Layout,
) -> (usize, u32) {
    let mut drift: Vec<NodeEvent> = Vec::new();
    for (u, slot) in positions.iter_mut().enumerate() {
        if !active[u] {
            continue;
        }
        let here = layout.position(NodeId::new(u as u32));
        if here != *slot {
            *slot = here;
            drift.push(NodeEvent::Move(NodeId::new(u as u32), here));
        }
    }
    if drift.is_empty() {
        return (0, 0);
    }
    let (_, regrown) = track.update(&drift, positions, active);
    (drift.len(), regrown)
}

/// The centralized reference track behind the per-burst `G_α` probes:
/// either the incremental engine or a validation-mode from-scratch
/// rebuild (identical graphs; the in-module test replays both).
enum RefTrack {
    Incremental(Box<DeltaTopology<GeometricMetric>>),
    Scratch {
        model: PowerLaw,
        config: CbtcConfig,
        graph: UndirectedGraph,
    },
}

impl RefTrack {
    /// Applies one burst's events and returns `(edges, regrown)` of the
    /// updated reference.
    fn update(
        &mut self,
        events: &[NodeEvent],
        positions: &[Point2],
        active: &[bool],
    ) -> (u64, u32) {
        match self {
            RefTrack::Incremental(engine) => {
                engine.apply(events);
                (
                    engine.graph().edge_count() as u64,
                    engine.last_regrown() as u32,
                )
            }
            RefTrack::Scratch {
                model,
                config,
                graph,
            } => {
                let network = Network::new(Layout::new(positions.to_vec()), *model);
                *graph = run_centralized_masked(&network, config, active).into_final_graph();
                (
                    graph.edge_count() as u64,
                    active.iter().filter(|a| **a).count() as u32,
                )
            }
        }
    }

    fn graph(&self) -> &UndirectedGraph {
        match self {
            RefTrack::Incremental(engine) => engine.graph(),
            RefTrack::Scratch { graph, .. } => graph,
        }
    }

    /// Installs observability hooks on the incremental engine (the
    /// scratch mode has no per-batch cost to sample).
    fn set_trace(&mut self, trace: TraceHandle) {
        if let RefTrack::Incremental(engine) = self {
            engine.set_trace(trace);
        }
    }

    /// Advances the clock stamped onto recorded `Reconfig` samples.
    fn set_trace_clock(&mut self, time: f64) {
        if let RefTrack::Incremental(engine) = self {
            engine.set_trace_clock(time);
        }
    }

    /// Installs metrics on the incremental engine (the scratch mode has
    /// no per-batch cost to sample).
    fn set_metrics(&mut self, registry: &MetricsRegistry) {
        if let RefTrack::Incremental(engine) = self {
            engine.set_metrics(registry);
        }
    }
}

/// One graph's cached shortest-path trees at the last stretch probe.
struct TreeSide {
    graph: UndirectedGraph,
    /// `(source, tree)` sorted by source.
    trees: Vec<(NodeId, SpTree)>,
}

/// Snapshot of the world at the last stretch probe, for the keep rules.
struct ProbeState {
    positions: Vec<Point2>,
    live: Vec<bool>,
    topo: TreeSide,
    target: TreeSide,
}

/// Power-stretch prober: Dijkstra under the power weight `d²` from a few
/// spread sources in both graphs, ratio per destination reachable in
/// both — with the lifetime engine's selective tree invalidation ported
/// so trees are *reused* across probes whenever the keep rules
/// ([`tree_reusable`]: no reachable death or move, no lost tree edge, no
/// improvable added edge) prove a recomputation would reproduce them
/// bit-for-bit.
struct StretchProber {
    reuse: bool,
    state: Option<ProbeState>,
}

impl StretchProber {
    fn new(reuse: bool) -> Self {
        StretchProber { reuse, state: None }
    }

    fn sample(
        &mut self,
        topo: &UndirectedGraph,
        target: &UndirectedGraph,
        layout: &Layout,
        live: &[bool],
        t: u64,
    ) -> StretchSample {
        const SOURCES: usize = 4;
        let exponent = 2.0;
        let weight = power_weight(layout, exponent);

        // Carry over every cached tree the keep rules prove intact.
        let (mut topo_trees, mut target_trees) = match (&self.state, self.reuse) {
            (Some(prev), true) => {
                let moved: Vec<NodeId> = layout
                    .node_ids()
                    .filter(|u| layout.position(*u) != prev.positions[u.index()])
                    .collect();
                let gone: Vec<NodeId> = layout
                    .node_ids()
                    .filter(|u| prev.live[u.index()] && !live[u.index()])
                    .collect();
                let keep = |side: &TreeSide, current: &UndirectedGraph| -> Vec<(NodeId, SpTree)> {
                    let delta = graph_delta(&side.graph, current);
                    side.trees
                        .iter()
                        .filter(|(_, tree)| tree_reusable(tree, &gone, &moved, &delta, &weight))
                        .map(|(s, tree)| (*s, tree.clone()))
                        .collect()
                };
                (keep(&prev.topo, topo), keep(&prev.target, target))
            }
            _ => (Vec::new(), Vec::new()),
        };

        let live_ids: Vec<NodeId> = layout.node_ids().filter(|u| live[u.index()]).collect();
        let picked: Vec<NodeId> = (0..SOURCES.min(live_ids.len()))
            .map(|i| live_ids[i * live_ids.len() / SOURCES.min(live_ids.len()).max(1)])
            .collect();
        let mut pairs = 0u64;
        let mut unreachable = 0u64;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for &s in &picked {
            let d_sub = tree_for(&mut topo_trees, topo, s, &weight);
            let d_full = tree_for(&mut target_trees, target, s, &weight);
            for &v in &live_ids {
                if v == s {
                    continue;
                }
                let a = d_sub.dist[v.index()];
                let b = d_full.dist[v.index()];
                if a.is_finite() && b.is_finite() {
                    if b > 0.0 {
                        pairs += 1;
                        let ratio = a / b;
                        sum += ratio;
                        max = max.max(ratio);
                    }
                } else if !a.is_finite() && b.is_finite() {
                    unreachable += 1;
                }
            }
        }

        self.state = Some(ProbeState {
            positions: layout.positions().to_vec(),
            live: live.to_vec(),
            topo: TreeSide {
                graph: topo.clone(),
                trees: topo_trees,
            },
            target: TreeSide {
                graph: target.clone(),
                trees: target_trees,
            },
        });

        StretchSample {
            t,
            sources: picked.len() as u32,
            pairs,
            power_mean: if pairs > 0 { sum / pairs as f64 } else { 1.0 },
            power_max: if pairs > 0 { max } else { 1.0 },
            unreachable,
        }
    }
}

/// The cached-or-computed tree for `source`, memoized into `cache`.
fn tree_for<'c, W>(
    cache: &'c mut Vec<(NodeId, SpTree)>,
    graph: &UndirectedGraph,
    source: NodeId,
    weight: &W,
) -> &'c SpTree
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let at = match cache.binary_search_by_key(&source, |(s, _)| *s) {
        Ok(i) => i,
        Err(i) => {
            let tree = SpTree::compute(graph, source, weight, |_| true);
            cache.insert(i, (source, tree));
            i
        }
    };
    &cache[at].1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_runs_and_reconverges() {
        let report = run_churn(&ChurnScenario::smoke(), 3);
        assert_eq!(report.bursts.len(), 2);
        assert!(report.traffic.broadcasts > 0);
        assert!(report.traffic.deliveries > 0);
        assert!(!report.samples.is_empty());
        assert!(report.live_at_end > 0);
        // The run must spend most probes partition-preserving: the §4
        // rules are supposed to maintain connectivity under churn.
        assert!(
            report.connectivity_fraction > 0.5,
            "connectivity fraction {} too low",
            report.connectivity_fraction
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_churn(&ChurnScenario::smoke(), 11);
        let b = run_churn(&ChurnScenario::smoke(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn metered_churn_is_bit_identical_and_counts_burst_events() {
        let plain = run_churn(&ChurnScenario::smoke(), 3);
        let registry = MetricsRegistry::enabled();
        let metered = run_churn_metered(&ChurnScenario::smoke(), 3, None, &registry);
        assert_eq!(plain, metered, "metrics must not perturb the run");
        let snap = registry.snapshot();
        let batches = snap.counter("reconfig.batches").unwrap();
        assert!(batches > 0, "the reference absorbed no batches");
        // Every sampled burst event is in the engine's counters; the
        // final horizon settle adds drift moves beyond the samples.
        let total_events = plain
            .reference
            .iter()
            .map(|s| u64::from(s.events))
            .sum::<u64>();
        let counted = snap.counter("reconfig.events.move").unwrap()
            + snap.counter("reconfig.events.join").unwrap()
            + snap.counter("reconfig.events.death").unwrap();
        assert!(counted >= total_events, "{counted} < {total_events}");
    }

    #[test]
    fn incremental_probes_match_from_scratch_probes() {
        // The G_α reference through DeltaTopology and the stretch
        // dijkstras through the tree cache must reproduce the
        // from-scratch probes bit for bit. `regrown` measures the
        // incremental work and differs by design; everything else —
        // reference edges, partition agreement, every stretch float —
        // must be identical.
        let scenario = ChurnScenario::smoke();
        for seed in [3u64, 11] {
            let strip = |mut r: ChurnReport| {
                for s in &mut r.reference {
                    s.regrown = 0;
                }
                r
            };
            let inc = strip(run_churn_impl(&scenario, seed, None, true, None, None));
            let scratch = strip(run_churn_impl(&scenario, seed, None, false, None, None));
            assert_eq!(inc, scratch, "seed {seed}");
        }
    }

    #[test]
    fn reference_probe_tracks_every_burst() {
        let report = run_churn(&ChurnScenario::smoke(), 3);
        assert_eq!(report.reference.len(), report.bursts.len());
        for s in &report.reference {
            assert!(s.live > 0);
            assert!(s.events > 0, "bursts carry joins/crashes/moves");
            assert!(
                s.regrown as usize <= 2 * report.scenario.total_nodes(),
                "regrowth is bounded by drift sync + burst update"
            );
        }
        // Judged at the end of the settle window, §4 maintenance should
        // track the centralized construction at least once on the smoke
        // scenario (it reconverges within ~1 expiry window).
        assert!(
            report.reference.iter().any(|s| s.preserved),
            "no settle window ever preserved the centralized partition"
        );
    }

    #[test]
    fn ideal_phy_churn_is_bit_identical() {
        let ideal = cbtc_phy::PhyProfile::ideal();
        let a = run_churn(&ChurnScenario::smoke(), 11);
        let b = run_churn_with(&ChurnScenario::smoke(), 11, Some(&ideal));
        assert_eq!(a, b, "σ = 0 / PRR = 1 churn must replay the ideal run");
    }

    #[test]
    fn metered_lossy_phy_churn_is_bit_identical() {
        // The metrics hooks must stay invisible on the stochastic stack
        // too: a lossy channel reorders packet fates, and an instrument
        // that drew from any of the run's RNG streams — or perturbed
        // the burst/settle schedule — would show up here.
        let profile = cbtc_phy::PhyProfile::realistic(4.0, 3);
        let plain = run_churn_with(&ChurnScenario::smoke(), 7, Some(&profile));
        let registry = MetricsRegistry::enabled();
        let metered = run_churn_metered(&ChurnScenario::smoke(), 7, Some(&profile), &registry);
        assert_eq!(plain, metered, "metrics must not perturb the lossy run");
        let snap = registry.snapshot();
        assert!(
            snap.counter("reconfig.batches").unwrap() > 0,
            "the reference absorbed no batches under phy"
        );
    }

    #[test]
    fn lossy_phy_churn_still_mostly_reconverges() {
        let profile = cbtc_phy::PhyProfile::realistic(4.0, 3);
        let report = run_churn_with(&ChurnScenario::smoke(), 3, Some(&profile));
        assert!(report.traffic.broadcasts > 0);
        // Lossy control traffic degrades but must not collapse §4
        // maintenance on the small smoke scenario.
        assert!(
            report.connectivity_fraction > 0.3,
            "connectivity fraction {} under lossy phy",
            report.connectivity_fraction
        );
        let ideal = run_churn(&ChurnScenario::smoke(), 3);
        assert_ne!(report, ideal, "a lossy channel must change the run");
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_churn(&ChurnScenario::smoke(), 1);
        let b = run_churn(&ChurnScenario::smoke(), 2);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn schedule_spreads_churn_over_bursts() {
        let scenario = ChurnScenario::smoke();
        let schedule = scenario.schedule(9);
        assert_eq!(schedule.bursts.len(), scenario.cycles as usize);
        assert_eq!(schedule.start_ticks.len(), scenario.total_nodes());
        // Joiners all start at burst ticks.
        for j in 0..scenario.joins {
            let s = schedule.start_ticks[scenario.initial_nodes + j];
            assert!(schedule.bursts.contains(&s), "join at non-burst tick {s}");
        }
        // Crash victims are distinct initial nodes.
        let mut victims: Vec<u32> = schedule.crashes.iter().map(|(v, _)| v.raw()).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), scenario.crashes);
        assert!(victims
            .iter()
            .all(|&v| (v as usize) < scenario.initial_nodes));
    }

    #[test]
    fn live_unit_disk_ignores_dead_nodes() {
        use cbtc_geom::Point2;
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(200.0, 0.0),
        ]);
        let g = live_unit_disk(&layout, 150.0, &[true, false, true]);
        assert_eq!(g.edge_count(), 0, "middle node is dead; ends are 200 apart");
        let g2 = live_unit_disk(&layout, 250.0, &[true, false, true]);
        assert!(g2.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let mut s = ChurnScenario::smoke();
        s.crashes = s.initial_nodes;
        assert!(s.validate().is_err());
        let mut s = ChurnScenario::smoke();
        s.mobility_dt = 0;
        assert!(s.validate().is_err());
        let mut s = ChurnScenario::smoke();
        s.cycle_ticks = s.mobility_dt - 1;
        assert!(s.validate().is_err(), "sub-step settle windows rejected");
        let mut s = ChurnScenario::smoke();
        s.speed_min = 0.0;
        assert!(s.validate().is_err());
    }
}
