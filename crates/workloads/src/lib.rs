//! # cbtc-workloads
//!
//! Scenario generators for CBTC experiments.
//!
//! The paper's evaluation (§5) uses *"100 random networks, each with 100
//! nodes … randomly placed in a 1500 × 1500 rectangular region. Each node
//! has a maximum transmission radius of 500."* That setup is
//! [`Scenario::paper_default`]; [`RandomPlacement`] realizes it for any
//! seed. Clustered and jittered-grid placements cover the dense/sparse
//! regimes the paper's introduction motivates, and [`RandomWaypoint`]
//! supplies the mobility for §4 reconfiguration experiments.
//!
//! All generators are deterministic in their seed.
//!
//! # Paper map
//!
//! | item | implements |
//! |------|------------|
//! | [`Scenario`], [`RandomPlacement`] | §5's experimental setup (100 × 100 nodes, 1500², R = 500) |
//! | [`GridPlacement`], [`ClusteredPlacement`] | the dense/sparse regimes §1 motivates, beyond §5 |
//! | [`RandomWaypoint`] | the motion model for §4 reconfiguration experiments |
//! | [`churn`] | the §4 protocol *measured* under sustained mobility, joins and crashes at 10k+ nodes (`cbtc-churn`) |
//! | [`service`] | the §4 maintenance loop served as a sharded, group-commit-batched stream with throughput and latency percentiles (`cbtc serve`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustered;
mod grid;
mod mobility;
mod random;
mod scenario;

pub mod churn;
pub mod phy;
pub mod service;

pub use churn::{
    run_churn, run_churn_metered, run_churn_traced, run_churn_with, ChurnReport, ChurnScenario,
};
pub use clustered::ClusteredPlacement;
pub use grid::GridPlacement;
pub use mobility::RandomWaypoint;
pub use phy::{phy_construction_probe, phy_protocol_probe, PhyConstructionStats, PhyProtocolStats};
pub use random::RandomPlacement;
pub use scenario::Scenario;
pub use service::{
    run_service, run_service_observed, stream_plan, ServiceConfig, ServiceReport, StreamReport,
};
