//! # cbtc-workloads
//!
//! Scenario generators for CBTC experiments.
//!
//! The paper's evaluation (§5) uses *"100 random networks, each with 100
//! nodes … randomly placed in a 1500 × 1500 rectangular region. Each node
//! has a maximum transmission radius of 500."* That setup is
//! [`Scenario::paper_default`]; [`RandomPlacement`] realizes it for any
//! seed. Clustered and jittered-grid placements cover the dense/sparse
//! regimes the paper's introduction motivates, and [`RandomWaypoint`]
//! supplies the mobility for §4 reconfiguration experiments.
//!
//! All generators are deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustered;
mod grid;
mod mobility;
mod random;
mod scenario;

pub use clustered::ClusteredPlacement;
pub use grid::GridPlacement;
pub use mobility::RandomWaypoint;
pub use random::RandomPlacement;
pub use scenario::Scenario;
