//! Random-waypoint mobility, for the §4 reconfiguration experiments.

use cbtc_geom::Point2;
use cbtc_graph::{Layout, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-node motion state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Waypoint {
    target: Point2,
    speed: f64,
    pause_left: f64,
}

/// The classic random-waypoint model: each node picks a uniform target in
/// the field, moves to it at a uniform-random speed, pauses, repeats.
///
/// Drive it with [`RandomWaypoint::advance`], which mutates a [`Layout`]
/// in place; combine with `Engine::move_node` to feed the simulator.
///
/// # Example
///
/// ```
/// use cbtc_geom::Point2;
/// use cbtc_graph::Layout;
/// use cbtc_workloads::RandomWaypoint;
///
/// let mut layout = Layout::new(vec![Point2::new(0.0, 0.0); 3]);
/// let mut model = RandomWaypoint::new(1000.0, 1000.0, 5.0, 15.0, 0.0, 3, 42);
/// model.advance(&mut layout, 10.0);
/// // Nodes moved (speed ≥ 5 for 10 time units).
/// assert!(layout.iter().any(|(_, p)| p.distance(Point2::new(0.0, 0.0)) > 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    width: f64,
    height: f64,
    speed_min: f64,
    speed_max: f64,
    pause: f64,
    states: Vec<Option<Waypoint>>,
    rng_state: u64,
}

impl RandomWaypoint {
    /// Creates a model for `node_count` nodes roaming a `width × height`
    /// field at speeds in `[speed_min, speed_max]` with `pause` time at
    /// each waypoint.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions, invalid speed range, or negative
    /// pause.
    pub fn new(
        width: f64,
        height: f64,
        speed_min: f64,
        speed_max: f64,
        pause: f64,
        node_count: usize,
        seed: u64,
    ) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "field dimensions must be positive"
        );
        assert!(
            speed_min > 0.0 && speed_min <= speed_max,
            "need 0 < speed_min ≤ speed_max"
        );
        assert!(pause >= 0.0, "pause must be non-negative");
        RandomWaypoint {
            width,
            height,
            speed_min,
            speed_max,
            pause,
            states: vec![None; node_count],
            rng_state: seed,
        }
    }

    fn rng(&mut self) -> StdRng {
        // Evolve the stored state so successive draws differ but the whole
        // trajectory is a pure function of the seed.
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        StdRng::seed_from_u64(self.rng_state)
    }

    fn fresh_waypoint(&mut self) -> Waypoint {
        let mut rng = self.rng();
        Waypoint {
            target: Point2::new(
                rng.gen_range(0.0..self.width),
                rng.gen_range(0.0..self.height),
            ),
            speed: if self.speed_min == self.speed_max {
                self.speed_min
            } else {
                rng.gen_range(self.speed_min..self.speed_max)
            },
            pause_left: 0.0,
        }
    }

    /// Advances every node by `dt` time units, mutating the layout.
    ///
    /// # Panics
    ///
    /// Panics if the layout size does not match the model's node count or
    /// `dt` is not positive.
    pub fn advance(&mut self, layout: &mut Layout, dt: f64) {
        assert_eq!(
            layout.len(),
            self.states.len(),
            "layout/model size mismatch"
        );
        assert!(dt > 0.0, "dt must be positive");
        for i in 0..self.states.len() {
            let id = NodeId::new(i as u32);
            let mut remaining = dt;
            while remaining > 0.0 {
                let state = match self.states[i] {
                    Some(s) => s,
                    None => {
                        let w = self.fresh_waypoint();
                        self.states[i] = Some(w);
                        w
                    }
                };
                if state.pause_left > 0.0 {
                    let wait = state.pause_left.min(remaining);
                    self.states[i] = Some(Waypoint {
                        pause_left: state.pause_left - wait,
                        ..state
                    });
                    remaining -= wait;
                    if remaining <= 0.0 {
                        break;
                    }
                    // Pause over: pick the next waypoint.
                    self.states[i] = Some(self.fresh_waypoint());
                    continue;
                }
                let pos = layout.position(id);
                let to_target = state.target - pos;
                let dist = to_target.norm();
                let step = state.speed * remaining;
                if step >= dist {
                    // Arrive and start pausing.
                    layout.set_position(id, state.target);
                    remaining -= if state.speed > 0.0 {
                        dist / state.speed
                    } else {
                        remaining
                    };
                    self.states[i] = Some(Waypoint {
                        pause_left: self.pause,
                        ..state
                    });
                    if self.pause == 0.0 {
                        self.states[i] = Some(self.fresh_waypoint());
                    }
                } else {
                    layout.set_position(id, pos + to_target * (step / dist));
                    remaining = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed_layout(n: usize) -> Layout {
        Layout::new(vec![Point2::new(500.0, 500.0); n])
    }

    #[test]
    fn nodes_stay_in_field() {
        let mut layout = boxed_layout(10);
        let mut model = RandomWaypoint::new(1000.0, 1000.0, 1.0, 20.0, 2.0, 10, 7);
        for _ in 0..50 {
            model.advance(&mut layout, 5.0);
            for (_, p) in layout.iter() {
                assert!((0.0..=1000.0).contains(&p.x), "x out of field: {p}");
                assert!((0.0..=1000.0).contains(&p.y), "y out of field: {p}");
            }
        }
    }

    #[test]
    fn movement_bounded_by_speed() {
        let mut layout = boxed_layout(5);
        let mut model = RandomWaypoint::new(1000.0, 1000.0, 2.0, 10.0, 0.0, 5, 3);
        let before: Vec<Point2> = layout.iter().map(|(_, p)| p).collect();
        model.advance(&mut layout, 4.0);
        for (i, (_, after)) in layout.iter().enumerate() {
            assert!(
                before[i].distance(after) <= 10.0 * 4.0 + 1e-9,
                "node {i} moved too far"
            );
        }
    }

    #[test]
    fn pause_halts_motion() {
        let mut layout = boxed_layout(1);
        // Huge speed: the node reaches its waypoint almost immediately,
        // then pauses for 100 time units.
        let mut model = RandomWaypoint::new(1000.0, 1000.0, 1e6, 1e6, 100.0, 1, 5);
        model.advance(&mut layout, 1.0);
        let at_waypoint = layout.position(NodeId::new(0));
        model.advance(&mut layout, 10.0);
        assert_eq!(layout.position(NodeId::new(0)), at_waypoint);
    }

    #[test]
    fn deterministic_trajectories() {
        let run = || {
            let mut layout = boxed_layout(4);
            let mut model = RandomWaypoint::new(800.0, 800.0, 1.0, 5.0, 1.0, 4, 11);
            for _ in 0..20 {
                model.advance(&mut layout, 3.0);
            }
            layout
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_rejected() {
        let mut layout = boxed_layout(3);
        let mut model = RandomWaypoint::new(800.0, 800.0, 1.0, 5.0, 1.0, 4, 1);
        model.advance(&mut layout, 1.0);
    }
}
