//! Uniform random placement — the paper's workload.

use cbtc_core::Network;
use cbtc_geom::Point2;
use cbtc_graph::Layout;
use cbtc_radio::PowerLaw;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::Scenario;

/// Places nodes uniformly at random in a rectangle, as in §5 of the paper.
///
/// # Example
///
/// ```
/// use cbtc_workloads::{RandomPlacement, Scenario};
///
/// let gen = RandomPlacement::from_scenario(&Scenario::smoke());
/// let net = gen.generate(7);
/// assert_eq!(net.len(), 25);
/// // Determinism: same seed, same network.
/// assert_eq!(net, gen.generate(7));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomPlacement {
    node_count: usize,
    width: f64,
    height: f64,
    max_range: f64,
    exponent: f64,
}

impl RandomPlacement {
    /// A generator for `node_count` nodes in a `width × height` field with
    /// radio range `max_range` (free-space exponent 2).
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions or range.
    pub fn new(node_count: usize, width: f64, height: f64, max_range: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "field dimensions must be positive"
        );
        assert!(max_range >= 1.0, "max range must be at least 1");
        RandomPlacement {
            node_count,
            width,
            height,
            max_range,
            exponent: 2.0,
        }
    }

    /// A generator matching a [`Scenario`].
    pub fn from_scenario(scenario: &Scenario) -> Self {
        RandomPlacement::new(
            scenario.node_count,
            scenario.width,
            scenario.height,
            scenario.max_range,
        )
    }

    /// Sets the path-loss exponent of the generated networks' radio model.
    pub fn with_exponent(mut self, exponent: f64) -> Self {
        self.exponent = exponent;
        self
    }

    /// Generates the layout only.
    pub fn generate_layout(&self, seed: u64) -> Layout {
        let mut rng = StdRng::seed_from_u64(seed);
        Layout::new(
            (0..self.node_count)
                .map(|_| {
                    Point2::new(
                        rng.gen_range(0.0..self.width),
                        rng.gen_range(0.0..self.height),
                    )
                })
                .collect(),
        )
    }

    /// Generates a full network (layout + radio model).
    pub fn generate(&self, seed: u64) -> Network {
        let model =
            PowerLaw::new(self.exponent, 1.0, self.max_range).expect("validated parameters");
        Network::new(self.generate_layout(seed), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_inside_field() {
        let gen = RandomPlacement::new(200, 1500.0, 1000.0, 500.0);
        let layout = gen.generate_layout(42);
        assert_eq!(layout.len(), 200);
        for (_, p) in layout.iter() {
            assert!((0.0..1500.0).contains(&p.x));
            assert!((0.0..1000.0).contains(&p.y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let gen = RandomPlacement::new(10, 100.0, 100.0, 50.0);
        assert_ne!(gen.generate_layout(1), gen.generate_layout(2));
    }

    #[test]
    fn paper_scenario_roundtrip() {
        let gen = RandomPlacement::from_scenario(&Scenario::paper_default());
        let net = gen.generate(0);
        assert_eq!(net.len(), 100);
        assert_eq!(net.max_range(), 500.0);
    }

    #[test]
    fn exponent_override() {
        let gen = RandomPlacement::new(5, 100.0, 100.0, 50.0).with_exponent(4.0);
        let net = gen.generate(3);
        assert_eq!(net.model().exponent(), 4.0);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn bad_dimensions_rejected() {
        let _ = RandomPlacement::new(5, 0.0, 100.0, 50.0);
    }
}
