//! Property-based tests of the scenario generators and the sharded,
//! batched reconfiguration service.

use cbtc_geom::Point2;
use cbtc_graph::Layout;
use cbtc_metrics::MetricsRegistry;
use cbtc_workloads::{
    run_service, run_service_observed, stream_plan, ClusteredPlacement, GridPlacement,
    RandomPlacement, RandomWaypoint, ServiceConfig, ServiceReport,
};
use proptest::prelude::*;

/// Strips wall-clock fields (and the latency histograms built from
/// them), leaving the part of a report that must be deterministic.
fn deterministic(report: &ServiceReport) -> ServiceReport {
    let mut r = report.clone();
    r.elapsed_secs = 0.0;
    r.events_per_sec = 0.0;
    r.latency.clear();
    r.metrics = Default::default();
    for s in &mut r.per_stream {
        s.elapsed_secs = 0.0;
        s.events_per_sec = 0.0;
        s.latency.clear();
    }
    r
}

/// Additionally strips the commit grouping, for comparisons across
/// batch sizes (same events, same final state, different commits).
fn grouping_free(report: &ServiceReport) -> ServiceReport {
    let mut r = deterministic(report);
    r.batches = 0;
    r.batch_max = 0;
    r.batch_wait_us = 0;
    r.stream_workers = 0;
    for s in &mut r.per_stream {
        s.batches = 0;
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_placement_is_in_field_and_deterministic(
        n in 1usize..60,
        w in 10.0f64..2000.0,
        h in 10.0f64..2000.0,
        seed in 0u64..1000,
    ) {
        let gen = RandomPlacement::new(n, w, h, 100.0);
        let a = gen.generate_layout(seed);
        prop_assert_eq!(a.len(), n);
        for (_, p) in a.iter() {
            prop_assert!((0.0..w).contains(&p.x));
            prop_assert!((0.0..h).contains(&p.y));
        }
        prop_assert_eq!(a, gen.generate_layout(seed));
    }

    #[test]
    fn clustered_placement_in_field(
        clusters in 1usize..6,
        per in 1usize..12,
        spread in 1.0f64..200.0,
        seed in 0u64..100,
    ) {
        let gen = ClusteredPlacement::new(clusters, per, spread, 1000.0, 800.0, 400.0);
        let layout = gen.generate_layout(seed);
        prop_assert_eq!(layout.len(), clusters * per);
        for (_, p) in layout.iter() {
            prop_assert!((0.0..=1000.0).contains(&p.x));
            prop_assert!((0.0..=800.0).contains(&p.y));
        }
    }

    #[test]
    fn grid_jitter_bounded(
        cols in 1usize..8,
        rows in 1usize..8,
        jitter in 0.0f64..30.0,
        seed in 0u64..100,
    ) {
        let spacing = 100.0;
        let layout = GridPlacement::new(cols, rows, spacing, jitter, 400.0).generate_layout(seed);
        prop_assert_eq!(layout.len(), cols * rows);
        for (i, (_, p)) in layout.iter().enumerate() {
            let gx = (i % cols) as f64 * spacing;
            let gy = (i / cols) as f64 * spacing;
            prop_assert!((p.x - gx).abs() <= jitter + 1e-9);
            prop_assert!((p.y - gy).abs() <= jitter + 1e-9);
        }
    }

    #[test]
    fn waypoint_motion_stays_in_field_and_respects_speed(
        n in 1usize..10,
        speed_max in 1.0f64..50.0,
        dt in 0.1f64..20.0,
        steps in 1usize..15,
        seed in 0u64..50,
    ) {
        let side = 500.0;
        let mut layout = Layout::new(vec![Point2::new(side / 2.0, side / 2.0); n]);
        let mut model = RandomWaypoint::new(side, side, 0.5, speed_max, 1.0, n, seed);
        for _ in 0..steps {
            let before: Vec<Point2> = layout.iter().map(|(_, p)| p).collect();
            model.advance(&mut layout, dt);
            for (i, (_, after)) in layout.iter().enumerate() {
                prop_assert!((0.0..=side).contains(&after.x));
                prop_assert!((0.0..=side).contains(&after.y));
                prop_assert!(
                    before[i].distance(after) <= speed_max * dt + 1e-6,
                    "node {i} exceeded its speed limit"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The serving pipeline's equivalence web, across streams × batch
    /// sizes × seeds × event mixes:
    ///
    /// * every stream's final graph matches a from-scratch construction;
    /// * a batched run is bit-identical (minus commit grouping) to the
    ///   event-at-a-time run of the same config;
    /// * stream `s` of a sharded run is bit-identical to the standalone
    ///   single-stream run of `stream_plan(config, seed, s)`;
    /// * a metrics-instrumented run is bit-identical to a bare one.
    #[test]
    fn sharded_batched_serve_equals_sequential_single_stream(
        seed in 0u64..u64::MAX,
        death in 20u32..130,
        join in 20u32..130,
        streams_idx in 0usize..3,
        batch_idx in 0usize..3,
    ) {
        let streams = [1u32, 2, 4][streams_idx];
        let (batch_max, batch_wait_us) = [(1u32, 0u64), (4, 50), (32, 200)][batch_idx];
        let config = ServiceConfig {
            death_per_mille: death,
            join_per_mille: join,
            streams,
            batch_max,
            batch_wait_us,
            ..ServiceConfig::sized(96, 240)
        };
        let report = run_service(&config, seed);
        prop_assert!(report.matches_scratch, "a stream drifted from scratch");
        prop_assert_eq!(report.moves + report.joins + report.deaths, 240);
        for s in &report.per_stream {
            prop_assert!(s.matches_scratch, "stream {} drifted", s.stream);
        }

        // Batching changes commit grouping, never outcomes.
        let sequential = run_service(
            &ServiceConfig { batch_max: 1, batch_wait_us: 0, ..config },
            seed,
        );
        prop_assert_eq!(grouping_free(&report), grouping_free(&sequential));

        // Shard equivalence: each stream is its standalone plan.
        for s in 0..streams {
            let (plan, stream_seed) = stream_plan(&config, seed, s);
            let solo = run_service(&plan, stream_seed);
            let mut lone = solo.per_stream[0].clone();
            let mut shard = report.per_stream[s as usize].clone();
            lone.stream = s;
            lone.elapsed_secs = 0.0;
            shard.elapsed_secs = 0.0;
            lone.events_per_sec = 0.0;
            shard.events_per_sec = 0.0;
            lone.latency.clear();
            shard.latency.clear();
            prop_assert_eq!(lone, shard, "stream {} != its standalone plan", s);
        }

        // Observability is inert.
        let observed = run_service_observed(&config, seed, &MetricsRegistry::enabled(), None);
        prop_assert_eq!(deterministic(&observed), deterministic(&report));
    }
}
