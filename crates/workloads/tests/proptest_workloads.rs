//! Property-based tests of the scenario generators.

use cbtc_geom::Point2;
use cbtc_graph::Layout;
use cbtc_workloads::{ClusteredPlacement, GridPlacement, RandomPlacement, RandomWaypoint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_placement_is_in_field_and_deterministic(
        n in 1usize..60,
        w in 10.0f64..2000.0,
        h in 10.0f64..2000.0,
        seed in 0u64..1000,
    ) {
        let gen = RandomPlacement::new(n, w, h, 100.0);
        let a = gen.generate_layout(seed);
        prop_assert_eq!(a.len(), n);
        for (_, p) in a.iter() {
            prop_assert!((0.0..w).contains(&p.x));
            prop_assert!((0.0..h).contains(&p.y));
        }
        prop_assert_eq!(a, gen.generate_layout(seed));
    }

    #[test]
    fn clustered_placement_in_field(
        clusters in 1usize..6,
        per in 1usize..12,
        spread in 1.0f64..200.0,
        seed in 0u64..100,
    ) {
        let gen = ClusteredPlacement::new(clusters, per, spread, 1000.0, 800.0, 400.0);
        let layout = gen.generate_layout(seed);
        prop_assert_eq!(layout.len(), clusters * per);
        for (_, p) in layout.iter() {
            prop_assert!((0.0..=1000.0).contains(&p.x));
            prop_assert!((0.0..=800.0).contains(&p.y));
        }
    }

    #[test]
    fn grid_jitter_bounded(
        cols in 1usize..8,
        rows in 1usize..8,
        jitter in 0.0f64..30.0,
        seed in 0u64..100,
    ) {
        let spacing = 100.0;
        let layout = GridPlacement::new(cols, rows, spacing, jitter, 400.0).generate_layout(seed);
        prop_assert_eq!(layout.len(), cols * rows);
        for (i, (_, p)) in layout.iter().enumerate() {
            let gx = (i % cols) as f64 * spacing;
            let gy = (i / cols) as f64 * spacing;
            prop_assert!((p.x - gx).abs() <= jitter + 1e-9);
            prop_assert!((p.y - gy).abs() <= jitter + 1e-9);
        }
    }

    #[test]
    fn waypoint_motion_stays_in_field_and_respects_speed(
        n in 1usize..10,
        speed_max in 1.0f64..50.0,
        dt in 0.1f64..20.0,
        steps in 1usize..15,
        seed in 0u64..50,
    ) {
        let side = 500.0;
        let mut layout = Layout::new(vec![Point2::new(side / 2.0, side / 2.0); n]);
        let mut model = RandomWaypoint::new(side, side, 0.5, speed_max, 1.0, n, seed);
        for _ in 0..steps {
            let before: Vec<Point2> = layout.iter().map(|(_, p)| p).collect();
            model.advance(&mut layout, dt);
            for (i, (_, after)) in layout.iter().enumerate() {
                prop_assert!((0.0..=side).contains(&after.x));
                prop_assert!((0.0..=side).contains(&after.y));
                prop_assert!(
                    before[i].distance(after) <= speed_max * dt + 1e-6,
                    "node {i} exceeded its speed limit"
                );
            }
        }
    }
}
