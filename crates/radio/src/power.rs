//! The transmission/reception power level newtype.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A power level on a linear scale (arbitrary units).
///
/// Newtype over `f64` so that powers cannot be silently confused with
/// distances or angles. Powers are finite and non-negative by construction.
///
/// # Example
///
/// ```
/// use cbtc_radio::Power;
///
/// let p = Power::new(4.0);
/// assert_eq!((p * 2.0).linear(), 8.0);
/// assert!(p < Power::new(5.0));
/// assert_eq!(p.max(Power::new(3.0)), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power level from a linear value.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is negative or not finite.
    pub fn new(linear: f64) -> Self {
        assert!(
            linear.is_finite() && linear >= 0.0,
            "power must be finite and non-negative, got {linear}"
        );
        Power(linear)
    }

    /// The linear value.
    pub fn linear(self) -> f64 {
        self.0
    }

    /// The value in decibels relative to 1 unit (`10·log₁₀`), `-inf` for
    /// zero power.
    pub fn db(self) -> f64 {
        10.0 * self.0.log10()
    }

    /// The larger of two powers.
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// The smaller of two powers.
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// Total order (powers are finite, so this is consistent with
    /// `PartialOrd`).
    pub fn total_cmp(&self, other: &Power) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Default for Power {
    fn default() -> Self {
        Power::ZERO
    }
}

impl Eq for Power {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Power {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power::new(self.0 + rhs.0)
    }
}

impl Sub for Power {
    type Output = Power;
    /// Saturating at zero: power differences below zero clamp to zero.
    fn sub(self, rhs: Power) -> Power {
        Power::new((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power::new(self.0 * rhs)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power::new(self.0 / rhs)
    }
}

impl Div for Power {
    type Output = f64;
    /// The ratio of two powers (e.g. attenuation `tx / rx`).
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Power::new(2.5);
        assert_eq!(p.linear(), 2.5);
        assert_eq!(Power::ZERO.linear(), 0.0);
        assert_eq!(Power::default(), Power::ZERO);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn negative_power_rejected() {
        let _ = Power::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn nan_power_rejected() {
        let _ = Power::new(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = Power::new(3.0);
        let b = Power::new(1.0);
        assert_eq!((a + b).linear(), 4.0);
        assert_eq!((a - b).linear(), 2.0);
        assert_eq!((b - a).linear(), 0.0); // saturating
        assert_eq!((a * 2.0).linear(), 6.0);
        assert_eq!((a / 2.0).linear(), 1.5);
        assert_eq!(a / b, 3.0);
    }

    #[test]
    fn ordering_and_extrema() {
        let mut v = [Power::new(3.0), Power::new(1.0), Power::new(2.0)];
        v.sort();
        assert_eq!(v[0], Power::new(1.0));
        assert_eq!(v[2], Power::new(3.0));
        assert_eq!(Power::new(1.0).max(Power::new(2.0)), Power::new(2.0));
        assert_eq!(Power::new(1.0).min(Power::new(2.0)), Power::new(1.0));
    }

    #[test]
    fn decibels() {
        assert!((Power::new(1.0).db() - 0.0).abs() < 1e-12);
        assert!((Power::new(100.0).db() - 20.0).abs() < 1e-12);
        assert_eq!(Power::ZERO.db(), f64::NEG_INFINITY);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Power::new(1.23).to_string().is_empty());
    }
}
