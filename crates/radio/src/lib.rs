//! # cbtc-radio
//!
//! Wireless propagation substrate for the CBTC reproduction.
//!
//! The paper abstracts the radio as a *power function* `p(d)` giving the
//! minimum transmission power needed to establish a link over distance `d`,
//! with a common maximum power `P = p(R)`. Transmission power "increases as
//! the n-th power of the distance … for some n ≥ 2" (citing Rappaport). The
//! protocol additionally assumes that from a message's transmission power
//! (carried in the message) and its reception power, the receiver can
//! estimate `p(d(u, v))`.
//!
//! This crate supplies exactly those facilities:
//!
//! * [`Power`] — a transmission/reception power level (linear scale);
//! * [`PathLoss`] and [`PowerLaw`] — the `p(d) = S·dⁿ` propagation model
//!   with its inverse, reception power, and maximum range `R`;
//! * [`PowerSchedule`] — the `Increase` function of Figure 1
//!   (`Increaseᵏ(p0) = P` for sufficiently large `k`), with the paper's
//!   default `Increase(p) = 2p`;
//! * [`estimate_required_power`] — the reception-based estimate of
//!   `p(d(u, v))` used when a node answers a "Hello";
//! * [`DirectionSensor`] — angle-of-arrival sensing with an optional error
//!   bound (the paper assumes perfect directional information; the noise
//!   knob supports robustness experiments).
//!
//! # Paper map
//!
//! | item | implements |
//! |------|------------|
//! | [`PathLoss`], [`PowerLaw`] | §1: `p(d) = S·dⁿ`, `n ≥ 2`, maximum power `P = p(R)` |
//! | [`PowerSchedule`] | Figure 1's `Increase` with the default `Increase(p) = 2p` |
//! | [`estimate_required_power`] | §2's reception-power estimate of `p(d(u, v))` |
//! | [`PowerBasis`] | §2's measurement assumption as a pricing mode: compute powers from geometry or from the measured attenuation |
//! | [`DirectionSensor`] | §2's angle-of-arrival assumption (exact or bounded-error) |
//! | [`LinkGain`], [`Prr`] | beyond the paper: the stochastic-channel interface (`cbtc-phy` supplies shadowing/fading/PRR implementations; [`IdealGain`] + [`PerfectPrr`] reproduce the paper's radio) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod channel;
mod pathloss;
mod power;
mod schedule;
mod sensing;

pub use basis::PowerBasis;
pub use channel::{IdealGain, LinkGain, PerfectPrr, Prr};
pub use pathloss::{InvalidModelError, PathLoss, PowerLaw};
pub use power::Power;
pub use schedule::{PowerSchedule, ScheduleKind};
pub use sensing::DirectionSensor;

/// Estimates the minimum power needed to reach the sender of a message,
/// from the power it was sent with and the power it was received at.
///
/// This is the paper's §2 assumption: "given the transmission power `p` and
/// the reception power `p′`, `u` can estimate `p(d(u, v))`". Under any
/// distance-monotone [`PathLoss`] model the attenuation `p / p′` determines
/// the distance, hence the required power.
///
/// # Example
///
/// ```
/// use cbtc_radio::{estimate_required_power, PathLoss, Power, PowerLaw};
///
/// let model = PowerLaw::paper_default();
/// let d = 123.0;
/// let tx = model.max_power();
/// let rx = model.reception_power(tx, d);
/// let est = estimate_required_power(&model, tx, rx);
/// assert!((est.linear() - model.required_power(d).linear()).abs() < 1e-6);
/// ```
pub fn estimate_required_power<M: PathLoss + ?Sized>(
    model: &M,
    tx_power: Power,
    rx_power: Power,
) -> Power {
    let d = model.distance_from_attenuation(tx_power, rx_power);
    model.required_power(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_matches_true_required_power_across_distances() {
        let model = PowerLaw::new(2.0, 1.0, 500.0).unwrap();
        for d in [1.0, 10.0, 99.5, 250.0, 499.9, 500.0] {
            let tx = model.max_power();
            let rx = model.reception_power(tx, d);
            let est = estimate_required_power(&model, tx, rx);
            let truth = model.required_power(d);
            assert!(
                (est.linear() - truth.linear()).abs() / truth.linear() < 1e-9,
                "d={d}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn estimate_is_independent_of_tx_power_used() {
        // Whether the Hello was heard at low or high power, the estimated
        // required power is the same — only the ratio matters.
        let model = PowerLaw::new(4.0, 2.0, 500.0).unwrap();
        let d = 77.0;
        let est_low = {
            let tx = model.required_power(d); // barely reaches
            estimate_required_power(&model, tx, model.reception_power(tx, d))
        };
        let est_high = {
            let tx = model.max_power();
            estimate_required_power(&model, tx, model.reception_power(tx, d))
        };
        assert!((est_low.linear() - est_high.linear()).abs() / est_high.linear() < 1e-9);
    }
}
