//! Angle-of-arrival sensing.
//!
//! CBTC "does not assume that nodes have GPS information available; rather
//! it depends only on directional information" (§1). The paper assumes a
//! node can estimate the direction a transmission arrives from (the
//! Angle-of-Arrival problem, solvable with multiple directional antennas).
//!
//! [`DirectionSensor`] models that estimate. By default it is exact, as the
//! paper assumes; an optional bounded error term supports robustness
//! experiments beyond the paper.

use serde::{Deserialize, Serialize};

/// An angle-of-arrival sensor with an optional bounded error.
///
/// The error model is a deterministic, per-(seed, sender, receiver)
/// perturbation uniformly distributed in `[-max_error, +max_error]`,
/// derived by hashing the link identity together with the sensor's seed —
/// so repeated readings of the same link are consistent (a real antenna
/// array's bias), results are reproducible regardless of execution order
/// or thread count, and distinct seeds produce statistically independent
/// error fields for multi-trial robustness experiments.
///
/// # Example
///
/// ```
/// use cbtc_radio::DirectionSensor;
///
/// let exact = DirectionSensor::exact();
/// assert_eq!(exact.perturbation(1, 2), 0.0);
///
/// let noisy = DirectionSensor::with_error_bound(0.05);
/// let e = noisy.perturbation(1, 2);
/// assert!(e.abs() <= 0.05);
/// assert_eq!(e, noisy.perturbation(1, 2)); // consistent per link
///
/// // Different seeds give different (but equally bounded) error fields.
/// let reseeded = DirectionSensor::with_error_bound_seeded(0.05, 7);
/// assert_ne!(e, reseeded.perturbation(1, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionSensor {
    max_error: f64,
    seed: u64,
}

impl DirectionSensor {
    /// A sensor with perfect angle-of-arrival estimation (the paper's
    /// model).
    pub fn exact() -> Self {
        DirectionSensor {
            max_error: 0.0,
            seed: 0,
        }
    }

    /// A sensor whose estimates err by at most `max_error` radians, with
    /// the default error field (seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `max_error` is negative or not finite.
    pub fn with_error_bound(max_error: f64) -> Self {
        DirectionSensor::with_error_bound_seeded(max_error, 0)
    }

    /// A sensor whose estimates err by at most `max_error` radians, with
    /// the error field drawn from `seed`. Two sensors with equal
    /// `(max_error, seed)` read identically on every link.
    ///
    /// # Panics
    ///
    /// Panics if `max_error` is negative or not finite.
    pub fn with_error_bound_seeded(max_error: f64, seed: u64) -> Self {
        assert!(
            max_error.is_finite() && max_error >= 0.0,
            "direction error bound must be finite and non-negative, got {max_error}"
        );
        DirectionSensor { max_error, seed }
    }

    /// The configured maximum error, in radians.
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// The seed of the per-link error field.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The angular perturbation this sensor applies when node `observer`
    /// measures the bearing of node `source`, in radians within
    /// `[-max_error, +max_error]`.
    ///
    /// A pure function of `(seed, observer, source)` — never of call
    /// order — so parallel runs are reproducible at any thread count.
    pub fn perturbation(&self, observer: u64, source: u64) -> f64 {
        if self.max_error == 0.0 {
            return 0.0;
        }
        // SplitMix64 over the seeded link identity: cheap, stateless,
        // reproducible. Seed 0 reproduces the historical unseeded field.
        let mut z = observer
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(source.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(self.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map to [-1, 1).
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        unit * self.max_error
    }
}

impl Default for DirectionSensor {
    fn default() -> Self {
        DirectionSensor::exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sensor_has_no_error() {
        let s = DirectionSensor::exact();
        assert_eq!(s.max_error(), 0.0);
        for (a, b) in [(0, 1), (5, 9), (100, 100)] {
            assert_eq!(s.perturbation(a, b), 0.0);
        }
        assert_eq!(DirectionSensor::default(), DirectionSensor::exact());
    }

    #[test]
    fn error_is_bounded_and_deterministic() {
        let s = DirectionSensor::with_error_bound(0.1);
        for a in 0..50u64 {
            for b in 0..10u64 {
                let e = s.perturbation(a, b);
                assert!(e.abs() <= 0.1, "out of bound: {e}");
                assert_eq!(e, s.perturbation(a, b));
            }
        }
    }

    #[test]
    fn error_is_asymmetric_per_direction() {
        // The perturbation u measures of v generally differs from what v
        // measures of u — two different antenna arrays.
        let s = DirectionSensor::with_error_bound(0.2);
        let differs =
            (0..20u64).any(|i| (s.perturbation(i, i + 1) - s.perturbation(i + 1, i)).abs() > 1e-12);
        assert!(differs);
    }

    #[test]
    fn errors_spread_over_the_range() {
        let s = DirectionSensor::with_error_bound(1.0);
        let samples: Vec<f64> = (0..1000u64).map(|i| s.perturbation(i, 1)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} far from 0");
        assert!(samples.iter().any(|e| *e > 0.5));
        assert!(samples.iter().any(|e| *e < -0.5));
    }

    #[test]
    #[should_panic(expected = "error bound")]
    fn negative_bound_rejected() {
        let _ = DirectionSensor::with_error_bound(-0.1);
    }

    #[test]
    fn seeds_select_independent_error_fields() {
        let a = DirectionSensor::with_error_bound_seeded(0.1, 1);
        let b = DirectionSensor::with_error_bound_seeded(0.1, 2);
        assert_eq!(a.seed(), 1);
        // Same seed → identical field; different seed → a different field
        // on at least one link (overwhelmingly, on most links).
        let a2 = DirectionSensor::with_error_bound_seeded(0.1, 1);
        let differs = (0..50u64).any(|i| a.perturbation(i, i + 1) != b.perturbation(i, i + 1));
        assert!(differs, "seeds 1 and 2 produced identical fields");
        for i in 0..50u64 {
            assert_eq!(a.perturbation(i, i + 1), a2.perturbation(i, i + 1));
            assert!(b.perturbation(i, i + 1).abs() <= 0.1);
        }
    }

    #[test]
    fn default_seed_matches_unseeded_constructor() {
        let unseeded = DirectionSensor::with_error_bound(0.2);
        let seeded = DirectionSensor::with_error_bound_seeded(0.2, 0);
        for (a, b) in [(0u64, 1u64), (7, 3), (100, 250)] {
            assert_eq!(unseeded.perturbation(a, b), seeded.perturbation(a, b));
        }
    }
}
