//! Angle-of-arrival sensing.
//!
//! CBTC "does not assume that nodes have GPS information available; rather
//! it depends only on directional information" (§1). The paper assumes a
//! node can estimate the direction a transmission arrives from (the
//! Angle-of-Arrival problem, solvable with multiple directional antennas).
//!
//! [`DirectionSensor`] models that estimate. By default it is exact, as the
//! paper assumes; an optional bounded error term supports robustness
//! experiments beyond the paper.

use serde::{Deserialize, Serialize};

/// An angle-of-arrival sensor with an optional bounded error.
///
/// The error model is a deterministic, per-(sensor, link) perturbation
/// uniformly distributed in `[-max_error, +max_error]`, derived by hashing
/// the link identity — so repeated readings of the same link are
/// consistent (a real antenna array's bias), and results are reproducible.
///
/// # Example
///
/// ```
/// use cbtc_radio::DirectionSensor;
///
/// let exact = DirectionSensor::exact();
/// assert_eq!(exact.perturbation(1, 2), 0.0);
///
/// let noisy = DirectionSensor::with_error_bound(0.05);
/// let e = noisy.perturbation(1, 2);
/// assert!(e.abs() <= 0.05);
/// assert_eq!(e, noisy.perturbation(1, 2)); // consistent per link
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionSensor {
    max_error: f64,
}

impl DirectionSensor {
    /// A sensor with perfect angle-of-arrival estimation (the paper's
    /// model).
    pub fn exact() -> Self {
        DirectionSensor { max_error: 0.0 }
    }

    /// A sensor whose estimates err by at most `max_error` radians.
    ///
    /// # Panics
    ///
    /// Panics if `max_error` is negative or not finite.
    pub fn with_error_bound(max_error: f64) -> Self {
        assert!(
            max_error.is_finite() && max_error >= 0.0,
            "direction error bound must be finite and non-negative, got {max_error}"
        );
        DirectionSensor { max_error }
    }

    /// The configured maximum error, in radians.
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// The angular perturbation this sensor applies when node `observer`
    /// measures the bearing of node `source`, in radians within
    /// `[-max_error, +max_error]`.
    pub fn perturbation(&self, observer: u64, source: u64) -> f64 {
        if self.max_error == 0.0 {
            return 0.0;
        }
        // SplitMix64 over the link identity: cheap, stateless, reproducible.
        let mut z = observer
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(source.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map to [-1, 1).
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        unit * self.max_error
    }
}

impl Default for DirectionSensor {
    fn default() -> Self {
        DirectionSensor::exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sensor_has_no_error() {
        let s = DirectionSensor::exact();
        assert_eq!(s.max_error(), 0.0);
        for (a, b) in [(0, 1), (5, 9), (100, 100)] {
            assert_eq!(s.perturbation(a, b), 0.0);
        }
        assert_eq!(DirectionSensor::default(), DirectionSensor::exact());
    }

    #[test]
    fn error_is_bounded_and_deterministic() {
        let s = DirectionSensor::with_error_bound(0.1);
        for a in 0..50u64 {
            for b in 0..10u64 {
                let e = s.perturbation(a, b);
                assert!(e.abs() <= 0.1, "out of bound: {e}");
                assert_eq!(e, s.perturbation(a, b));
            }
        }
    }

    #[test]
    fn error_is_asymmetric_per_direction() {
        // The perturbation u measures of v generally differs from what v
        // measures of u — two different antenna arrays.
        let s = DirectionSensor::with_error_bound(0.2);
        let differs =
            (0..20u64).any(|i| (s.perturbation(i, i + 1) - s.perturbation(i + 1, i)).abs() > 1e-12);
        assert!(differs);
    }

    #[test]
    fn errors_spread_over_the_range() {
        let s = DirectionSensor::with_error_bound(1.0);
        let samples: Vec<f64> = (0..1000u64).map(|i| s.perturbation(i, 1)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} far from 0");
        assert!(samples.iter().any(|e| *e > 0.5));
        assert!(samples.iter().any(|e| *e < -0.5));
    }

    #[test]
    #[should_panic(expected = "error bound")]
    fn negative_bound_rejected() {
        let _ = DirectionSensor::with_error_bound(-0.1);
    }
}
