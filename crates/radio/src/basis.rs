//! What "required power" is computed *from*: geometry or measurement.

use serde::{Deserialize, Serialize};

/// The distance a power computation is priced against.
///
/// The paper's §2 measurement assumption — "given the transmission power
/// `p` and the reception power `p′`, `u` can estimate `p(d(u, v))`" —
/// means a real node never sees geometric distance at all: it sees the
/// *attenuation* of the channel, which under shadowing corresponds to
/// the effective distance `d_eff = d·g^(−1/n)`, not `d`. Sethu & Gerety
/// (arXiv:0709.0961) show topology control must order and price links
/// by that measured cost. [`PowerBasis`] selects which of the two a
/// pipeline uses:
///
/// * [`PowerBasis::Geometric`] — price links by geometric distance, as
///   every pre-existing path does. On a stochastic channel this
///   *under*-prices shadowed links (the transmitter pays `p(d)` while
///   the channel demands `p(d_eff)`), which is exactly the σ = 8 dB
///   lifetime collapse measured in `BENCH_phy.json`.
/// * [`PowerBasis::Measured`] — price links by the §2 attenuation
///   estimate, i.e. by `d_eff`. On the ideal channel `g ≡ 1` so
///   `d_eff = d` bit-for-bit and every σ = 0 result is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerBasis {
    /// Price transmissions by geometric distance (the idealized radio).
    #[default]
    Geometric,
    /// Price transmissions by the §2 measured attenuation (`d_eff`).
    Measured,
}

impl PowerBasis {
    /// A short lowercase label (`"geometric"` / `"measured"`) — the form
    /// used by CLI flags and trace headers.
    pub fn label(self) -> &'static str {
        match self {
            PowerBasis::Geometric => "geometric",
            PowerBasis::Measured => "measured",
        }
    }

    /// Parses the CLI/trace label, case-insensitively.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "geometric" | "geo" => Some(PowerBasis::Geometric),
            "measured" | "eff" | "effective" => Some(PowerBasis::Measured),
            _ => None,
        }
    }
}

impl std::fmt::Display for PowerBasis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_geometric() {
        assert_eq!(PowerBasis::default(), PowerBasis::Geometric);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for basis in [PowerBasis::Geometric, PowerBasis::Measured] {
            assert_eq!(PowerBasis::parse(basis.label()), Some(basis));
            assert_eq!(format!("{basis}"), basis.label());
        }
        assert_eq!(PowerBasis::parse("MEASURED"), Some(PowerBasis::Measured));
        assert_eq!(PowerBasis::parse("nonsense"), None);
    }

    #[test]
    fn serializes_as_the_variant_tag() {
        let json = serde_json::to_string(&PowerBasis::Measured).unwrap();
        assert_eq!(json, "\"Measured\"");
        let back: PowerBasis = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PowerBasis::Measured);
    }
}
