//! Path-loss models: the paper's power function `p(d)`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Power;

/// A distance-monotone propagation model.
///
/// Captures the paper's assumptions about the radio: a power function
/// `p(d)` (minimum power to close a link over distance `d`), a maximum
/// power `P` shared by all nodes with `p(R) = P`, and enough structure to
/// recover distance from attenuation (the reception-power estimate of §2).
///
/// Implementations must be strictly increasing in `d` so that the inverse
/// is well defined.
pub trait PathLoss {
    /// Minimum transmission power needed to reach a receiver at distance
    /// `d` — the paper's `p(d)`.
    fn required_power(&self, distance: f64) -> Power;

    /// The communication range achievable with transmission power `p`
    /// (inverse of [`Self::required_power`]).
    fn range(&self, power: Power) -> f64;

    /// The common maximum transmission power `P`.
    fn max_power(&self) -> Power;

    /// The maximum communication range `R`, with `p(R) = P`.
    fn max_range(&self) -> f64 {
        self.range(self.max_power())
    }

    /// The power at which a transmission sent at `tx_power` is received at
    /// distance `d` (signal after attenuation).
    fn reception_power(&self, tx_power: Power, distance: f64) -> Power;

    /// Recovers the sender distance from the attenuation between the known
    /// transmission power and the measured reception power.
    fn distance_from_attenuation(&self, tx_power: Power, rx_power: Power) -> f64;

    /// Whether a broadcast at `tx_power` is heard at distance `d`:
    /// `p(d) ≤ tx_power`, the paper's reception set
    /// `{v : p(d(u, v)) ≤ p}`.
    fn reaches(&self, tx_power: Power, distance: f64) -> bool {
        self.required_power(distance) <= tx_power
    }
}

/// The `p(d) = S·dⁿ` power-law model.
///
/// `n ≥ 2` is the path-loss exponent ("the power required to transmit
/// between nodes increases as the n-th power of the distance, for some
/// n ≥ 2", §1, citing Rappaport). `S` is the receiver sensitivity: the
/// reception power below which the link does not close; it sets the unit
/// scale. A transmission at power `p` over distance `d` is received at
/// power `p / dⁿ`, so the link closes iff `p / dⁿ ≥ S` iff `p ≥ S·dⁿ`.
///
/// Distances below 1 unit are treated as 1 (near-field clamp), keeping
/// `required_power` monotone and bounded away from zero.
///
/// # Example
///
/// ```
/// use cbtc_radio::{PathLoss, PowerLaw};
///
/// let model = PowerLaw::paper_default(); // n = 2, S = 1, R = 500
/// assert_eq!(model.required_power(500.0), model.max_power());
/// assert!(model.reaches(model.max_power(), 499.0));
/// assert!(!model.reaches(model.max_power(), 501.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    exponent: f64,
    sensitivity: f64,
    max_range: f64,
}

impl PowerLaw {
    /// The paper's simulation setting: maximum radius `R = 500` with the
    /// conventional free-space exponent `n = 2` and unit sensitivity.
    pub fn paper_default() -> Self {
        PowerLaw {
            exponent: 2.0,
            sensitivity: 1.0,
            max_range: 500.0,
        }
    }

    /// Creates a power-law model.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModelError`] unless `exponent ≥ 1`,
    /// `sensitivity > 0` and `max_range ≥ 1`, all finite.
    pub fn new(exponent: f64, sensitivity: f64, max_range: f64) -> Result<Self, InvalidModelError> {
        if !exponent.is_finite() || exponent < 1.0 {
            return Err(InvalidModelError::new(format!(
                "path-loss exponent must be ≥ 1, got {exponent}"
            )));
        }
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(InvalidModelError::new(format!(
                "sensitivity must be positive, got {sensitivity}"
            )));
        }
        if !max_range.is_finite() || max_range < 1.0 {
            return Err(InvalidModelError::new(format!(
                "max range must be ≥ 1, got {max_range}"
            )));
        }
        Ok(PowerLaw {
            exponent,
            sensitivity,
            max_range,
        })
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The receiver sensitivity `S`.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    fn clamp_distance(&self, d: f64) -> f64 {
        d.max(1.0)
    }
}

impl PathLoss for PowerLaw {
    fn required_power(&self, distance: f64) -> Power {
        let d = self.clamp_distance(distance);
        Power::new(self.sensitivity * d.powf(self.exponent))
    }

    fn range(&self, power: Power) -> f64 {
        if power.linear() <= 0.0 {
            return 0.0;
        }
        (power.linear() / self.sensitivity).powf(1.0 / self.exponent)
    }

    fn max_power(&self) -> Power {
        self.required_power(self.max_range)
    }

    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn reception_power(&self, tx_power: Power, distance: f64) -> Power {
        let d = self.clamp_distance(distance);
        Power::new(tx_power.linear() / d.powf(self.exponent))
    }

    fn distance_from_attenuation(&self, tx_power: Power, rx_power: Power) -> f64 {
        assert!(
            rx_power.linear() > 0.0,
            "cannot estimate distance from zero reception power"
        );
        let attenuation = tx_power / rx_power;
        attenuation.powf(1.0 / self.exponent)
    }
}

/// Error returned by [`PowerLaw::new`] for invalid model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidModelError {
    what: String,
}

impl InvalidModelError {
    fn new(what: String) -> Self {
        InvalidModelError { what }
    }
}

impl fmt::Display for InvalidModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path-loss model: {}", self.what)
    }
}

impl std::error::Error for InvalidModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(PowerLaw::new(2.0, 1.0, 500.0).is_ok());
        assert!(PowerLaw::new(0.5, 1.0, 500.0).is_err());
        assert!(PowerLaw::new(2.0, 0.0, 500.0).is_err());
        assert!(PowerLaw::new(2.0, -1.0, 500.0).is_err());
        assert!(PowerLaw::new(2.0, 1.0, 0.5).is_err());
        assert!(PowerLaw::new(f64::NAN, 1.0, 500.0).is_err());
        let e = PowerLaw::new(0.5, 1.0, 500.0).unwrap_err();
        assert!(e.to_string().contains("exponent"));
    }

    #[test]
    fn paper_default_parameters() {
        let m = PowerLaw::paper_default();
        assert_eq!(m.exponent(), 2.0);
        assert_eq!(m.sensitivity(), 1.0);
        assert_eq!(m.max_range(), 500.0);
        assert_eq!(m.max_power(), Power::new(250_000.0));
    }

    #[test]
    fn required_power_is_monotone() {
        let m = PowerLaw::new(3.0, 0.5, 500.0).unwrap();
        let mut last = Power::ZERO;
        for d in [1.0, 2.0, 10.0, 100.0, 499.0, 500.0] {
            let p = m.required_power(d);
            assert!(p > last, "p({d}) not increasing");
            last = p;
        }
    }

    #[test]
    fn range_is_inverse_of_required_power() {
        let m = PowerLaw::new(2.5, 2.0, 400.0).unwrap();
        for d in [1.0, 5.0, 123.0, 400.0] {
            let p = m.required_power(d);
            assert!((m.range(p) - d).abs() < 1e-9, "round-trip at {d}");
        }
        assert_eq!(m.range(Power::ZERO), 0.0);
    }

    #[test]
    fn near_field_clamped_to_unit_distance() {
        let m = PowerLaw::paper_default();
        assert_eq!(m.required_power(0.0), m.required_power(1.0));
        assert_eq!(m.required_power(0.5), m.required_power(1.0));
        assert_eq!(m.reception_power(Power::new(8.0), 0.1), Power::new(8.0));
    }

    #[test]
    fn reaches_matches_definition() {
        let m = PowerLaw::paper_default();
        let p = m.required_power(300.0);
        assert!(m.reaches(p, 300.0));
        assert!(m.reaches(p, 299.0));
        assert!(!m.reaches(p, 300.5));
    }

    #[test]
    fn reception_power_decays_with_distance() {
        let m = PowerLaw::paper_default();
        let tx = m.max_power();
        assert!(m.reception_power(tx, 10.0) > m.reception_power(tx, 20.0));
        // Free space n=2: doubling distance quarters the power.
        let r10 = m.reception_power(tx, 10.0).linear();
        let r20 = m.reception_power(tx, 20.0).linear();
        assert!((r10 / r20 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn distance_recovery() {
        let m = PowerLaw::new(2.0, 1.0, 500.0).unwrap();
        let tx = Power::new(10_000.0);
        for d in [2.0, 50.0, 313.0] {
            let rx = m.reception_power(tx, d);
            assert!((m.distance_from_attenuation(tx, rx) - d).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "zero reception power")]
    fn zero_reception_power_panics() {
        let m = PowerLaw::paper_default();
        let _ = m.distance_from_attenuation(Power::new(1.0), Power::ZERO);
    }

    #[test]
    fn trait_object_usable() {
        let m = PowerLaw::paper_default();
        let dyn_model: &dyn PathLoss = &m;
        assert_eq!(dyn_model.max_range(), 500.0);
        assert!(dyn_model.reaches(dyn_model.max_power(), 500.0));
    }
}
