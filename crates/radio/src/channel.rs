//! Stochastic-channel trait extensions: per-link gains and packet
//! reception rates.
//!
//! The paper's radio is the deterministic power law `p(d) = S·dⁿ`: every
//! link inside range succeeds, every link outside fails. Real channels
//! deviate in two ways the topology-control literature cares about
//! (Sethu & Gerety's non-uniform path loss; Chu & Sethu's lifetime work):
//!
//! * **per-link gain** — shadowing by obstacles multiplies the received
//!   power by a link-specific factor that is *frozen in time* (the
//!   obstacle does not move) but varies across links, and may differ per
//!   direction (different antenna environments at the two ends);
//! * **soft reception** — near the sensitivity threshold, delivery is
//!   probabilistic rather than a hard cut.
//!
//! [`LinkGain`] and [`Prr`] abstract exactly those two deviations, so the
//! simulator and the construction pipeline can be written once and run
//! against the ideal radio ([`IdealGain`] + [`PerfectPrr`], reproducing
//! the paper's model bit for bit) or against the stochastic models of the
//! `cbtc-phy` crate.

use std::fmt::Debug;

/// A frozen per-link power-gain field on top of deterministic path loss.
///
/// `link_gain(u, v)` multiplies the power received at `v` from `u`. The
/// field must be **deterministic**: repeated queries of the same directed
/// link return the same factor (a frozen shadowing environment), which is
/// what makes runs reproducible and lets construction and simulation see
/// the same world.
pub trait LinkGain: Debug {
    /// The power-gain multiplier of the directed link `from → to`
    /// (`1.0` = exactly the deterministic path-loss model).
    fn link_gain(&self, from: u64, to: u64) -> f64;

    /// A finite upper bound on [`LinkGain::link_gain`] over all links,
    /// used to bound spatial queries (a transmission can reach at most
    /// `range(p · max_gain)`).
    fn max_gain(&self) -> f64 {
        1.0
    }

    /// The per-packet (fast-fading) power gain for the directed link,
    /// deterministic in the packet `token`. `1.0` = no multipath fading.
    fn packet_gain(&self, from: u64, to: u64, token: u64) -> f64 {
        let _ = (from, to, token);
        1.0
    }

    /// A finite upper bound on [`LinkGain::packet_gain`].
    fn max_packet_gain(&self) -> f64 {
        1.0
    }
}

/// A packet-reception-rate curve: the probability a packet is decoded
/// given its received signal and the power the channel requires.
///
/// Both values arrive un-divided so that implementations with hard
/// cutoffs (notably [`PerfectPrr`]) can compare them exactly — `signal ≥
/// threshold` reproduces the paper's reception set `p(d) ≤ p` without a
/// floating-point division in between. Interference raises `threshold`
/// (an SINR requirement is a higher effective noise floor).
pub trait Prr: Debug {
    /// Probability in `[0, 1]` that a packet with received signal budget
    /// `signal` is decoded when the channel requires `threshold`.
    /// Implementations must return exactly `1.0` / `0.0` where delivery
    /// is certain / impossible, so callers can skip random draws.
    fn delivery_probability(&self, signal: f64, threshold: f64) -> f64;
}

/// The ideal channel: every link gain is exactly 1 (the paper's radio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdealGain;

impl LinkGain for IdealGain {
    fn link_gain(&self, _from: u64, _to: u64) -> f64 {
        1.0
    }
}

/// The ideal reception curve: a hard threshold at `signal ≥ threshold`,
/// reproducing the unit-disk reception set exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfectPrr;

impl Prr for PerfectPrr {
    fn delivery_probability(&self, signal: f64, threshold: f64) -> f64 {
        if signal >= threshold {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gain_is_unity() {
        let g = IdealGain;
        assert_eq!(g.link_gain(3, 9), 1.0);
        assert_eq!(g.max_gain(), 1.0);
        assert_eq!(g.packet_gain(3, 9, 42), 1.0);
        assert_eq!(g.max_packet_gain(), 1.0);
    }

    #[test]
    fn perfect_prr_is_a_step() {
        let p = PerfectPrr;
        assert_eq!(p.delivery_probability(2.0, 1.0), 1.0);
        assert_eq!(p.delivery_probability(1.0, 1.0), 1.0);
        assert_eq!(p.delivery_probability(0.999_999, 1.0), 0.0);
    }

    #[test]
    fn traits_are_object_safe() {
        let g: &dyn LinkGain = &IdealGain;
        let p: &dyn Prr = &PerfectPrr;
        assert_eq!(g.link_gain(0, 1), 1.0);
        assert_eq!(p.delivery_probability(5.0, 1.0), 1.0);
    }
}
