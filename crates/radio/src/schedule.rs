//! Power-growth schedules: the `Increase` function of Figure 1.
//!
//! The algorithm broadcasts "Hello" at an initial power `p0` and grows it
//! with some function `Increase` such that `Increaseᵏ(p0) = P` for
//! sufficiently large `k`. The paper's suggested choice is
//! `Increase(p) = 2p` (following Li & Halpern), which guarantees the final
//! power overshoots the minimum needed by at most a factor of 2.

use serde::{Deserialize, Serialize};

use crate::{Power, PowerBasis};

/// How the power grows from one "Hello" round to the next.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// `Increase(p) = factor · p` — the paper's default with `factor = 2`.
    Multiplicative {
        /// Growth factor, strictly greater than 1.
        factor: f64,
    },
    /// `Increase(p) = p + step` — additive growth.
    Additive {
        /// Step size, strictly positive.
        step: f64,
    },
}

/// A concrete power schedule: initial power, growth rule and maximum power.
///
/// The sequence produced by [`PowerSchedule::levels`] starts at `p0`, grows
/// per the rule, and is capped so the final element is exactly the maximum
/// power `P` — mirroring the `while pu < P` loop of Figure 1, in which a
/// node's last broadcast uses `P` itself.
///
/// # Example
///
/// ```
/// use cbtc_radio::{Power, PowerSchedule};
///
/// let sched = PowerSchedule::doubling(Power::new(1.0), Power::new(10.0));
/// let levels: Vec<f64> = sched.levels().map(|p| p.linear()).collect();
/// assert_eq!(levels, vec![1.0, 2.0, 4.0, 8.0, 10.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSchedule {
    initial: Power,
    max: Power,
    kind: ScheduleKind,
    /// Link margin in dB applied to every emitted level (capped at `P`).
    /// Zero by default: the emitted sequence is then exactly the raw
    /// growth sequence, bit for bit.
    margin_db: f64,
    /// What the protocol prices replies against: geometry (the default)
    /// or the §2 measured attenuation. The schedule's own levels are
    /// unaffected; the distributed protocol reads this to decide how a
    /// node answers a Hello (see `cbtc_core::protocol`).
    basis: PowerBasis,
}

impl PowerSchedule {
    /// The paper's default schedule: `Increase(p) = 2p`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds `max`.
    pub fn doubling(initial: Power, max: Power) -> Self {
        PowerSchedule::new(initial, max, ScheduleKind::Multiplicative { factor: 2.0 })
    }

    /// Creates a schedule with an explicit growth rule.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero, `initial > max`, or the growth rule
    /// does not make progress (factor ≤ 1 or step ≤ 0).
    pub fn new(initial: Power, max: Power, kind: ScheduleKind) -> Self {
        assert!(
            initial.linear() > 0.0,
            "initial power must be positive (a zero broadcast discovers nothing)"
        );
        assert!(initial <= max, "initial power {initial} exceeds max {max}");
        match kind {
            ScheduleKind::Multiplicative { factor } => {
                assert!(
                    factor.is_finite() && factor > 1.0,
                    "multiplicative factor must exceed 1, got {factor}"
                )
            }
            ScheduleKind::Additive { step } => {
                assert!(
                    step.is_finite() && step > 0.0,
                    "additive step must be positive, got {step}"
                )
            }
        }
        PowerSchedule {
            initial,
            max,
            kind,
            margin_db: 0.0,
            basis: PowerBasis::Geometric,
        }
    }

    /// The same schedule with a link margin: every broadcast level is
    /// boosted by `margin_db` dB (capped at `P`), so each Hello round
    /// reaches the neighbors its nominal power would *just* reach plus a
    /// reliability cushion — the protocol-side counterpart of the
    /// lifetime model's data-plane link margin.
    ///
    /// # Panics
    ///
    /// Panics unless `margin_db` is finite and non-negative.
    pub fn with_margin_db(mut self, margin_db: f64) -> Self {
        assert!(
            margin_db.is_finite() && margin_db >= 0.0,
            "link margin must be a finite non-negative dB value, got {margin_db}"
        );
        self.margin_db = margin_db;
        self
    }

    /// The configured link margin in dB (0 unless set).
    pub fn margin_db(&self) -> f64 {
        self.margin_db
    }

    /// The same schedule with an explicit power-pricing basis. With
    /// [`PowerBasis::Measured`] the distributed protocol answers Hellos
    /// with the §2 attenuation measurement itself rather than a
    /// geometric estimate; on the ideal channel the two coincide bit
    /// for bit.
    pub fn with_basis(mut self, basis: PowerBasis) -> Self {
        self.basis = basis;
        self
    }

    /// The configured pricing basis ([`PowerBasis::Geometric`] unless
    /// set).
    pub fn basis(&self) -> PowerBasis {
        self.basis
    }

    /// The initial power `p0`.
    pub fn initial(&self) -> Power {
        self.initial
    }

    /// The maximum power `P`.
    pub fn max(&self) -> Power {
        self.max
    }

    /// One application of `Increase`, capped at `P`.
    pub fn increase(&self, p: Power) -> Power {
        let next = match self.kind {
            ScheduleKind::Multiplicative { factor } => p * factor,
            ScheduleKind::Additive { step } => p + Power::new(step),
        };
        next.min(self.max)
    }

    /// The full sequence of power levels `p0, Increase(p0), …, P`.
    ///
    /// Guaranteed finite and strictly increasing, ending exactly at `P`
    /// (`Increaseᵏ(p0) = P` for sufficiently large `k`, as the paper
    /// requires of any valid `Increase`).
    pub fn levels(&self) -> Levels {
        Levels {
            schedule: *self,
            next: Some(self.initial),
        }
    }

    /// Number of broadcast rounds the schedule takes.
    pub fn round_count(&self) -> usize {
        self.levels().count()
    }
}

/// Iterator over the power levels of a [`PowerSchedule`].
///
/// Produced by [`PowerSchedule::levels`].
#[derive(Debug, Clone)]
pub struct Levels {
    schedule: PowerSchedule,
    next: Option<Power>,
}

impl Iterator for Levels {
    type Item = Power;

    fn next(&mut self) -> Option<Power> {
        let current = self.next?;
        // The margin boosts the *emitted* level; the underlying growth
        // sequence is untouched, so termination still mirrors Figure 1's
        // `while pu < P`. A zero margin applies no arithmetic at all.
        let emitted = if self.schedule.margin_db == 0.0 {
            current
        } else {
            (current * 10f64.powf(self.schedule.margin_db / 10.0)).min(self.schedule.max)
        };
        if emitted >= self.schedule.max {
            self.next = None;
            return Some(self.schedule.max);
        }
        self.next = Some(self.schedule.increase(current));
        Some(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_reaches_max_exactly() {
        let s = PowerSchedule::doubling(Power::new(1.0), Power::new(100.0));
        let levels: Vec<Power> = s.levels().collect();
        assert_eq!(*levels.last().unwrap(), Power::new(100.0));
        assert_eq!(levels.len(), 8); // 1,2,4,8,16,32,64,100
        for w in levels.windows(2) {
            assert!(w[0] < w[1], "levels must be strictly increasing");
        }
    }

    #[test]
    fn max_equal_to_initial_is_single_round() {
        let s = PowerSchedule::doubling(Power::new(5.0), Power::new(5.0));
        let levels: Vec<Power> = s.levels().collect();
        assert_eq!(levels, vec![Power::new(5.0)]);
        assert_eq!(s.round_count(), 1);
    }

    #[test]
    fn additive_schedule() {
        let s = PowerSchedule::new(
            Power::new(1.0),
            Power::new(4.5),
            ScheduleKind::Additive { step: 1.0 },
        );
        let levels: Vec<f64> = s.levels().map(|p| p.linear()).collect();
        assert_eq!(levels, vec![1.0, 2.0, 3.0, 4.0, 4.5]);
    }

    #[test]
    fn increase_caps_at_max() {
        let s = PowerSchedule::doubling(Power::new(1.0), Power::new(3.0));
        assert_eq!(s.increase(Power::new(2.0)), Power::new(3.0));
        assert_eq!(s.increase(Power::new(3.0)), Power::new(3.0));
    }

    #[test]
    #[should_panic(expected = "initial power")]
    fn zero_initial_rejected() {
        let _ = PowerSchedule::doubling(Power::ZERO, Power::new(1.0));
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn initial_above_max_rejected() {
        let _ = PowerSchedule::doubling(Power::new(2.0), Power::new(1.0));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn non_growing_factor_rejected() {
        let _ = PowerSchedule::new(
            Power::new(1.0),
            Power::new(2.0),
            ScheduleKind::Multiplicative { factor: 1.0 },
        );
    }

    #[test]
    #[should_panic(expected = "step")]
    fn non_positive_step_rejected() {
        let _ = PowerSchedule::new(
            Power::new(1.0),
            Power::new(2.0),
            ScheduleKind::Additive { step: 0.0 },
        );
    }

    #[test]
    fn doubling_overshoot_bounded_by_factor_two() {
        // The §2 claim: with Increase(p) = 2p, the first level at or above
        // any target power is within a factor 2 of it.
        let s = PowerSchedule::doubling(Power::new(1.0), Power::new(1000.0));
        for target in [1.5, 3.0, 7.7, 100.0, 999.0] {
            let first_reaching = s
                .levels()
                .find(|p| p.linear() >= target)
                .expect("schedule reaches max");
            assert!(first_reaching.linear() < 2.0 * target);
        }
    }

    #[test]
    fn round_count_is_logarithmic_for_doubling() {
        // 1,2,4,...,2^20 → 21 rounds.
        let s = PowerSchedule::doubling(Power::new(1.0), Power::new((1u64 << 20) as f64));
        assert_eq!(s.round_count(), 21);
    }

    #[test]
    fn margin_boosts_levels_and_shortens_the_tail() {
        let base = PowerSchedule::doubling(Power::new(1.0), Power::new(10.0));
        let margined = base.with_margin_db(3.0);
        assert_eq!(margined.margin_db(), 3.0);
        let factor = 10f64.powf(0.3);
        let levels: Vec<f64> = margined.levels().map(|p| p.linear()).collect();
        // 1·m ≈ 2.0, 2·m ≈ 4.0, 4·m ≈ 8.0, 8·m ≈ 16 → capped at 10, stop.
        assert_eq!(levels.len(), 4);
        for (i, &l) in levels.iter().enumerate().take(3) {
            assert!((l - (1 << i) as f64 * factor).abs() < 1e-12);
        }
        assert_eq!(*levels.last().unwrap(), 10.0);
        // Still strictly increasing and ending exactly at P.
        for w in levels.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Zero margin is the identity (bit for bit).
        let plain: Vec<Power> = base.levels().collect();
        let zero: Vec<Power> = base.with_margin_db(0.0).levels().collect();
        assert_eq!(plain, zero);
    }

    #[test]
    fn basis_defaults_to_geometric_and_is_carried() {
        let s = PowerSchedule::doubling(Power::new(1.0), Power::new(10.0));
        assert_eq!(s.basis(), PowerBasis::Geometric);
        let measured = s.with_basis(PowerBasis::Measured);
        assert_eq!(measured.basis(), PowerBasis::Measured);
        // The emitted level sequence is independent of the basis.
        let a: Vec<Power> = s.levels().collect();
        let b: Vec<Power> = measured.levels().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "link margin")]
    fn negative_margin_rejected() {
        let _ = PowerSchedule::doubling(Power::new(1.0), Power::new(10.0)).with_margin_db(-1.0);
    }
}
