//! Property-based tests of the radio substrate.

use cbtc_radio::{estimate_required_power, PathLoss, Power, PowerLaw, PowerSchedule, ScheduleKind};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = PowerLaw> {
    (1.5f64..6.0, 0.1f64..10.0, 10.0f64..2000.0)
        .prop_map(|(n, s, r)| PowerLaw::new(n, s, r).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn required_power_is_monotone(model in models(), d1 in 1.0f64..2000.0, d2 in 1.0f64..2000.0) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.required_power(lo) <= model.required_power(hi));
    }

    #[test]
    fn range_inverts_required_power(model in models(), d in 1.0f64..2000.0) {
        let p = model.required_power(d);
        prop_assert!((model.range(p) - d).abs() / d < 1e-9);
    }

    #[test]
    fn reaches_exactly_at_required_power(model in models(), d in 1.0f64..2000.0) {
        let p = model.required_power(d);
        prop_assert!(model.reaches(p, d));
        prop_assert!(!model.reaches(p * 0.999, d * 1.001));
    }

    #[test]
    fn estimate_recovers_required_power(
        model in models(),
        d in 1.0f64..2000.0,
        headroom in 1.0f64..100.0,
    ) {
        // Whatever power the sender used (with any headroom), the receiver's
        // estimate of the minimum link power is the same.
        let tx = model.required_power(d) * headroom;
        let rx = model.reception_power(tx, d);
        let est = estimate_required_power(&model, tx, rx);
        let truth = model.required_power(d);
        prop_assert!((est.linear() - truth.linear()).abs() / truth.linear() < 1e-9);
    }

    #[test]
    fn reception_power_decreases_with_distance(
        model in models(),
        tx in 1.0f64..1e9,
        d1 in 1.0f64..2000.0,
        d2 in 1.0f64..2000.0,
    ) {
        prop_assume!((d1 - d2).abs() > 1e-9);
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        let tx = Power::new(tx);
        prop_assert!(model.reception_power(tx, lo) >= model.reception_power(tx, hi));
    }

    #[test]
    fn schedules_are_finite_strictly_increasing_and_capped(
        p0 in 0.1f64..100.0,
        max_factor in 1.5f64..1e6,
        growth in 1.1f64..4.0,
    ) {
        let initial = Power::new(p0);
        let max = Power::new(p0 * max_factor);
        let sched = PowerSchedule::new(
            initial,
            max,
            ScheduleKind::Multiplicative { factor: growth },
        );
        let levels: Vec<Power> = sched.levels().collect();
        prop_assert!(!levels.is_empty());
        prop_assert_eq!(levels[0], initial);
        prop_assert_eq!(*levels.last().unwrap(), max);
        for w in levels.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Increaseᵏ(p0) = P for k = levels-1 — the Figure 1 requirement.
        let mut p = initial;
        for _ in 0..levels.len() - 1 {
            p = sched.increase(p);
        }
        prop_assert_eq!(p, max);
    }

    #[test]
    fn doubling_overshoot_bounded(
        p0 in 0.1f64..10.0,
        target_factor in 1.0f64..1e5,
    ) {
        // §2: the doubling schedule's first level reaching any target is
        // within a factor 2 of it.
        let target = p0 * target_factor;
        let sched = PowerSchedule::doubling(Power::new(p0), Power::new(p0 * 1e6));
        let first = sched
            .levels()
            .find(|p| p.linear() >= target)
            .expect("reaches max");
        prop_assert!(first.linear() < 2.0 * target);
    }

    #[test]
    fn power_arithmetic_consistent(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (pa, pb) = (Power::new(a), Power::new(b));
        prop_assert_eq!((pa + pb).linear(), a + b);
        prop_assert_eq!(pa.max(pb).linear(), a.max(b));
        prop_assert_eq!(pa.min(pb).linear(), a.min(b));
        prop_assert!((pa - pb).linear() >= 0.0);
    }
}
