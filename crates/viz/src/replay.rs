//! Animated replay of recorded topology timelines.
//!
//! A replay is a sequence of [`ReplayFrame`]s — typically one per
//! `TopologyEpoch` of a trace, reconstructed by the trace crate's
//! timeline builder. Two renderers share the static renderer's styling:
//!
//! * [`render_replay_svg`] — a self-contained animated SVG (SMIL): every
//!   frame is a group made visible for its slot of a master loop, so the
//!   file plays in any browser with no scripting;
//! * [`render_replay_html`] — a canvas player with play/pause and a
//!   scrub slider, for long traces where one `<g>` per frame would make
//!   the SVG unwieldy.

use std::fmt::Write as _;

use crate::{xml_escape, SvgOptions};

/// One topology keyframe of a replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayFrame {
    /// The frame's time in the trace's native unit (ticks or epochs).
    pub time: f64,
    /// Per-node positions.
    pub positions: Vec<(f64, f64)>,
    /// Per-node liveness; dead nodes render hollow and keep no edges.
    pub alive: Vec<bool>,
    /// Edges as canonical `(min, max)` node-index pairs.
    pub edges: Vec<(u32, u32)>,
}

/// Seconds each frame stays visible in the SMIL animation.
const FRAME_SECONDS: f64 = 0.5;

/// World bounds over every frame of the replay (every node slot ever
/// rendered contributes, so the viewport never jumps between frames).
fn replay_bounds(frames: &[ReplayFrame]) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for frame in frames {
        for &(x, y) in &frame.positions {
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
    }
    if min_x.is_finite() {
        (min_x, min_y, max_x, max_y)
    } else {
        (0.0, 0.0, 1.0, 1.0)
    }
}

/// Renders a frame sequence as one self-contained animated SVG.
///
/// All frames share a fixed viewport ([`SvgOptions::bounds`], or the
/// bounding box over *every* frame) and loop forever: frame `i` is
/// visible during `[i·0.5 s, (i+1)·0.5 s)` of each pass. Labels are
/// never drawn (animations are dense); captions come from the frame
/// times plus the optional [`SvgOptions::caption`] prefix.
pub fn render_replay_svg(frames: &[ReplayFrame], options: &SvgOptions) -> String {
    let (min_x, min_y, max_x, max_y) = options.bounds.unwrap_or_else(|| replay_bounds(frames));
    let span_x = (max_x - min_x).max(1.0);
    let span_y = (max_y - min_y).max(1.0);
    let margin = 0.05 * span_x.max(span_y);
    let scale = options.image_width / (span_x + 2.0 * margin);
    let width = options.image_width;
    let height = (span_y + 2.0 * margin) * scale + 24.0;
    let tx = |x: f64| (x - min_x + margin) * scale;
    let ty = |y: f64| (max_y - y + margin) * scale;

    let total = FRAME_SECONDS * frames.len().max(1) as f64;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // The master clock: an invisible animation whose end restarts every
    // frame's visibility window (`begin="loop.begin+offset"`).
    let _ = writeln!(
        svg,
        r#"<rect width="0" height="0"><animate id="loop" attributeName="width" from="0" to="0" begin="0s;loop.end" dur="{total:.1}s"/></rect>"#
    );
    for (i, frame) in frames.iter().enumerate() {
        let begin = i as f64 * FRAME_SECONDS;
        let _ = writeln!(svg, r#"<g visibility="hidden">"#);
        let _ = writeln!(
            svg,
            r#"<set attributeName="visibility" to="visible" begin="loop.begin+{begin:.1}s" dur="{FRAME_SECONDS:.1}s"/>"#
        );
        for &(u, v) in &frame.edges {
            let (ux, uy) = frame.positions[u as usize];
            let (vx, vy) = frame.positions[v as usize];
            let _ = writeln!(
                svg,
                r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{}" stroke-width="1"/>"#,
                tx(ux),
                ty(uy),
                tx(vx),
                ty(vy),
                options.edge_color
            );
        }
        for (n, &(x, y)) in frame.positions.iter().enumerate() {
            if frame.alive.get(n).copied().unwrap_or(false) {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="{}" fill="{}"/>"#,
                    tx(x),
                    ty(y),
                    options.node_radius,
                    options.node_color
                );
            } else {
                let _ = writeln!(
                    svg,
                    r##"<circle cx="{:.2}" cy="{:.2}" r="{}" fill="none" stroke="#bbbbbb"/>"##,
                    tx(x),
                    ty(y),
                    options.node_radius
                );
            }
        }
        let prefix = options.caption.as_deref().unwrap_or("");
        let _ = writeln!(
            svg,
            r##"<text x="{:.2}" y="{:.2}" font-size="14" text-anchor="middle" fill="#000">{} t = {}</text>"##,
            width / 2.0,
            height - 8.0,
            xml_escape(prefix),
            frame.time
        );
        let _ = writeln!(svg, "</g>");
    }
    svg.push_str("</svg>\n");
    svg
}

/// Formats a float sequence as a JS array literal.
fn js_array(values: impl Iterator<Item = f64>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v:?}");
    }
    out.push(']');
    out
}

/// Renders a frame sequence as a standalone HTML canvas player with
/// play/pause and a scrub slider. The frame data is embedded as JS
/// literals, so the file is self-contained and any browser plays it.
pub fn render_replay_html(frames: &[ReplayFrame], options: &SvgOptions) -> String {
    let (min_x, min_y, max_x, max_y) = options.bounds.unwrap_or_else(|| replay_bounds(frames));
    let title = options.caption.as_deref().unwrap_or("CBTC replay");

    // frames = [{t, xs, ys, alive, edges}, ...]
    let mut data = String::from("[");
    for (i, frame) in frames.iter().enumerate() {
        if i > 0 {
            data.push(',');
        }
        let _ = write!(
            data,
            "{{t:{:?},xs:{},ys:{},alive:[{}],edges:[{}]}}",
            frame.time,
            js_array(frame.positions.iter().map(|p| p.0)),
            js_array(frame.positions.iter().map(|p| p.1)),
            frame
                .alive
                .iter()
                .map(|a| if *a { "1" } else { "0" })
                .collect::<Vec<_>>()
                .join(","),
            frame
                .edges
                .iter()
                .map(|&(u, v)| format!("[{u},{v}]"))
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    data.push(']');

    format!(
        r#"<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>body{{font-family:sans-serif;margin:16px}}canvas{{border:1px solid #ccc}}</style>
</head><body>
<h3>{title}</h3>
<canvas id="c" width="{w}" height="{h}"></canvas>
<div>
<button id="play">pause</button>
<input id="scrub" type="range" min="0" max="{last}" value="0" style="width:60%">
<span id="label"></span>
</div>
<script>
const frames = {data};
const bounds = [{min_x:?},{min_y:?},{max_x:?},{max_y:?}];
const canvas = document.getElementById('c'), ctx = canvas.getContext('2d');
const scrub = document.getElementById('scrub'), label = document.getElementById('label');
const playBtn = document.getElementById('play');
const spanX = Math.max(bounds[2]-bounds[0], 1), spanY = Math.max(bounds[3]-bounds[1], 1);
const margin = 0.05*Math.max(spanX, spanY);
const scale = canvas.width/(spanX+2*margin);
const tx = x => (x-bounds[0]+margin)*scale;
const ty = y => (bounds[3]-y+margin)*scale;
let frame = 0, playing = frames.length > 1;
function draw(i) {{
  const f = frames[i];
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  ctx.strokeStyle = '{edge_color}';
  ctx.beginPath();
  for (const [u, v] of f.edges) {{
    ctx.moveTo(tx(f.xs[u]), ty(f.ys[u]));
    ctx.lineTo(tx(f.xs[v]), ty(f.ys[v]));
  }}
  ctx.stroke();
  for (let n = 0; n < f.xs.length; n++) {{
    ctx.beginPath();
    ctx.arc(tx(f.xs[n]), ty(f.ys[n]), {r}, 0, 2*Math.PI);
    if (f.alive[n]) {{ ctx.fillStyle = '{node_color}'; ctx.fill(); }}
    else {{ ctx.strokeStyle = '#bbbbbb'; ctx.stroke(); }}
  }}
  label.textContent = 't = ' + f.t + ' (' + (i+1) + '/' + frames.length + ')';
  scrub.value = i;
}}
playBtn.onclick = () => {{ playing = !playing; playBtn.textContent = playing ? 'pause' : 'play'; }};
scrub.oninput = () => {{ playing = false; playBtn.textContent = 'play'; frame = +scrub.value; draw(frame); }};
setInterval(() => {{ if (playing && frames.length) {{ frame = (frame+1)%frames.length; draw(frame); }} }}, 400);
if (frames.length) draw(0);
</script>
</body></html>
"#,
        title = xml_escape(title),
        w = options.image_width as u32,
        h = (options.image_width * 0.78) as u32,
        last = frames.len().saturating_sub(1),
        data = data,
        edge_color = options.edge_color,
        node_color = options.node_color,
        r = options.node_radius,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<ReplayFrame> {
        vec![
            ReplayFrame {
                time: 0.0,
                positions: vec![(0.0, 0.0), (100.0, 0.0), (50.0, 80.0)],
                alive: vec![true, true, true],
                edges: vec![(0, 1), (1, 2)],
            },
            ReplayFrame {
                time: 10.0,
                positions: vec![(0.0, 5.0), (100.0, 0.0), (50.0, 80.0)],
                alive: vec![true, false, true],
                edges: vec![(0, 2)],
            },
        ]
    }

    #[test]
    fn animated_svg_has_one_group_per_frame() {
        let svg = render_replay_svg(&frames(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<set attributeName=\"visibility\"").count(), 2);
        assert_eq!(svg.matches("id=\"loop\"").count(), 1);
        // 2 + 1 edges, 3 nodes per frame.
        assert_eq!(svg.matches("<line").count(), 3);
        assert_eq!(svg.matches("<circle").count(), 6);
        // The dead node renders hollow in frame 2.
        assert_eq!(svg.matches("fill=\"none\"").count(), 1);
    }

    #[test]
    fn fixed_bounds_pin_the_viewport() {
        let options = SvgOptions {
            bounds: Some((0.0, 0.0, 1000.0, 1000.0)),
            ..SvgOptions::default()
        };
        let a = render_replay_svg(&frames()[..1], &options);
        let b = render_replay_svg(&frames()[1..], &options);
        // Same transform: node 2 (unmoved) lands at identical pixels.
        let coord = |svg: &str| {
            svg.lines()
                .find(|l| l.starts_with("<circle") && l.contains("fill=\"#1f6feb\""))
                .map(str::to_owned)
        };
        assert!(coord(&a).is_some());
        // Frame sizing is identical regardless of content.
        assert_eq!(a.lines().next(), b.lines().next());
    }

    #[test]
    fn empty_replay_renders() {
        let svg = render_replay_svg(&[], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        let html = render_replay_html(&[], &SvgOptions::default());
        assert!(html.contains("const frames = []"));
    }

    #[test]
    fn html_player_embeds_frames() {
        let html = render_replay_html(&frames(), &SvgOptions::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("edges:[[0,1],[1,2]]"));
        assert!(html.contains("alive:[1,0,1]"));
        assert!(html.contains("canvas"));
    }
}
