//! # cbtc-viz
//!
//! SVG rendering of network topologies, reproducing the style of the
//! paper's Figure 6 (§5): labelled nodes with straight-line edges. The
//! `figure6` bench binary uses [`render_svg`] to regenerate all eight
//! panels; the Figure 2 / Figure 5 constructions render through the same
//! entry point.
//!
//! ```
//! use cbtc_geom::Point2;
//! use cbtc_graph::{Layout, NodeId, UndirectedGraph};
//! use cbtc_viz::{render_svg, SvgOptions};
//!
//! let layout = Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 50.0)]);
//! let mut g = UndirectedGraph::new(2);
//! g.add_edge(NodeId::new(0), NodeId::new(1));
//! let svg = render_svg(&layout, &g, &SvgOptions::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("<line"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use cbtc_graph::{Layout, UndirectedGraph};

pub mod replay;

pub use replay::{render_replay_html, render_replay_svg, ReplayFrame};

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output image width in pixels (height scales with the aspect ratio).
    pub image_width: f64,
    /// Node dot radius in pixels.
    pub node_radius: f64,
    /// Whether to print node indices next to the dots (as in Figure 6).
    pub labels: bool,
    /// Edge stroke color.
    pub edge_color: String,
    /// Node fill color.
    pub node_color: String,
    /// Optional caption rendered under the figure.
    pub caption: Option<String>,
    /// Fixed world viewport `(min_x, min_y, max_x, max_y)`. `None` fits
    /// the viewport to the layout's bounding box; replay rendering pins
    /// it so frames share one coordinate system.
    pub bounds: Option<(f64, f64, f64, f64)>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            image_width: 640.0,
            node_radius: 3.0,
            labels: true,
            edge_color: "#444444".to_owned(),
            node_color: "#1f6feb".to_owned(),
            caption: None,
            bounds: None,
        }
    }
}

/// Renders a topology as an SVG document string.
///
/// The viewport is fitted to the bounding box of the layout with a small
/// margin; y grows upward (mathematical convention), matching the paper's
/// figures.
pub fn render_svg(layout: &Layout, graph: &UndirectedGraph, options: &SvgOptions) -> String {
    assert_eq!(
        layout.len(),
        graph.node_count(),
        "layout and graph node counts differ"
    );
    let (min_x, min_y, max_x, max_y) = options.bounds.unwrap_or_else(|| bounding_box(layout));
    let span_x = (max_x - min_x).max(1.0);
    let span_y = (max_y - min_y).max(1.0);
    let margin = 0.05 * span_x.max(span_y);
    let scale = options.image_width / (span_x + 2.0 * margin);
    let width = options.image_width;
    let caption_space = if options.caption.is_some() { 24.0 } else { 0.0 };
    let height = (span_y + 2.0 * margin) * scale + caption_space;

    let tx = |x: f64| (x - min_x + margin) * scale;
    // Flip y so north is up.
    let ty = |y: f64| (max_y - y + margin) * scale;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    for (u, v) in graph.edges() {
        let pu = layout.position(u);
        let pv = layout.position(v);
        let _ = writeln!(
            svg,
            r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{}" stroke-width="1"/>"#,
            tx(pu.x),
            ty(pu.y),
            tx(pv.x),
            ty(pv.y),
            options.edge_color
        );
    }
    for (id, p) in layout.iter() {
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.2}" cy="{:.2}" r="{}" fill="{}"/>"#,
            tx(p.x),
            ty(p.y),
            options.node_radius,
            options.node_color
        );
        if options.labels {
            let _ = writeln!(
                svg,
                r##"<text x="{:.2}" y="{:.2}" font-size="9" fill="#666">{}</text>"##,
                tx(p.x) + options.node_radius + 1.0,
                ty(p.y) - options.node_radius - 1.0,
                id.index()
            );
        }
    }
    if let Some(caption) = &options.caption {
        let _ = writeln!(
            svg,
            r##"<text x="{:.2}" y="{:.2}" font-size="14" text-anchor="middle" fill="#000">{}</text>"##,
            width / 2.0,
            height - 8.0,
            xml_escape(caption)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders several topologies over the same layout as one SVG grid —
/// the presentation of the paper's Figure 6 (panels (a) through (h)).
///
/// `columns` panels per row; each panel is rendered with its caption via
/// [`render_svg`] and embedded at `panel_width` pixels.
///
/// # Panics
///
/// Panics if `columns` is zero or any panel's graph disagrees with the
/// layout size.
pub fn render_panel_grid(
    layout: &Layout,
    panels: &[(String, &UndirectedGraph)],
    columns: usize,
    panel_width: f64,
) -> String {
    assert!(columns > 0, "need at least one column");
    let options_for = |caption: &str| SvgOptions {
        image_width: panel_width,
        labels: false,
        node_radius: 1.5,
        caption: Some(caption.to_owned()),
        ..SvgOptions::default()
    };
    // Render one panel to learn the uniform panel height.
    let probe = panels
        .first()
        .map(|(caption, graph)| render_svg(layout, graph, &options_for(caption)))
        .unwrap_or_default();
    let panel_height = svg_height(&probe).unwrap_or(panel_width);

    let rows = panels.len().div_ceil(columns);
    let total_w = panel_width * columns as f64;
    let total_h = panel_height * rows as f64;
    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w:.0}" height="{total_h:.0}" viewBox="0 0 {total_w:.0} {total_h:.0}">"#
    );
    svg.push('\n');
    for (i, (caption, graph)) in panels.iter().enumerate() {
        let x = (i % columns) as f64 * panel_width;
        let y = (i / columns) as f64 * panel_height;
        let inner = render_svg(layout, graph, &options_for(caption));
        let _ = writeln!(
            svg,
            r#"<g transform="translate({x:.0}, {y:.0})">{}</g>"#,
            strip_svg_envelope(&inner)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Extracts the `height` attribute of a rendered SVG document.
fn svg_height(svg: &str) -> Option<f64> {
    let start = svg.find("height=\"")? + "height=\"".len();
    let end = svg[start..].find('"')? + start;
    svg[start..end].parse().ok()
}

/// Removes the outer `<svg …>` / `</svg>` wrapper, keeping the content for
/// embedding in a group.
fn strip_svg_envelope(svg: &str) -> &str {
    let open_end = svg.find('>').map(|i| i + 1).unwrap_or(0);
    let close_start = svg.rfind("</svg>").unwrap_or(svg.len());
    &svg[open_end..close_start]
}

fn bounding_box(layout: &Layout) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (_, p) in layout.iter() {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    if layout.is_empty() {
        (0.0, 0.0, 1.0, 1.0)
    } else {
        (min_x, min_y, max_x, max_y)
    }
}

pub(crate) fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_geom::Point2;
    use cbtc_graph::NodeId;

    fn sample() -> (Layout, UndirectedGraph) {
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(50.0, 80.0),
        ]);
        let mut g = UndirectedGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        (layout, g)
    }

    #[test]
    fn renders_all_elements() {
        let (layout, g) = sample();
        let svg = render_svg(&layout, &g, &SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<line").count(), 2);
        assert_eq!(svg.matches("<text").count(), 3); // labels
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn labels_and_caption_optional() {
        let (layout, g) = sample();
        let options = SvgOptions {
            labels: false,
            caption: Some("CBTC(5π/6) & <test>".to_owned()),
            ..SvgOptions::default()
        };
        let svg = render_svg(&layout, &g, &options);
        assert_eq!(svg.matches("<text").count(), 1); // caption only
        assert!(svg.contains("&lt;test&gt;"));
    }

    #[test]
    fn empty_layout_renders() {
        let svg = render_svg(
            &Layout::default(),
            &UndirectedGraph::new(0),
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    #[should_panic(expected = "node counts differ")]
    fn mismatched_inputs_rejected() {
        let (layout, _) = sample();
        let _ = render_svg(&layout, &UndirectedGraph::new(5), &SvgOptions::default());
    }

    #[test]
    fn panel_grid_composes_panels() {
        let (layout, g) = sample();
        let empty = UndirectedGraph::new(3);
        let panels = vec![
            ("(a) full".to_owned(), &g),
            ("(b) empty".to_owned(), &empty),
            ("(c) full again".to_owned(), &g),
        ];
        let grid = render_panel_grid(&layout, &panels, 2, 300.0);
        assert!(grid.starts_with("<svg"));
        assert!(grid.ends_with("</svg>\n"));
        // Three embedded groups, one per panel.
        assert_eq!(grid.matches("<g transform=").count(), 3);
        // Captions survive embedding.
        assert!(grid.contains("(a) full"));
        assert!(grid.contains("(b) empty"));
        // Two panels' worth of edges (2 + 0 + 2 lines).
        assert_eq!(grid.matches("<line").count(), 4);
        // Exactly one outer svg element plus no nested <svg>.
        assert_eq!(grid.matches("<svg").count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_rejected() {
        let (layout, g) = sample();
        let panels = vec![("x".to_owned(), &g)];
        let _ = render_panel_grid(&layout, &panels, 0, 100.0);
    }
}
