//! Property-based tests of the graph substrate.

use cbtc_geom::Point2;
use cbtc_graph::connectivity::preserves_connectivity;
use cbtc_graph::paths::{dijkstra, hop_stretch};
use cbtc_graph::spanners;
use cbtc_graph::traversal::{bfs_distances, component_count, component_labels};
use cbtc_graph::unit_disk::{unit_disk_graph, unit_disk_graph_brute, unit_disk_graph_where};
use cbtc_graph::{DirectedGraph, Layout, NodeId, UndirectedGraph, UnionFind};
use proptest::prelude::*;

fn layouts() -> impl Strategy<Value = Layout> {
    (1usize..40, 50.0f64..500.0).prop_flat_map(|(n, side)| {
        proptest::collection::vec((0.0..side, 0.0..side), n)
            .prop_map(|pts| Layout::new(pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect()))
    })
}

/// Layouts engineered to stress the spatial index: every third point is
/// snapped onto the cell lattice of pitch `cell` (distances land exactly
/// on the radius boundary), and every seventh point duplicates its
/// predecessor (co-located nodes).
fn adversarial_layouts(cell: f64) -> impl Strategy<Value = Layout> {
    (1usize..50, 50.0f64..600.0).prop_flat_map(move |(n, side)| {
        proptest::collection::vec((0.0..side, 0.0..side), n).prop_map(move |pts| {
            let mut points: Vec<Point2> = Vec::with_capacity(pts.len());
            for (i, (x, y)) in pts.into_iter().enumerate() {
                let p = if i % 3 == 0 {
                    Point2::new((x / cell).round() * cell, (y / cell).round() * cell)
                } else {
                    Point2::new(x, y)
                };
                let p = if i % 7 == 0 && i > 0 {
                    points[i - 1]
                } else {
                    p
                };
                points.push(p);
            }
            Layout::new(points)
        })
    })
}

fn edge_lists() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..30).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..60);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
    let mut g = UndirectedGraph::new(n);
    for &(a, b) in edges {
        if a != b {
            g.add_edge(NodeId::new(a), NodeId::new(b));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_find_agrees_with_bfs((n, edges) in edge_lists()) {
        let g = build(n, &edges);
        let labels = component_labels(&g);
        let mut uf = UnionFind::new(n);
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                let connected_bfs = labels[i as usize] == labels[j as usize];
                prop_assert_eq!(
                    uf.connected(NodeId::new(i), NodeId::new(j)),
                    connected_bfs
                );
            }
        }
        prop_assert_eq!(uf.component_count(), component_count(&g));
    }

    #[test]
    fn bfs_distances_are_consistent((n, edges) in edge_lists()) {
        let g = build(n, &edges);
        let source = NodeId::new(0);
        let dist = bfs_distances(&g, source);
        prop_assert_eq!(dist[0], Some(0));
        // Each reachable node's distance differs by exactly 1 from some
        // neighbor closer to the source.
        for u in g.node_ids() {
            if let Some(du) = dist[u.index()] {
                if du > 0 {
                    prop_assert!(g
                        .neighbors(u)
                        .any(|v| dist[v.index()] == Some(du - 1)));
                }
                for v in g.neighbors(u) {
                    let dv = dist[v.index()].expect("neighbor of reachable is reachable");
                    prop_assert!(dv + 1 >= du && du + 1 >= dv);
                }
            }
        }
    }

    #[test]
    fn dijkstra_unit_weights_match_bfs((n, edges) in edge_lists()) {
        let g = build(n, &edges);
        let bfs = bfs_distances(&g, NodeId::new(0));
        let dij = dijkstra(&g, NodeId::new(0), |_, _| 1.0);
        for i in 0..n {
            match (bfs[i], dij[i]) {
                (None, None) => {}
                (Some(b), Some(d)) => prop_assert!((d - b as f64).abs() < 1e-12),
                other => prop_assert!(false, "mismatch at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn symmetric_closure_and_core_bracket(
        (n, edges) in edge_lists(),
    ) {
        let mut d = DirectedGraph::new(n);
        for &(a, b) in &edges {
            if a != b {
                d.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        let core = d.symmetric_core();
        let closure = d.symmetric_closure();
        prop_assert!(core.is_subgraph_of(&closure));
        // Core + asymmetric edges == closure, as edge counts.
        prop_assert_eq!(
            closure.edge_count(),
            core.edge_count() + d.asymmetric_edges().len()
        );
    }

    #[test]
    fn grid_unit_disk_equals_brute_force(layout in layouts(), r in 1.0f64..600.0) {
        prop_assert_eq!(
            unit_disk_graph(&layout, r),
            unit_disk_graph_brute(&layout, r)
        );
    }

    #[test]
    fn grid_unit_disk_equals_brute_on_boundary_and_colocated(
        layout in adversarial_layouts(75.0),
    ) {
        // Cell side == radius == lattice pitch: snapped points sit exactly
        // on cell boundaries and at exact-radius distances; duplicated
        // points share buckets.
        prop_assert_eq!(
            unit_disk_graph(&layout, 75.0),
            unit_disk_graph_brute(&layout, 75.0)
        );
        // A small radius relative to the field forces the sparse
        // hash-grid fallback; it must agree too.
        prop_assert_eq!(
            unit_disk_graph(&layout, 4.0),
            unit_disk_graph_brute(&layout, 4.0)
        );
    }

    #[test]
    fn filtered_unit_disk_is_the_induced_subgraph(
        layout in layouts(),
        r in 20.0f64..300.0,
    ) {
        // Keep every other node: the filtered construction must equal the
        // full graph with the dropped nodes' edges removed.
        let keep = |u: NodeId| u.raw().is_multiple_of(2);
        let filtered = unit_disk_graph_where(&layout, r, keep);
        let mut expected = unit_disk_graph(&layout, r);
        let ids: Vec<NodeId> = expected.node_ids().collect();
        for u in ids {
            if !keep(u) {
                let nbrs: Vec<NodeId> = expected.neighbors(u).collect();
                for v in nbrs {
                    expected.remove_edge(u, v);
                }
            }
        }
        prop_assert_eq!(filtered, expected);
    }

    #[test]
    fn spanner_chain_holds_on_random_layouts(layout in layouts(), r in 20.0f64..300.0) {
        let ud = unit_disk_graph(&layout, r);
        let mst = spanners::euclidean_mst(&layout, r);
        let rng = spanners::relative_neighborhood_graph(&layout, r);
        let gg = spanners::gabriel_graph(&layout, r);
        prop_assert!(mst.is_subgraph_of(&rng));
        prop_assert!(rng.is_subgraph_of(&gg));
        prop_assert!(gg.is_subgraph_of(&ud));
        prop_assert!(preserves_connectivity(&mst, &ud));
        prop_assert!(preserves_connectivity(&rng, &ud));
        prop_assert!(preserves_connectivity(&gg, &ud));
    }

    #[test]
    fn hop_stretch_at_least_one(layout in layouts(), r in 20.0f64..300.0) {
        let ud = unit_disk_graph(&layout, r);
        let rng = spanners::relative_neighborhood_graph(&layout, r);
        let s = hop_stretch(&rng, &ud);
        prop_assert!(s.max >= 1.0);
        prop_assert!(s.mean >= 1.0 - 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
    }

    #[test]
    fn unit_disk_is_monotone_in_radius(layout in layouts(), r in 10.0f64..200.0) {
        let small = unit_disk_graph(&layout, r);
        let big = unit_disk_graph(&layout, r * 1.5);
        prop_assert!(small.is_subgraph_of(&big));
    }

    #[test]
    fn bridges_and_articulation_points_actually_cut((n, edges) in edge_lists()) {
        use cbtc_graph::biconnectivity::cut_structure;
        let g = build(n, &edges);
        let before = component_count(&g);
        let cuts = cut_structure(&g);
        // Removing any bridge increases the component count.
        for &(u, v) in &cuts.bridges {
            let mut h = g.clone();
            h.remove_edge(u, v);
            prop_assert_eq!(component_count(&h), before + 1, "bridge ({}, {})", u, v);
        }
        // Removing any non-bridge edge does NOT change the partition.
        for (u, v) in g.edges() {
            if !cuts.bridges.contains(&(u.min(v), u.max(v))) {
                let mut h = g.clone();
                h.remove_edge(u, v);
                prop_assert_eq!(component_count(&h), before, "non-bridge ({}, {})", u, v);
            }
        }
        // Removing an articulation point splits its component: the count
        // over the remaining nodes (isolating the removed one) grows by at
        // least 2 (the isolated node itself plus the split).
        for &a in &cuts.articulation_points {
            let mut h = g.clone();
            let nbrs: Vec<NodeId> = h.neighbors(a).collect();
            for w in nbrs {
                h.remove_edge(a, w);
            }
            prop_assert!(
                component_count(&h) >= before + 2,
                "articulation point {a} did not split"
            );
        }
    }
}
