//! Topology metrics: the quantities Table 1 reports.
//!
//! The paper's evaluation compares configurations by **average node
//! degree** and **average radius**, where a node's radius is the distance
//! to its farthest neighbor in the final graph — the broadcast range it
//! must sustain to reach all its neighbors. Isolated nodes contribute a
//! configurable default radius (the paper's max-power row uses `R` for
//! every node).

use crate::{Layout, UndirectedGraph};

/// Average node degree (`2·|E| / |V|`), 0 for an empty graph.
pub fn average_degree(g: &UndirectedGraph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / g.node_count() as f64
}

/// Maximum node degree.
pub fn max_degree(g: &UndirectedGraph) -> usize {
    g.node_ids().map(|u| g.degree(u)).max().unwrap_or(0)
}

/// The radius of each node: the distance to its farthest neighbor in `g`,
/// or `isolated_default` for nodes with no neighbors.
pub fn node_radii(g: &UndirectedGraph, layout: &Layout, isolated_default: f64) -> Vec<f64> {
    assert_eq!(
        g.node_count(),
        layout.len(),
        "graph and layout node counts differ"
    );
    g.node_ids()
        .map(|u| {
            g.neighbors(u)
                .map(|v| layout.distance(u, v))
                .fold(f64::NAN, f64::max)
        })
        .map(|r| if r.is_nan() { isolated_default } else { r })
        .collect()
}

/// Average node radius: mean over nodes of the distance to the farthest
/// neighbor (Table 1's "Average radius" row).
pub fn average_radius(g: &UndirectedGraph, layout: &Layout, isolated_default: f64) -> f64 {
    let radii = node_radii(g, layout, isolated_default);
    if radii.is_empty() {
        return 0.0;
    }
    radii.iter().sum::<f64>() / radii.len() as f64
}

/// Average physical length of the edges in `g`, 0 when edgeless.
pub fn average_edge_length(g: &UndirectedGraph, layout: &Layout) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (u, v) in g.edges() {
        sum += layout.distance(u, v);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Mean transmission power needed per node to reach all neighbors, under
/// the power-law cost `radiusⁿ` with the given exponent (the energy view of
/// the same radii that [`average_radius`] reports).
pub fn average_power(
    g: &UndirectedGraph,
    layout: &Layout,
    isolated_default: f64,
    exponent: f64,
) -> f64 {
    let radii = node_radii(g, layout, isolated_default);
    if radii.is_empty() {
        return 0.0;
    }
    radii.iter().map(|r| r.powf(exponent)).sum::<f64>() / radii.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use cbtc_geom::Point2;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line_layout() -> Layout {
        Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(7.0, 0.0),
        ])
    }

    #[test]
    fn degrees() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        assert_eq!(average_degree(&g), 1.0);
        assert_eq!(max_degree(&g), 2);
        assert_eq!(average_degree(&UndirectedGraph::new(0)), 0.0);
        assert_eq!(max_degree(&UndirectedGraph::new(0)), 0);
    }

    #[test]
    fn radii_with_isolated_default() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1)); // lengths: 1
        g.add_edge(n(1), n(2)); // 2
        let radii = node_radii(&g, &line_layout(), 10.0);
        assert_eq!(radii, vec![1.0, 2.0, 2.0, 10.0]);
        assert!((average_radius(&g, &line_layout(), 10.0) - 15.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn radius_is_farthest_neighbor() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(3)); // node 0 now has neighbors at 1 and 7
        let radii = node_radii(&g, &line_layout(), 0.0);
        assert_eq!(radii[0], 7.0);
    }

    #[test]
    fn edge_length_average() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1)); // 1
        g.add_edge(n(2), n(3)); // 4
        assert!((average_edge_length(&g, &line_layout()) - 2.5).abs() < 1e-12);
        assert_eq!(
            average_edge_length(&UndirectedGraph::new(4), &line_layout()),
            0.0
        );
    }

    #[test]
    fn power_is_radius_to_exponent() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        // radii = [1, 2, 2, 5]; squares = [1, 4, 4, 25]
        let p = average_power(&g, &line_layout(), 5.0, 2.0);
        assert!((p - 34.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "node counts differ")]
    fn mismatched_sizes_rejected() {
        let g = UndirectedGraph::new(3);
        let _ = node_radii(&g, &line_layout(), 0.0);
    }
}
