//! Weighted shortest paths and stretch factors.
//!
//! §1 of the paper cites the competitiveness result of \[16\]: the most
//! power-efficient route in `G_α` is at most a constant factor worse than in
//! `G_R`. These helpers compute exact *power stretch* and *hop stretch*
//! factors of a subgraph so the claim can be measured on simulated
//! networks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Layout, NodeId, UndirectedGraph};

/// Max-heap entry ordered by minimal cost (reversed for the binary heap).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest cost first. Costs are finite, ties by node ID
        // for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path costs under an arbitrary non-negative edge
/// weight. Unreachable nodes get `None`.
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph, paths::dijkstra};
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let cost = dijkstra(&g, NodeId::new(0), |_, _| 2.0);
/// assert_eq!(cost[2], Some(4.0));
/// ```
pub fn dijkstra<W>(g: &UndirectedGraph, source: NodeId, mut weight: W) -> Vec<Option<f64>>
where
    W: FnMut(NodeId, NodeId) -> f64,
{
    let mut dist: Vec<Option<f64>> = vec![None; g.node_count()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = Some(0.0);
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if dist[node.index()].is_some_and(|d| cost > d) {
            continue; // stale entry
        }
        for v in g.neighbors(node) {
            let w = weight(node, v);
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = cost + w;
            if dist[v.index()].is_none_or(|d| next < d) {
                dist[v.index()] = Some(next);
                heap.push(HeapEntry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    dist
}

/// Single-source shortest-path **tree** under an arbitrary non-negative
/// edge weight, restricted to nodes accepted by `include`: returns each
/// node's predecessor on the cheapest path from `source` (`None` for the
/// source itself and for unreachable or excluded nodes).
///
/// The `include` predicate lets callers route over an induced subgraph —
/// e.g. the still-alive nodes of a lifetime simulation — without
/// materializing it. Ties are broken by node ID, so the tree is
/// deterministic.
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph, paths::dijkstra_parents};
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let parent = dijkstra_parents(&g, NodeId::new(0), |_, _| 1.0, |_| true);
/// assert_eq!(parent[2], Some(NodeId::new(1)));
/// assert_eq!(parent[0], None);
/// ```
pub fn dijkstra_parents<W, F>(
    g: &UndirectedGraph,
    source: NodeId,
    weight: W,
    include: F,
) -> Vec<Option<NodeId>>
where
    W: FnMut(NodeId, NodeId) -> f64,
    F: FnMut(NodeId) -> bool,
{
    dijkstra_tree(g, source, weight, include).0
}

/// Like [`dijkstra_parents`], but also returns each node's path cost from
/// `source` (`f64::INFINITY` for unreachable or excluded nodes).
///
/// The cost array is what incremental routing caches need: whether a
/// topology change can affect a cached tree is decided by comparing the
/// change's endpoints' costs, without recomputing the tree.
pub fn dijkstra_tree<W, F>(
    g: &UndirectedGraph,
    source: NodeId,
    mut weight: W,
    mut include: F,
) -> (Vec<Option<NodeId>>, Vec<f64>)
where
    W: FnMut(NodeId, NodeId) -> f64,
    F: FnMut(NodeId) -> bool,
{
    let n = g.node_count();
    let mut dist: Vec<f64> = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue; // stale entry
        }
        for v in g.neighbors(node) {
            if !include(v) {
                continue;
            }
            let w = weight(node, v);
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = cost + w;
            if next < dist[v.index()] {
                dist[v.index()] = next;
                parent[v.index()] = Some(node);
                heap.push(HeapEntry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    (parent, dist)
}

/// The *power cost* of routing along an edge: `d(u,v)ⁿ` for path-loss
/// exponent `n`. Minimizing the sum over a route minimizes radiated energy.
pub fn power_weight(layout: &Layout, exponent: f64) -> impl Fn(NodeId, NodeId) -> f64 + '_ {
    move |u, v| layout.distance(u, v).powf(exponent)
}

/// Summary of how much worse routes in `sub` are than in `full`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stretch {
    /// Largest ratio over all connected pairs.
    pub max: f64,
    /// Mean ratio over all connected pairs.
    pub mean: f64,
    /// Number of node pairs measured.
    pub pairs: usize,
}

/// Computes the stretch of `sub` relative to `full` under a shared edge
/// weight: for every pair connected in `full`, the ratio of the cheapest
/// route in `sub` to the cheapest in `full`.
///
/// # Panics
///
/// Panics if `sub` disconnects a pair that `full` connects (the ratio would
/// be infinite), or if graphs have different node counts.
pub fn stretch<W>(sub: &UndirectedGraph, full: &UndirectedGraph, weight: W) -> Stretch
where
    W: FnMut(NodeId, NodeId) -> f64 + Copy,
{
    assert_eq!(sub.node_count(), full.node_count());
    let n = full.node_count();
    let mut max = 1.0f64;
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for s in 0..n as u32 {
        let source = NodeId::new(s);
        let d_full = dijkstra(full, source, weight);
        let d_sub = dijkstra(sub, source, weight);
        for t in (s + 1)..n as u32 {
            let t = t as usize;
            match (d_full[t], d_sub[t]) {
                (None, _) => {}
                (Some(f), Some(g)) => {
                    // Pairs at zero cost (co-located chains) count as ratio 1.
                    let ratio = if f == 0.0 { 1.0 } else { g / f };
                    max = max.max(ratio);
                    sum += ratio;
                    pairs += 1;
                }
                (Some(_), None) => {
                    panic!("subgraph disconnects pair ({source}, n{t}); stretch undefined")
                }
            }
        }
    }
    Stretch {
        max,
        mean: if pairs == 0 { 1.0 } else { sum / pairs as f64 },
        pairs,
    }
}

/// Power stretch: route-energy ratio under `d(u,v)ⁿ` edge costs.
pub fn power_stretch(
    sub: &UndirectedGraph,
    full: &UndirectedGraph,
    layout: &Layout,
    exponent: f64,
) -> Stretch {
    stretch(sub, full, |u, v| layout.distance(u, v).powf(exponent))
}

/// Hop stretch: path-length ratio under unit edge costs.
pub fn hop_stretch(sub: &UndirectedGraph, full: &UndirectedGraph) -> Stretch {
    stretch(sub, full, |_, _| 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_geom::Point2;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0-1-2 with cheap edges vs direct expensive 0-2.
        let mut g = UndirectedGraph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(0), n(2));
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
        ]);
        // Quadratic power cost: detour 1+1=2 beats direct 4.
        let cost = dijkstra(&g, n(0), power_weight(&layout, 2.0));
        assert_eq!(cost[2], Some(2.0));
        // Hop cost: direct edge wins.
        let hops = dijkstra(&g, n(0), |_, _| 1.0);
        assert_eq!(hops[2], Some(1.0));
    }

    #[test]
    fn dijkstra_parents_builds_the_tree_and_respects_include() {
        // 0-1-2-3 chain plus a 0-3 shortcut.
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        g.add_edge(n(0), n(3));
        let parent = dijkstra_parents(&g, n(0), |_, _| 1.0, |_| true);
        assert_eq!(parent[0], None);
        assert_eq!(parent[1], Some(n(0)));
        assert_eq!(parent[3], Some(n(0)), "shortcut wins under hop weight");
        // Excluding node 3 forces the chain and leaves it parentless.
        let parent = dijkstra_parents(&g, n(0), |_, _| 1.0, |v| v != n(3));
        assert_eq!(parent[3], None);
        assert_eq!(parent[2], Some(n(1)));
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let g = UndirectedGraph::new(2);
        let cost = dijkstra(&g, n(0), |_, _| 1.0);
        assert_eq!(cost[0], Some(0.0));
        assert_eq!(cost[1], None);
    }

    #[test]
    fn stretch_of_identical_graph_is_one() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let s = hop_stretch(&g, &g);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.pairs, 3);
    }

    #[test]
    fn removing_shortcut_increases_hop_stretch() {
        let mut full = UndirectedGraph::new(3);
        full.add_edge(n(0), n(1));
        full.add_edge(n(1), n(2));
        full.add_edge(n(0), n(2));
        let mut sub = full.clone();
        sub.remove_edge(n(0), n(2));
        let s = hop_stretch(&sub, &full);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.pairs, 3);
    }

    #[test]
    fn power_stretch_can_be_below_hop_stretch() {
        // Power metric: two short hops cost the same as... less than one
        // long hop, so removing the long edge does not hurt power routes.
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
        ]);
        let mut full = UndirectedGraph::new(3);
        full.add_edge(n(0), n(1));
        full.add_edge(n(1), n(2));
        full.add_edge(n(0), n(2));
        let mut sub = full.clone();
        sub.remove_edge(n(0), n(2));
        let p = power_stretch(&sub, &full, &layout, 2.0);
        assert_eq!(p.max, 1.0); // detour is strictly cheaper in energy
        let h = hop_stretch(&sub, &full);
        assert!(h.max > 1.0);
    }

    #[test]
    #[should_panic(expected = "disconnects")]
    fn stretch_panics_when_pair_disconnected() {
        let mut full = UndirectedGraph::new(2);
        full.add_edge(n(0), n(1));
        let sub = UndirectedGraph::new(2);
        let _ = hop_stretch(&sub, &full);
    }

    #[test]
    fn disconnected_full_pairs_are_skipped() {
        let full = UndirectedGraph::new(3); // no edges at all
        let sub = UndirectedGraph::new(3);
        let s = hop_stretch(&sub, &full);
        assert_eq!(s.pairs, 0);
        assert_eq!(s.mean, 1.0);
    }
}
