//! Disjoint-set union (union-find) with path compression and union by rank.

use crate::NodeId;

/// A union-find structure over nodes `0..n`.
///
/// Used to compare connected partitions of `G_R` and the topology-controlled
/// subgraphs cheaply (the Theorem 2.1 connectivity-preservation check).
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UnionFind};
///
/// let mut uf = UnionFind::new(3);
/// uf.union(NodeId::new(0), NodeId::new(1));
/// assert!(uf.connected(NodeId::new(0), NodeId::new(1)));
/// assert!(!uf.connected(NodeId::new(0), NodeId::new(2)));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many nodes");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of `u`'s set.
    pub fn find(&mut self, u: NodeId) -> NodeId {
        let mut x = u.raw();
        // Find the root.
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        while self.parent[x as usize] != root {
            let next = self.parent[x as usize];
            self.parent[x as usize] = root;
            x = next;
        }
        NodeId::new(root)
    }

    /// Merges the sets containing `u` and `v`; returns `true` if they were
    /// previously separate.
    pub fn union(&mut self, u: NodeId, v: NodeId) -> bool {
        let ru = self.find(u).raw();
        let rv = self.find(v).raw();
        if ru == rv {
            return false;
        }
        let (hi, lo) = if self.rank[ru as usize] >= self.rank[rv as usize] {
            (ru, rv)
        } else {
            (rv, ru)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `u` and `v` are in the same set.
    pub fn connected(&mut self, u: NodeId, v: NodeId) -> bool {
        self.find(u) == self.find(v)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Canonical component labels: `labels[i]` is the same value for all
    /// nodes in one component, and components are numbered `0, 1, …` in
    /// order of their smallest member.
    pub fn component_labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![0usize; n];
        let mut next = 0usize;
        for (i, label) in labels.iter_mut().enumerate() {
            let root = self.find(NodeId::new(i as u32)).index();
            if label_of_root[root] == usize::MAX {
                label_of_root[root] = next;
                next += 1;
            }
            *label = label_of_root[root];
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(n(i)), n(i));
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(n(0), n(1)));
        assert!(uf.union(n(2), n(3)));
        assert!(!uf.union(n(1), n(0))); // already merged
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(n(0), n(1)));
        assert!(!uf.connected(n(0), n(2)));
        assert!(uf.union(n(1), n(2)));
        assert!(uf.connected(n(0), n(3)));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn component_labels_are_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(n(4), n(5));
        uf.union(n(0), n(2));
        let labels = uf.component_labels();
        // Components in order of smallest member: {0,2}=0, {1}=1, {3}=2, {4,5}=3.
        assert_eq!(labels, vec![0, 1, 0, 2, 3, 3]);
    }

    #[test]
    fn long_chain_compresses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(n(i), n(i + 1));
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(n(0), n(999)));
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
