//! Node identities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A node identifier: a dense index into a [`crate::Layout`].
///
/// The paper assigns each node "a unique integer ID" (§3.3) used to break
/// ties in edge IDs; this newtype is that ID.
///
/// # Example
///
/// ```
/// use cbtc_graph::NodeId;
///
/// let u = NodeId::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(u.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node ID from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index as a `usize`, for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw numeric ID (used in the paper's lexicographic edge IDs).
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> u32 {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        let mut v = vec![NodeId::new(5), NodeId::new(1), NodeId::new(3)];
        v.sort();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }
}
