//! Node layouts: the positions of all nodes in the plane.

use cbtc_geom::{Angle, Point2};
use serde::{Deserialize, Serialize};

use crate::NodeId;

/// The positions of a set of nodes in the plane.
///
/// A `Layout` is the ground truth the *simulator* knows; protocol logic in
/// `cbtc-core` never reads it directly (nodes only observe reception powers
/// and directions), preserving the paper's GPS-free information model.
///
/// # Example
///
/// ```
/// use cbtc_graph::{Layout, NodeId};
/// use cbtc_geom::Point2;
///
/// let layout = Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)]);
/// assert_eq!(layout.len(), 2);
/// assert_eq!(layout.distance(NodeId::new(0), NodeId::new(1)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Layout {
    positions: Vec<Point2>,
}

impl Layout {
    /// Creates a layout from node positions; `positions[i]` is the location
    /// of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite or the layout exceeds
    /// `u32::MAX` nodes.
    pub fn new(positions: Vec<Point2>) -> Self {
        assert!(
            positions.iter().all(|p| p.is_finite()),
            "all node positions must be finite"
        );
        assert!(positions.len() <= u32::MAX as usize, "too many nodes");
        Layout { positions }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn position(&self, u: NodeId) -> Point2 {
        self.positions[u.index()]
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.position(u).distance(self.position(v))
    }

    /// The bearing of `v` as seen from `u` (the paper's `dir_u(v)`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the nodes are co-located.
    pub fn direction(&self, u: NodeId, v: NodeId) -> Angle {
        self.position(u).direction_to(self.position(v))
    }

    /// Iterator over all node IDs.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId::new)
    }

    /// Iterator over `(id, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Point2)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, p)| (NodeId::new(i as u32), *p))
    }

    /// All positions as a slice (for rendering).
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Moves node `u` to a new position (used by mobility models).
    ///
    /// # Panics
    ///
    /// Panics if the position is non-finite or `u` out of range.
    pub fn set_position(&mut self, u: NodeId, p: Point2) {
        assert!(p.is_finite(), "node position must be finite");
        self.positions[u.index()] = p;
    }

    /// Appends a node, returning its ID (used when nodes join).
    pub fn push(&mut self, p: Point2) -> NodeId {
        assert!(p.is_finite(), "node position must be finite");
        let id = NodeId::new(self.positions.len() as u32);
        self.positions.push(p);
        id
    }
}

impl FromIterator<Point2> for Layout {
    fn from_iter<T: IntoIterator<Item = Point2>>(iter: T) -> Self {
        Layout::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Layout {
        Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn basic_accessors() {
        let l = triangle();
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert_eq!(l.position(NodeId::new(1)), Point2::new(1.0, 0.0));
        assert_eq!(l.node_ids().count(), 3);
        assert_eq!(l.iter().count(), 3);
        assert_eq!(l.positions().len(), 3);
    }

    #[test]
    fn distances_and_directions() {
        let l = triangle();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert_eq!(l.distance(a, b), 1.0);
        assert!((l.distance(b, c) - 2f64.sqrt()).abs() < 1e-12);
        assert!(l.direction(a, b).radians().abs() < 1e-12);
        assert!((l.direction(a, c).radians() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn mutation() {
        let mut l = triangle();
        l.set_position(NodeId::new(0), Point2::new(5.0, 5.0));
        assert_eq!(l.position(NodeId::new(0)), Point2::new(5.0, 5.0));
        let id = l.push(Point2::new(9.0, 9.0));
        assert_eq!(id, NodeId::new(3));
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn from_iterator() {
        let l: Layout = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_position_rejected() {
        let _ = Layout::new(vec![Point2::new(f64::NAN, 0.0)]);
    }
}
