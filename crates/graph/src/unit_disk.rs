//! Unit-disk graph construction: the max-power graph `G_R`.

use crate::spatial::CellList;
use crate::{Layout, SpatialGrid, UndirectedGraph};

/// Builds `G_R = (V, E)` with `E = {(u, v) : d(u, v) ≤ R}` — the graph
/// induced when every node transmits at maximum power (§1).
///
/// Co-located nodes (distance 0) are connected like any other pair within
/// range.
///
/// Uses a spatial index with cell side `R` (a [`CellList`] sweep, or
/// [`SpatialGrid`] queries when the layout is too sparse for a dense cell
/// array), so construction costs `O(n + |E|)` for bounded-density layouts
/// instead of the all-pairs `O(n²)` of [`unit_disk_graph_brute`] (which
/// remains the oracle the property tests compare against).
///
/// # Panics
///
/// Panics if `radius` is negative or not finite.
///
/// # Example
///
/// ```
/// use cbtc_graph::{Layout, NodeId, unit_disk::unit_disk_graph};
/// use cbtc_geom::Point2;
///
/// let layout = Layout::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(3.0, 0.0),
///     Point2::new(10.0, 0.0),
/// ]);
/// let g = unit_disk_graph(&layout, 5.0);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
/// ```
pub fn unit_disk_graph(layout: &Layout, radius: f64) -> UndirectedGraph {
    unit_disk_graph_where(layout, radius, |_| true)
}

/// [`unit_disk_graph`] restricted to the nodes where `keep` holds: edges
/// are added only between kept nodes; the rest stay as isolated vertices
/// of the same node set.
///
/// This is the online form the churn experiments probe continuously —
/// `G_R` over the *live* (started, not crashed) population.
///
/// # Panics
///
/// Panics if `radius` is negative or not finite.
pub fn unit_disk_graph_where(
    layout: &Layout,
    radius: f64,
    keep: impl Fn(crate::NodeId) -> bool,
) -> UndirectedGraph {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius must be finite and non-negative, got {radius}"
    );
    // A zero radius still connects co-located nodes; any positive cell
    // side works for that query.
    let cell = if radius > 0.0 { radius } else { 1.0 };
    match CellList::try_from_layout(layout, cell) {
        Some(list) => {
            // The sweep yields each qualifying pair exactly once; build
            // the adjacency in bulk rather than edge by edge.
            let mut pairs = Vec::new();
            list.for_each_pair_within(layout, radius, |u, v| {
                if keep(u) && keep(v) {
                    pairs.push((u, v));
                }
            });
            UndirectedGraph::from_edges(layout.len(), pairs)
        }
        None => {
            let mut g = UndirectedGraph::new(layout.len());
            // Bounding box too sparse for a dense cell array: hash-grid
            // per-node queries instead.
            let grid = SpatialGrid::from_layout(layout, cell);
            let r2 = radius * radius;
            let mut candidates = Vec::new();
            for (u, pu) in layout.iter() {
                if !keep(u) {
                    continue;
                }
                candidates.clear();
                grid.candidates_within(pu, radius, &mut candidates);
                for &v in &candidates {
                    // Each unordered pair is seen from both endpoints.
                    if u < v && keep(v) && pu.distance_squared(layout.position(v)) <= r2 {
                        g.add_edge(u, v);
                    }
                }
            }
            g
        }
    }
}

/// All-pairs `G_R` construction — the `O(n²)` reference implementation.
///
/// Semantically identical to [`unit_disk_graph`]; kept as the oracle for
/// equivalence tests and as the baseline the `churn` benchmark measures
/// the spatial index against.
///
/// # Panics
///
/// Panics if `radius` is negative or not finite.
pub fn unit_disk_graph_brute(layout: &Layout, radius: f64) -> UndirectedGraph {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius must be finite and non-negative, got {radius}"
    );
    let mut g = UndirectedGraph::new(layout.len());
    let r2 = radius * radius;
    let ids: Vec<_> = layout.node_ids().collect();
    for (i, &u) in ids.iter().enumerate() {
        let pu = layout.position(u);
        for &v in &ids[i + 1..] {
            if pu.distance_squared(layout.position(v)) <= r2 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use cbtc_geom::Point2;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn boundary_distance_included() {
        let layout = Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(5.0, 0.0)]);
        let g = unit_disk_graph(&layout, 5.0);
        assert!(g.has_edge(n(0), n(1)));
        let g2 = unit_disk_graph(&layout, 4.999);
        assert!(!g2.has_edge(n(0), n(1)));
    }

    #[test]
    fn zero_radius_connects_only_colocated() {
        let layout = Layout::new(vec![
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 1.0),
        ]);
        let g = unit_disk_graph(&layout, 0.0);
        assert!(g.has_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn grid_neighbor_counts() {
        // 3×3 unit grid with radius 1: inner node has 4 neighbors.
        let mut pts = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                pts.push(Point2::new(x as f64, y as f64));
            }
        }
        let g = unit_disk_graph(&Layout::new(pts), 1.0);
        assert_eq!(g.degree(n(4)), 4); // center
        assert_eq!(g.degree(n(0)), 2); // corner
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn large_radius_gives_complete_graph() {
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
        ]);
        let g = unit_disk_graph(&layout, 10.0);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_rejected() {
        let _ = unit_disk_graph(&Layout::default(), -1.0);
    }
}
