//! Directed neighbor relations and their symmetric closure / core.
//!
//! `CBTC(α)` produces for every node `u` a *directed* neighbor set
//! `N_α(u)` — the nodes `u` discovered. The relation need not be symmetric
//! (Example 2.1). The paper derives two undirected graphs from it:
//!
//! * `E_α` — the **symmetric closure** (smallest symmetric superset):
//!   `(u,v) ∈ E_α` iff `(u,v) ∈ N_α` or `(v,u) ∈ N_α`;
//! * `E⁻_α` — the **symmetric core** (largest symmetric subset):
//!   `(u,v) ∈ E⁻_α` iff `(u,v) ∈ N_α` and `(v,u) ∈ N_α`
//!   (sound for `α ≤ 2π/3`, Theorem 3.2).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::{NodeId, UndirectedGraph};

/// A directed graph on nodes `0..n`, representing a neighbor relation such
/// as `N_α`.
///
/// # Example
///
/// ```
/// use cbtc_graph::{DirectedGraph, NodeId};
///
/// let mut n_alpha = DirectedGraph::new(2);
/// n_alpha.add_edge(NodeId::new(0), NodeId::new(1));
/// // Closure keeps the asymmetric edge, core drops it.
/// assert_eq!(n_alpha.symmetric_closure().edge_count(), 1);
/// assert_eq!(n_alpha.symmetric_core().edge_count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectedGraph {
    out: Vec<BTreeSet<NodeId>>,
}

impl DirectedGraph {
    /// Creates an edgeless directed graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        DirectedGraph {
            out: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(BTreeSet::len).sum()
    }

    /// Adds the directed edge `(u, v)`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self-loop {u} rejected");
        assert!(
            u.index() < self.out.len() && v.index() < self.out.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.out.len()
        );
        self.out[u.index()].insert(v);
    }

    /// Removes the directed edge `(u, v)`; returns whether it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.out[u.index()].remove(&v)
    }

    /// Whether the directed edge `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out[u.index()].contains(&v)
    }

    /// Out-neighbors of `u` (the set `N_α(u)`), in increasing ID order.
    pub fn out_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[u.index()].iter().copied()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u.index()].len()
    }

    /// Iterator over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out.iter().enumerate().flat_map(|(i, nbrs)| {
            let u = NodeId::new(i as u32);
            nbrs.iter().copied().map(move |v| (u, v))
        })
    }

    /// The symmetric closure `E_α`: smallest symmetric relation containing
    /// this one. `(u,v)` becomes an undirected edge iff either direction is
    /// present.
    pub fn symmetric_closure(&self) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(self.node_count());
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// The symmetric core `E⁻_α`: largest symmetric relation contained in
    /// this one. `(u,v)` becomes an undirected edge iff *both* directions
    /// are present.
    pub fn symmetric_core(&self) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(self.node_count());
        for (u, v) in self.edges() {
            if u < v && self.has_edge(v, u) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The edges present in exactly one direction — the "asymmetric edges"
    /// that §3.2's optimization removes. Returned as the directed
    /// `(source, target)` pairs that lack a reverse edge.
    pub fn asymmetric_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.edges()
            .filter(|&(u, v)| !self.has_edge(v, u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn directed_edges_are_one_way() {
        let mut g = DirectedGraph::new(3);
        g.add_edge(n(0), n(1));
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(n(0)), 1);
        assert_eq!(g.out_degree(n(1)), 0);
    }

    #[test]
    fn closure_and_core_bracket_the_relation() {
        // 0→1 mutual, 0→2 one-way.
        let mut g = DirectedGraph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(0));
        g.add_edge(n(0), n(2));

        let closure = g.symmetric_closure();
        assert!(closure.has_edge(n(0), n(1)));
        assert!(closure.has_edge(n(0), n(2)));
        assert_eq!(closure.edge_count(), 2);

        let core = g.symmetric_core();
        assert!(core.has_edge(n(0), n(1)));
        assert!(!core.has_edge(n(0), n(2)));
        assert_eq!(core.edge_count(), 1);

        // Core ⊆ closure always.
        assert!(core.is_subgraph_of(&closure));
    }

    #[test]
    fn asymmetric_edge_listing() {
        let mut g = DirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(0));
        g.add_edge(n(2), n(3));
        assert_eq!(g.asymmetric_edges(), vec![(n(2), n(3))]);
    }

    #[test]
    fn removal() {
        let mut g = DirectedGraph::new(2);
        g.add_edge(n(0), n(1));
        assert!(g.remove_edge(n(0), n(1)));
        assert!(!g.remove_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = DirectedGraph::new(2);
        g.add_edge(n(1), n(1));
    }

    #[test]
    fn edges_iteration_deterministic() {
        let mut g = DirectedGraph::new(3);
        g.add_edge(n(2), n(0));
        g.add_edge(n(0), n(2));
        g.add_edge(n(0), n(1));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(0), n(2)), (n(2), n(0))]);
    }
}
