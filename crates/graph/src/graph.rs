//! Undirected graphs over a fixed node set.

use serde::Serialize;

use crate::NodeId;

/// An undirected simple graph on nodes `0..n`.
///
/// Adjacency is stored as sorted vectors, so iteration order is
/// deterministic — a requirement for reproducible experiments — while
/// insertion and membership stay cache-friendly at the low degrees
/// topology-controlled graphs have (the paper's whole point is bounded
/// degree, §3).
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph};
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(g.degree(NodeId::new(0)), 1);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct UndirectedGraph {
    adj: Vec<Vec<NodeId>>,
}

// Deserialization re-establishes the representation invariant (sorted,
// deduplicated, symmetric adjacency without self-loops) instead of
// trusting the input: external JSON with unsorted or one-sided lists
// would otherwise silently break every `binary_search`-based operation.
impl serde::Deserialize for UndirectedGraph {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("UndirectedGraph: expected a map"))?;
        let adj: Vec<Vec<NodeId>> = serde::map_field(entries, "adj", "UndirectedGraph")?;
        let n = adj.len();
        let mut edges = Vec::new();
        for (i, nbrs) in adj.iter().enumerate() {
            let u = NodeId::new(i as u32);
            for &w in nbrs {
                if w == u {
                    return Err(serde::DeError::custom(format!(
                        "UndirectedGraph: self-loop at node {u}"
                    )));
                }
                if w.index() >= n {
                    return Err(serde::DeError::custom(format!(
                        "UndirectedGraph: neighbor {w} out of range for {n} nodes"
                    )));
                }
                edges.push((u, w));
            }
        }
        Ok(UndirectedGraph::from_edges(n, edges))
    }
}

impl UndirectedGraph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph on `n` nodes from unordered edges in bulk:
    /// `O(n + |E| log Δ)` total instead of one sorted insertion per edge.
    /// Duplicate edges are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let edges: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            assert!(u != v, "self-loop {u} rejected");
            assert!(
                u.index() < n && v.index() < n,
                "edge ({u}, {v}) out of range for {n} nodes"
            );
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut adj: Vec<Vec<NodeId>> = degree
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        for &(u, v) in &edges {
            adj[u.index()].push(v);
            adj[v.index()].push(u);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        UndirectedGraph { adj }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds the undirected edge `{u, v}`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are not meaningful for radio links)
    /// or either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self-loop {u} rejected");
        assert!(
            u.index() < self.adj.len() && v.index() < self.adj.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.adj.len()
        );
        // Both directions are inserted or neither: the Err/Ok outcome is
        // identical for a consistent adjacency, so checking one suffices.
        if let Err(i) = self.adj[u.index()].binary_search(&v) {
            self.adj[u.index()].insert(i, v);
            let j = self.adj[v.index()]
                .binary_search(&u)
                .expect_err("adjacency out of sync");
            self.adj[v.index()].insert(j, u);
        }
    }

    /// Removes the undirected edge `{u, v}` if present; returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        match self.adj[u.index()].binary_search(&v) {
            Err(_) => false,
            Ok(i) => {
                self.adj[u.index()].remove(i);
                let j = self.adj[v.index()]
                    .binary_search(&u)
                    .expect("adjacency out of sync");
                self.adj[v.index()].remove(j);
                true
            }
        }
    }

    /// Replaces `u`'s entire adjacency row with `new_row` in one pass,
    /// fixing the affected neighbor rows and reporting the net edge delta.
    ///
    /// `new_row` must be strictly sorted, free of `u`, and in range. The
    /// neighbors dropped from the row are appended to `removed` and the new
    /// ones to `added` (both are cleared first), each in increasing ID
    /// order; neighbors present in both the old and new row are untouched —
    /// their rows see **zero** edits, where a remove-all-then-re-add loop
    /// would binary-search and memmove every one of them twice.
    ///
    /// This is the batched form of per-edge [`Self::remove_edge`] /
    /// [`Self::add_edge`] that incremental reconfiguration uses when it
    /// already knows a node's complete new neighborhood: `u`'s row is
    /// diffed and rewritten once (`O(deg)`) instead of edited edge by edge
    /// (`O(deg²)` memmoves).
    ///
    /// # Panics
    ///
    /// Panics if `u` or any entry of `new_row` is out of range, or if
    /// `new_row` contains `u` or is not strictly sorted.
    pub fn rebuild_row(
        &mut self,
        u: NodeId,
        new_row: &[NodeId],
        removed: &mut Vec<NodeId>,
        added: &mut Vec<NodeId>,
    ) {
        removed.clear();
        added.clear();
        assert!(
            u.index() < self.adj.len(),
            "node {u} out of range for {} nodes",
            self.adj.len()
        );
        assert!(
            new_row.windows(2).all(|w| w[0] < w[1]),
            "new row for {u} must be strictly sorted"
        );
        if let Some(&v) = new_row.last() {
            assert!(
                v.index() < self.adj.len(),
                "neighbor {v} out of range for {} nodes",
                self.adj.len()
            );
        }
        assert!(new_row.binary_search(&u).is_err(), "self-loop {u} rejected");
        // Merge-diff the sorted old and new rows into the two delta lists.
        let mut old = std::mem::take(&mut self.adj[u.index()]);
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < new_row.len() {
            match old[i].cmp(&new_row[j]) {
                std::cmp::Ordering::Less => {
                    removed.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    added.push(new_row[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        removed.extend_from_slice(&old[i..]);
        added.extend_from_slice(&new_row[j..]);
        // Fix the far side of each changed edge; unchanged neighbors are
        // never touched.
        for &v in removed.iter() {
            let row = &mut self.adj[v.index()];
            let k = row.binary_search(&u).expect("adjacency out of sync");
            row.remove(k);
        }
        for &v in added.iter() {
            let row = &mut self.adj[v.index()];
            let k = row.binary_search(&u).expect_err("adjacency out of sync");
            row.insert(k, u);
        }
        // Rewrite u's row in place, reusing its allocation.
        old.clear();
        old.extend_from_slice(new_row);
        self.adj[u.index()] = old;
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// The degree of node `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Iterator over the neighbors of `u`, in increasing ID order.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[u.index()].iter().copied()
    }

    /// Iterator over all edges as `(u, v)` pairs with `u < v`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, nbrs)| {
            let u = NodeId::new(i as u32);
            nbrs.iter()
                .copied()
                .filter(move |v| u < *v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over all node IDs.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId::new)
    }

    /// Whether `self` is a subgraph of `other` (same node set, edge subset).
    pub fn is_subgraph_of(&self, other: &UndirectedGraph) -> bool {
        self.node_count() == other.node_count() && self.edges().all(|(u, v)| other.has_edge(u, v))
    }

    /// The graph containing the edges of both inputs.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn union(&self, other: &UndirectedGraph) -> UndirectedGraph {
        assert_eq!(
            self.node_count(),
            other.node_count(),
            "union requires equal node sets"
        );
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }
}

impl Extend<(NodeId, NodeId)> for UndirectedGraph {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.degree(n(0)), 0);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(0), n(1)); // idempotent
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(2)));
        assert!(g.remove_edge(n(0), n(1)));
        assert!(!g.remove_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(n(0), n(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(n(0), n(5));
    }

    #[test]
    fn edges_are_canonical_and_sorted() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(3), n(1));
        g.add_edge(n(2), n(0));
        g.add_edge(n(1), n(0));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(3))]);
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(n(2), n(4));
        g.add_edge(n(2), n(0));
        g.add_edge(n(2), n(3));
        let nbrs: Vec<_> = g.neighbors(n(2)).collect();
        assert_eq!(nbrs, vec![n(0), n(3), n(4)]);
        assert_eq!(g.degree(n(2)), 3);
    }

    #[test]
    fn subgraph_and_union() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(n(0), n(1));
        let mut h = g.clone();
        h.add_edge(n(1), n(2));
        assert!(g.is_subgraph_of(&h));
        assert!(!h.is_subgraph_of(&g));
        let u = g.union(&h);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(n(1), n(2)));
    }

    #[test]
    fn from_edges_bulk_matches_incremental() {
        let pairs = vec![(n(3), n(1)), (n(1), n(2)), (n(3), n(1)), (n(0), n(2))];
        let bulk = UndirectedGraph::from_edges(4, pairs.clone());
        let mut incremental = UndirectedGraph::new(4);
        for (u, v) in pairs {
            incremental.add_edge(u, v);
        }
        assert_eq!(bulk, incremental);
        assert_eq!(bulk.edge_count(), 3, "duplicate edge deduplicated");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_edges_rejects_self_loops() {
        let _ = UndirectedGraph::from_edges(2, vec![(n(1), n(1))]);
    }

    #[test]
    fn deserialize_normalizes_and_validates() {
        use serde::{Deserialize as _, Value};
        // Unsorted, duplicated, one-sided adjacency: deserialization must
        // restore the sorted/symmetric invariant.
        let raw = Value::Map(vec![(
            "adj".to_owned(),
            Value::Seq(vec![
                Value::Seq(vec![Value::UInt(2), Value::UInt(1), Value::UInt(2)]),
                Value::Seq(vec![]),
                Value::Seq(vec![]),
            ]),
        )]);
        let g = UndirectedGraph::from_value(&raw).expect("valid");
        assert!(g.has_edge(n(0), n(1)), "one-sided edge symmetrized");
        assert!(g.has_edge(n(2), n(0)));
        assert_eq!(g.edge_count(), 2, "duplicate deduplicated");
        let nbrs: Vec<_> = g.neighbors(n(0)).collect();
        assert_eq!(nbrs, vec![n(1), n(2)], "sorted");

        let self_loop = Value::Map(vec![(
            "adj".to_owned(),
            Value::Seq(vec![Value::Seq(vec![Value::UInt(0)])]),
        )]);
        assert!(UndirectedGraph::from_value(&self_loop).is_err());
        let out_of_range = Value::Map(vec![(
            "adj".to_owned(),
            Value::Seq(vec![Value::Seq(vec![Value::UInt(9)])]),
        )]);
        assert!(UndirectedGraph::from_value(&out_of_range).is_err());
    }

    #[test]
    fn rebuild_row_matches_per_edge_edits() {
        let mut g = UndirectedGraph::new(6);
        for (a, b) in [(0, 1), (0, 2), (0, 4), (3, 4), (1, 2)] {
            g.add_edge(n(a), n(b));
        }
        // Per-edge reference: remove all of 0's edges, re-add the new set.
        let mut reference = g.clone();
        for v in [1, 2, 4] {
            reference.remove_edge(n(0), n(v));
        }
        for v in [2, 3, 5] {
            reference.add_edge(n(0), n(v));
        }
        let (mut removed, mut added) = (Vec::new(), Vec::new());
        g.rebuild_row(n(0), &[n(2), n(3), n(5)], &mut removed, &mut added);
        assert_eq!(g, reference);
        assert_eq!(removed, vec![n(1), n(4)], "kept neighbor 2 not reported");
        assert_eq!(added, vec![n(3), n(5)]);
        // Rebuild to empty: clears the row and both far sides.
        g.rebuild_row(n(0), &[], &mut removed, &mut added);
        assert_eq!(removed, vec![n(2), n(3), n(5)]);
        assert!(added.is_empty());
        assert_eq!(g.degree(n(0)), 0);
        assert!(!g.has_edge(n(3), n(0)));
        assert!(g.has_edge(n(3), n(4)), "unrelated edge untouched");
        // No-op rebuild reports no deltas.
        g.rebuild_row(n(3), &[n(4)], &mut removed, &mut added);
        assert!(removed.is_empty() && added.is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rebuild_row_rejects_self_loop() {
        let mut g = UndirectedGraph::new(2);
        g.rebuild_row(n(0), &[n(0), n(1)], &mut Vec::new(), &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn rebuild_row_rejects_unsorted_input() {
        let mut g = UndirectedGraph::new(3);
        g.rebuild_row(n(0), &[n(2), n(1)], &mut Vec::new(), &mut Vec::new());
    }

    #[test]
    fn extend_from_pairs() {
        let mut g = UndirectedGraph::new(4);
        g.extend(vec![(n(0), n(1)), (n(2), n(3))]);
        assert_eq!(g.edge_count(), 2);
    }
}
