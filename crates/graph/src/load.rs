//! Traffic-load estimation: betweenness centrality and path-length
//! statistics.
//!
//! §3.3 and §6 of the paper warn that aggressive edge removal lengthens
//! routes and can concentrate traffic ("having fewer edges is more likely
//! to cause congestion"). These helpers quantify that tradeoff: hop
//! diameter, mean shortest-path length, and edge betweenness (the fraction
//! of shortest paths crossing each edge — a proxy for load under uniform
//! any-to-any traffic). Betweenness uses Brandes' algorithm on unweighted
//! graphs.

use std::collections::{HashMap, VecDeque};

use crate::{NodeId, UndirectedGraph};

/// Shortest-path statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Longest shortest path (hops) over connected pairs; 0 if no pairs.
    pub hop_diameter: usize,
    /// Mean shortest-path length over connected pairs.
    pub mean_hops: f64,
    /// Number of connected ordered pairs counted.
    pub pairs: usize,
}

/// Computes hop diameter and mean hop count via BFS from every node.
pub fn path_stats(g: &UndirectedGraph) -> PathStats {
    let mut diameter = 0usize;
    let mut total = 0usize;
    let mut pairs = 0usize;
    for s in g.node_ids() {
        let dist = crate::traversal::bfs_distances(g, s);
        for (t, d) in dist.iter().enumerate() {
            if let Some(d) = d {
                if t != s.index() {
                    diameter = diameter.max(*d);
                    total += d;
                    pairs += 1;
                }
            }
        }
    }
    PathStats {
        hop_diameter: diameter,
        mean_hops: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        pairs,
    }
}

/// Edge betweenness centrality (Brandes, unweighted): for each edge, the
/// sum over node pairs of the fraction of shortest paths using it.
/// Each undirected pair is counted once.
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph, load::edge_betweenness};
///
/// // Path 0–1–2: the middle edges carry all cross traffic.
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let bc = edge_betweenness(&g);
/// // Edge (0,1) carries pairs {0-1, 0-2} → 2.0.
/// assert_eq!(bc[&(NodeId::new(0), NodeId::new(1))], 2.0);
/// ```
pub fn edge_betweenness(g: &UndirectedGraph) -> HashMap<(NodeId, NodeId), f64> {
    let n = g.node_count();
    let mut centrality: HashMap<(NodeId, NodeId), f64> = g.edges().map(|e| (e, 0.0)).collect();

    for s in g.node_ids() {
        // BFS with path counting.
        let mut sigma = vec![0.0f64; n]; // number of shortest paths
        let mut dist = vec![usize::MAX; n];
        let mut predecessors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut order: Vec<NodeId> = Vec::new(); // nodes in BFS order
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for w in g.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
                if dist[w.index()] == dist[v.index()] + 1 {
                    sigma[w.index()] += sigma[v.index()];
                    predecessors[w.index()].push(v);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &v in &predecessors[w.index()] {
                let share = sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
                let key = (v.min(w), v.max(w));
                *centrality.get_mut(&key).expect("edge exists") += share;
                delta[v.index()] += share;
            }
        }
    }
    // Each unordered pair was counted from both endpoints.
    for value in centrality.values_mut() {
        *value /= 2.0;
    }
    centrality
}

/// The maximum edge betweenness — the most loaded link under uniform
/// traffic, the congestion proxy of the §6 discussion.
pub fn max_edge_load(g: &UndirectedGraph) -> f64 {
    edge_betweenness(g)
        .values()
        .fold(0.0f64, |acc, &v| acc.max(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path(len: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(len);
        for i in 0..len - 1 {
            g.add_edge(n(i as u32), n(i as u32 + 1));
        }
        g
    }

    #[test]
    fn path_stats_on_path_graph() {
        let g = path(4);
        let s = path_stats(&g);
        assert_eq!(s.hop_diameter, 3);
        assert_eq!(s.pairs, 12); // ordered pairs
                                 // Sum of hops: per direction 1+2+3 + 1+2 + 1 = 10 → 20 ordered.
        assert!((s.mean_hops - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_are_skipped() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        let s = path_stats(&g);
        assert_eq!(s.pairs, 2);
        assert_eq!(s.hop_diameter, 1);
    }

    #[test]
    fn betweenness_on_path_counts_crossing_pairs() {
        // Path 0–1–2–3: edge (1,2) carries pairs {0,1}×{2,3} plus (1,2)
        // itself? Crossing pairs: (0,2),(0,3),(1,2),(1,3) → 4.
        let g = path(4);
        let bc = edge_betweenness(&g);
        assert_eq!(bc[&(n(1), n(2))], 4.0);
        assert_eq!(bc[&(n(0), n(1))], 3.0); // (0,1),(0,2),(0,3)
        assert_eq!(bc[&(n(2), n(3))], 3.0);
        assert_eq!(max_edge_load(&g), 4.0);
    }

    #[test]
    fn betweenness_splits_over_parallel_routes() {
        // 4-cycle: each pair of opposite nodes has two equal routes, each
        // edge carries: adjacent pair 1.0 + two half-shares = 2.0 total.
        let mut g = path(4);
        g.add_edge(n(3), n(0));
        let bc = edge_betweenness(&g);
        for (_, v) in bc {
            assert!((v - 2.0).abs() < 1e-12, "cycle symmetry gives equal loads");
        }
    }

    #[test]
    fn star_center_edges_carry_everything() {
        let mut g = UndirectedGraph::new(5);
        for i in 1..5u32 {
            g.add_edge(n(0), n(i));
        }
        let bc = edge_betweenness(&g);
        // Each spoke: its own pair (1) plus 3 two-hop pairs × shared… each
        // leaf pair (i,j) uses both spokes once: 3 pairs per spoke / shared
        // count: each spoke carries pairs (0,i) and (i,j) for 3 j's → 4.
        for i in 1..5u32 {
            assert_eq!(bc[&(n(0), n(i))], 4.0);
        }
    }

    #[test]
    fn total_betweenness_equals_total_path_length() {
        // Sum over edges of betweenness == sum over pairs of path length
        // (every hop of every shortest path is attributed to one edge,
        // fractionally over equal-length alternatives).
        let mut g = UndirectedGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)] {
            g.add_edge(n(a), n(b));
        }
        let bc = edge_betweenness(&g);
        let total_bc: f64 = bc.values().sum();
        let stats = path_stats(&g);
        let total_hops = stats.mean_hops * stats.pairs as f64 / 2.0; // unordered
        assert!((total_bc - total_hops).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraph::new(3);
        assert_eq!(max_edge_load(&g), 0.0);
        assert!(edge_betweenness(&g).is_empty());
    }
}
