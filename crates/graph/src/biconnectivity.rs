//! Articulation points and bridges (biconnectivity analysis).
//!
//! The related work the paper positions against (Ramanathan &
//! Rosales-Hain, INFOCOM 2000) optimizes for *biconnected* topologies —
//! no single node or link failure may disconnect the network. These
//! helpers measure that robustness dimension for any topology-control
//! output: articulation points (cut vertices) and bridges (cut edges), via
//! the classic Hopcroft–Tarjan low-link DFS, implemented iteratively so
//! deep topologies cannot overflow the stack.

use crate::{NodeId, UndirectedGraph};

/// The cut structure of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutStructure {
    /// Nodes whose removal increases the number of components.
    pub articulation_points: Vec<NodeId>,
    /// Edges whose removal increases the number of components, as
    /// canonical `(min, max)` pairs in deterministic order.
    pub bridges: Vec<(NodeId, NodeId)>,
}

impl CutStructure {
    /// A graph is biconnected when it is connected, has at least three
    /// nodes, and has no articulation point. (Check connectivity
    /// separately; this only inspects the cut sets.)
    pub fn has_cut_vertices(&self) -> bool {
        !self.articulation_points.is_empty()
    }
}

/// Computes articulation points and bridges.
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph, biconnectivity::cut_structure};
///
/// // A path 0–1–2: the middle node is an articulation point, both edges
/// // are bridges.
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let cuts = cut_structure(&g);
/// assert_eq!(cuts.articulation_points, vec![NodeId::new(1)]);
/// assert_eq!(cuts.bridges.len(), 2);
/// ```
pub fn cut_structure(g: &UndirectedGraph) -> CutStructure {
    let n = g.node_count();
    let mut disc = vec![usize::MAX; n]; // discovery times
    let mut low = vec![usize::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut is_articulation = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0usize;

    for root in g.node_ids() {
        if disc[root.index()] != usize::MAX {
            continue;
        }
        // Iterative DFS: (node, neighbor iterator position).
        let mut root_children = 0usize;
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        stack.push((root, g.neighbors(root).collect(), 0));

        while let Some((u, nbrs, pos)) = stack.last_mut() {
            let u = *u;
            if *pos < nbrs.len() {
                let v = nbrs[*pos];
                *pos += 1;
                if disc[v.index()] == usize::MAX {
                    parent[v.index()] = Some(u);
                    if u == root {
                        root_children += 1;
                    }
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push((v, g.neighbors(v).collect(), 0));
                } else if Some(v) != parent[u.index()] {
                    // Back edge.
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                stack.pop();
                if let Some(p) = parent[u.index()] {
                    low[p.index()] = low[p.index()].min(low[u.index()]);
                    if low[u.index()] > disc[p.index()] {
                        bridges.push((p.min(u), p.max(u)));
                    }
                    if p != root && low[u.index()] >= disc[p.index()] {
                        is_articulation[p.index()] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_articulation[root.index()] = true;
        }
    }

    bridges.sort();
    CutStructure {
        articulation_points: (0..n)
            .filter(|&i| is_articulation[i])
            .map(|i| NodeId::new(i as u32))
            .collect(),
        bridges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn graph(size: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(size);
        for &(a, b) in edges {
            g.add_edge(n(a), n(b));
        }
        g
    }

    #[test]
    fn path_graph_cuts() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let cuts = cut_structure(&g);
        assert_eq!(cuts.articulation_points, vec![n(1), n(2)]);
        assert_eq!(cuts.bridges, vec![(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]);
        assert!(cuts.has_cut_vertices());
    }

    #[test]
    fn cycle_is_biconnected() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cuts = cut_structure(&g);
        assert!(cuts.articulation_points.is_empty());
        assert!(cuts.bridges.is_empty());
        assert!(!cuts.has_cut_vertices());
    }

    #[test]
    fn two_triangles_joined_at_a_vertex() {
        // Classic: the shared vertex is the articulation point, no bridges.
        let g = graph(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let cuts = cut_structure(&g);
        assert_eq!(cuts.articulation_points, vec![n(2)]);
        assert!(cuts.bridges.is_empty());
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles connected by one edge: both endpoints of the
        // connecting edge are articulation points and the edge is a bridge.
        let g = graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let cuts = cut_structure(&g);
        assert_eq!(cuts.articulation_points, vec![n(2), n(3)]);
        assert_eq!(cuts.bridges, vec![(n(2), n(3))]);
    }

    #[test]
    fn disconnected_components_analyzed_independently() {
        let g = graph(5, &[(0, 1), (2, 3), (3, 4)]);
        let cuts = cut_structure(&g);
        assert_eq!(cuts.articulation_points, vec![n(3)]);
        assert_eq!(cuts.bridges.len(), 3);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        assert_eq!(
            cut_structure(&UndirectedGraph::new(0)).articulation_points,
            vec![]
        );
        let lone = UndirectedGraph::new(1);
        let cuts = cut_structure(&lone);
        assert!(cuts.articulation_points.is_empty());
        assert!(cuts.bridges.is_empty());
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // 50 000-node path: recursion would blow the stack; iteration must
        // not.
        let size = 50_000;
        let mut g = UndirectedGraph::new(size);
        for i in 0..size - 1 {
            g.add_edge(n(i as u32), n(i as u32 + 1));
        }
        let cuts = cut_structure(&g);
        assert_eq!(cuts.articulation_points.len(), size - 2);
        assert_eq!(cuts.bridges.len(), size - 1);
    }

    #[test]
    fn complete_graph_has_no_cuts() {
        let mut g = UndirectedGraph::new(6);
        for i in 0..6u32 {
            for j in (i + 1)..6u32 {
                g.add_edge(n(i), n(j));
            }
        }
        let cuts = cut_structure(&g);
        assert!(cuts.articulation_points.is_empty());
        assert!(cuts.bridges.is_empty());
    }
}
