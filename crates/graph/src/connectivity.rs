//! Connectivity-preservation predicates.
//!
//! The paper's central correctness property (Theorem 2.1): a topology-
//! control output `G` *preserves the connectivity of* `G_R` when any two
//! nodes connected in `G_R` remain connected in `G`. Since every output the
//! algorithm produces is a subgraph of `G_R`, preservation is equivalent to
//! the two graphs inducing the same connected partition.

use crate::{traversal, UndirectedGraph};

/// Whether `sub` preserves the connectivity of `full`.
///
/// `sub` must be a subgraph of `full` (checked); preservation then reduces
/// to equality of the connected partitions.
///
/// # Panics
///
/// Panics if `sub` is not a subgraph of `full` — comparing unrelated graphs
/// is a logic error in an experiment, not a recoverable condition.
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph, connectivity::preserves_connectivity};
///
/// let mut full = UndirectedGraph::new(3);
/// full.add_edge(NodeId::new(0), NodeId::new(1));
/// full.add_edge(NodeId::new(1), NodeId::new(2));
/// full.add_edge(NodeId::new(0), NodeId::new(2));
///
/// let mut spanning = UndirectedGraph::new(3);
/// spanning.add_edge(NodeId::new(0), NodeId::new(1));
/// spanning.add_edge(NodeId::new(1), NodeId::new(2));
/// assert!(preserves_connectivity(&spanning, &full));
///
/// let mut broken = UndirectedGraph::new(3);
/// broken.add_edge(NodeId::new(0), NodeId::new(1));
/// assert!(!preserves_connectivity(&broken, &full));
/// ```
pub fn preserves_connectivity(sub: &UndirectedGraph, full: &UndirectedGraph) -> bool {
    assert!(
        sub.is_subgraph_of(full),
        "connectivity preservation is only defined for subgraphs"
    );
    same_partition(sub, full)
}

/// Whether two graphs on the same node set induce the same connected
/// partition.
pub fn same_partition(a: &UndirectedGraph, b: &UndirectedGraph) -> bool {
    assert_eq!(
        a.node_count(),
        b.node_count(),
        "partition comparison requires equal node sets"
    );
    traversal::component_labels(a) == traversal::component_labels(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn spanning_subgraph_preserves() {
        let mut full = UndirectedGraph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            full.add_edge(n(a), n(b));
        }
        let mut tree = UndirectedGraph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            tree.add_edge(n(a), n(b));
        }
        assert!(preserves_connectivity(&tree, &full));
    }

    #[test]
    fn splitting_a_component_fails() {
        let mut full = UndirectedGraph::new(3);
        full.add_edge(n(0), n(1));
        full.add_edge(n(1), n(2));
        let mut sub = UndirectedGraph::new(3);
        sub.add_edge(n(0), n(1));
        assert!(!preserves_connectivity(&sub, &full));
    }

    #[test]
    fn disconnected_full_graph_preserved_componentwise() {
        // full has components {0,1,2} and {3,4}; sub keeps each connected.
        let mut full = UndirectedGraph::new(5);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4)] {
            full.add_edge(n(a), n(b));
        }
        let mut sub = UndirectedGraph::new(5);
        for (a, b) in [(0, 1), (1, 2), (3, 4)] {
            sub.add_edge(n(a), n(b));
        }
        assert!(preserves_connectivity(&sub, &full));
    }

    #[test]
    #[should_panic(expected = "subgraphs")]
    fn non_subgraph_rejected() {
        let full = UndirectedGraph::new(2);
        let mut sub = UndirectedGraph::new(2);
        sub.add_edge(n(0), n(1));
        let _ = preserves_connectivity(&sub, &full);
    }

    #[test]
    fn empty_graphs_trivially_preserve() {
        let full = UndirectedGraph::new(3);
        let sub = UndirectedGraph::new(3);
        assert!(preserves_connectivity(&sub, &full));
        assert!(same_partition(&sub, &full));
    }
}
