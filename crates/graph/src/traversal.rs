//! Breadth-first traversal, connected components and hop distances.

use std::collections::VecDeque;

use crate::{NodeId, UndirectedGraph, UnionFind};

/// Hop distances from `source` to every node: `dist[i]` is the number of
/// edges on a shortest path, or `None` when unreachable.
///
/// # Example
///
/// ```
/// use cbtc_graph::{NodeId, UndirectedGraph, traversal::bfs_distances};
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// let d = bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d[1], Some(1));
/// assert_eq!(d[2], None);
/// ```
pub fn bfs_distances(g: &UndirectedGraph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Canonical connected-component labels (components numbered in order of
/// their smallest member).
pub fn component_labels(g: &UndirectedGraph) -> Vec<usize> {
    union_find_of(g).component_labels()
}

/// Number of connected components.
pub fn component_count(g: &UndirectedGraph) -> usize {
    union_find_of(g).component_count()
}

/// Whether the graph is connected (vacuously true when empty).
pub fn is_connected(g: &UndirectedGraph) -> bool {
    g.node_count() == 0 || component_count(g) == 1
}

/// A [`UnionFind`] populated with the graph's edges.
pub fn union_find_of(g: &UndirectedGraph) -> UnionFind {
    let mut uf = UnionFind::new(g.node_count());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf
}

/// The nodes of the component containing `u`, in increasing ID order.
pub fn component_of(g: &UndirectedGraph, u: NodeId) -> Vec<NodeId> {
    let dist = bfs_distances(g, u);
    dist.iter()
        .enumerate()
        .filter(|(_, d)| d.is_some())
        .map(|(i, _)| NodeId::new(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path_graph(len: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(len);
        for i in 0..len.saturating_sub(1) {
            g.add_edge(n(i as u32), n(i as u32 + 1));
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, n(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        let d2 = bfs_distances(&g, n(2));
        assert_eq!(d2, vec![Some(2), Some(1), Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(n(0), n(1));
        let d = bfs_distances(&g, n(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn components() {
        let mut g = UndirectedGraph::new(6);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(4), n(5));
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
        assert_eq!(component_labels(&g), vec![0, 0, 0, 1, 2, 2]);
        assert_eq!(component_of(&g, n(1)), vec![n(0), n(1), n(2)]);
        assert_eq!(component_of(&g, n(3)), vec![n(3)]);
    }

    #[test]
    fn connected_cases() {
        assert!(is_connected(&UndirectedGraph::new(0)));
        assert!(is_connected(&UndirectedGraph::new(1)));
        assert!(!is_connected(&UndirectedGraph::new(2)));
        assert!(is_connected(&path_graph(10)));
    }

    #[test]
    fn bfs_shortest_over_cycle() {
        // 0-1-2-3-0 cycle: distance 0→3 is 1, 0→2 is 2.
        let mut g = path_graph(4);
        g.add_edge(n(3), n(0));
        let d = bfs_distances(&g, n(0));
        assert_eq!(d[3], Some(1));
        assert_eq!(d[2], Some(2));
    }
}
