//! # cbtc-graph
//!
//! Graph substrate for the CBTC reproduction.
//!
//! The topology-control problem lives on graphs over a fixed node layout:
//! the max-power *unit-disk* graph `G_R`, the directed neighbor relation
//! `N_α` produced by `CBTC(α)`, its symmetric closure `E_α`, symmetric core
//! `E⁻_α`, and the optimized subgraphs. This crate provides those
//! structures and the analyses the paper's evaluation performs on them:
//!
//! * [`NodeId`] / [`Layout`] — node identities and positions;
//! * [`UndirectedGraph`] / [`DirectedGraph`] — adjacency structures with
//!   [`DirectedGraph::symmetric_closure`] (`E_α`) and
//!   [`DirectedGraph::symmetric_core`] (`E⁻_α`);
//! * [`SpatialGrid`] — uniform-grid spatial index making range queries and
//!   `G_R` construction `O(candidates)` instead of `O(n)`/`O(n²)`;
//! * [`unit_disk::unit_disk_graph`] — `G_R` construction (grid-indexed;
//!   [`unit_disk::unit_disk_graph_brute`] is the all-pairs oracle);
//! * [`UnionFind`], [`traversal`], [`connectivity`] — components and the
//!   connectivity-preservation predicate of Theorem 2.1;
//! * [`metrics`] — average degree and average radius (Table 1's columns);
//! * [`paths`] — Dijkstra and power/hop stretch factors vs `G_R`;
//! * [`spanners`] — the related-work baselines the paper cites in §1:
//!   relative neighborhood graph, Gabriel graph, Euclidean MST, k-nearest
//!   neighbors.
//!
//! # Paper map
//!
//! | module | implements |
//! |--------|------------|
//! | [`unit_disk`] | §1: the max-power graph `G_R` |
//! | [`DirectedGraph`] | §2: `N_α`, its closure `E_α` and core `E⁻_α` |
//! | [`connectivity`], [`traversal`] | Theorem 2.1's connectivity-preservation predicate |
//! | [`biconnectivity`] | cut vertices/bridges, for robustness analyses beyond §5 |
//! | [`metrics`] | §5 Table 1: average degree and average radius |
//! | [`paths`], [`load`] | §5: power/hop stretch, route load |
//! | [`spanners`] | §1 related work: RNG, Gabriel, MST, k-NN |
//! | [`spatial`] | scaling infrastructure (no paper analogue): the index that takes `G_R` construction and simulated beaconing to 10⁴–10⁵ nodes; its ring/shell queries ([`SpatialGrid::shell_scan`]) drive the output-sensitive CBTC growing phase |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod graph;
mod layout;
mod node;
mod union_find;

pub mod biconnectivity;
pub mod connectivity;
pub mod load;
pub mod metrics;
pub mod paths;
pub mod spanners;
pub mod spatial;
pub mod traversal;
pub mod unit_disk;

pub use digraph::DirectedGraph;
pub use graph::UndirectedGraph;
pub use layout::Layout;
pub use node::NodeId;
pub use spatial::SpatialGrid;
pub use union_find::UnionFind;
