//! Baseline proximity structures from the related work (§1).
//!
//! The paper situates CBTC against position-based structures: relative
//! neighborhood graphs (Toussaint), Gabriel graphs, and spanning-tree
//! approaches (Ramanathan & Rosales-Hain). These baselines let the bench
//! harness compare CBTC's degree/radius/stretch against the classical
//! geometric alternatives on the same layouts.
//!
//! All constructions are restricted to the unit-disk edge set (`d ≤ radius`)
//! so the comparison is with what a max-power radio could realize.

use crate::{unit_disk::unit_disk_graph, Layout, NodeId, UndirectedGraph, UnionFind};

/// Relative neighborhood graph (RNG) restricted to radius `radius`.
///
/// Edge `{u, v}` (with `d(u,v) ≤ radius`) is kept iff there is no witness
/// `w` with `max(d(u,w), d(v,w)) < d(u,v)` — no node strictly inside the
/// lune of `u` and `v`.
///
/// The RNG contains the Euclidean MST of each component, so it preserves
/// unit-disk connectivity.
pub fn relative_neighborhood_graph(layout: &Layout, radius: f64) -> UndirectedGraph {
    let full = unit_disk_graph(layout, radius);
    let mut g = UndirectedGraph::new(layout.len());
    for (u, v) in full.edges() {
        let duv = layout.distance(u, v);
        let blocked = layout.node_ids().any(|w| {
            w != u && w != v && layout.distance(u, w) < duv && layout.distance(v, w) < duv
        });
        if !blocked {
            g.add_edge(u, v);
        }
    }
    g
}

/// Gabriel graph restricted to radius `radius`.
///
/// Edge `{u, v}` is kept iff no other node lies strictly inside the circle
/// with diameter `u v`: `d(u,w)² + d(v,w)² < d(u,v)²` for no `w`.
pub fn gabriel_graph(layout: &Layout, radius: f64) -> UndirectedGraph {
    let full = unit_disk_graph(layout, radius);
    let mut g = UndirectedGraph::new(layout.len());
    for (u, v) in full.edges() {
        let d2 = layout.position(u).distance_squared(layout.position(v));
        let blocked = layout.node_ids().any(|w| {
            w != u && w != v && {
                let a2 = layout.position(u).distance_squared(layout.position(w));
                let b2 = layout.position(v).distance_squared(layout.position(w));
                a2 + b2 < d2
            }
        });
        if !blocked {
            g.add_edge(u, v);
        }
    }
    g
}

/// Euclidean minimum spanning forest of the unit-disk graph (Kruskal over
/// the `d ≤ radius` edges).
///
/// Produces the per-component MST; the sparsest structure that still
/// preserves unit-disk connectivity.
pub fn euclidean_mst(layout: &Layout, radius: f64) -> UndirectedGraph {
    let full = unit_disk_graph(layout, radius);
    let mut edges: Vec<(f64, NodeId, NodeId)> = full
        .edges()
        .map(|(u, v)| (layout.distance(u, v), u, v))
        .collect();
    // Deterministic order: by length, then endpoint IDs.
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut uf = UnionFind::new(layout.len());
    let mut g = UndirectedGraph::new(layout.len());
    for (_, u, v) in edges {
        if uf.union(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

/// Minimum-energy graph in the spirit of Rodoplu–Meng (cited in §1): keep
/// the unit-disk edge `{u, v}` iff no single relay `w` makes the two-hop
/// route cheaper, under the energy model `cost(x, y) = d(x, y)ⁿ +
/// relay_overhead` (the overhead models reception/processing energy at the
/// relay).
///
/// Every minimum-energy path of the unit-disk graph survives: if a relay
/// makes an edge non-optimal, the optimal route uses shorter edges that
/// are themselves kept (induction on edge length) — so connectivity is
/// preserved. With `exponent = 2` and zero overhead this is exactly the
/// Gabriel graph (the relay-superiority region is the circle with diameter
/// `u v`).
///
/// # Panics
///
/// Panics if `exponent < 1` or `relay_overhead < 0`.
pub fn minimum_energy_graph(
    layout: &Layout,
    radius: f64,
    exponent: f64,
    relay_overhead: f64,
) -> UndirectedGraph {
    assert!(exponent >= 1.0, "exponent must be ≥ 1, got {exponent}");
    assert!(
        relay_overhead >= 0.0,
        "relay overhead must be non-negative, got {relay_overhead}"
    );
    let full = unit_disk_graph(layout, radius);
    let mut g = UndirectedGraph::new(layout.len());
    for (u, v) in full.edges() {
        let direct = layout.distance(u, v).powf(exponent);
        let relay_beats = layout.node_ids().any(|w| {
            w != u && w != v && {
                let via = layout.distance(u, w).powf(exponent)
                    + layout.distance(w, v).powf(exponent)
                    + relay_overhead;
                via < direct
            }
        });
        if !relay_beats {
            g.add_edge(u, v);
        }
    }
    g
}

/// k-nearest-neighbors graph restricted to radius `radius`: each node links
/// to its `k` nearest unit-disk neighbors; the result is the symmetric
/// closure (an edge exists if either endpoint selected it).
///
/// Unlike the other structures this does *not* guarantee connectivity
/// preservation — it is the classic counter-baseline showing why naive
/// degree-k topologies fail.
pub fn k_nearest_neighbors(layout: &Layout, radius: f64, k: usize) -> UndirectedGraph {
    let full = unit_disk_graph(layout, radius);
    let mut g = UndirectedGraph::new(layout.len());
    for u in layout.node_ids() {
        let mut nbrs: Vec<(f64, NodeId)> = full
            .neighbors(u)
            .map(|v| (layout.distance(u, v), v))
            .collect();
        nbrs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(_, v) in nbrs.iter().take(k) {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::preserves_connectivity;
    use crate::traversal::is_connected;
    use cbtc_geom::Point2;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A deterministic pseudo-random layout (LCG) in a square.
    fn scattered(count: usize, side: f64, seed: u64) -> Layout {
        let mut state = seed.max(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        Layout::new(
            (0..count)
                .map(|_| Point2::new(next() * side, next() * side))
                .collect(),
        )
    }

    #[test]
    fn rng_drops_lune_blocked_edges() {
        // Equilateral-ish triangle: all edges survive; adding a midpoint
        // blocks the long edge.
        let l = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 0.1), // nearly between 0 and 1
        ]);
        let g = relative_neighborhood_graph(&l, 10.0);
        assert!(
            !g.has_edge(n(0), n(1)),
            "edge through the lune witness must go"
        );
        assert!(g.has_edge(n(0), n(2)));
        assert!(g.has_edge(n(2), n(1)));
    }

    #[test]
    fn mst_subset_of_rng_subset_of_gabriel() {
        // Classical containment chain: MST ⊆ RNG ⊆ Gabriel ⊆ unit-disk.
        for seed in [1, 7, 42] {
            let l = scattered(40, 100.0, seed);
            let r = 40.0;
            let mst = euclidean_mst(&l, r);
            let rng = relative_neighborhood_graph(&l, r);
            let gg = gabriel_graph(&l, r);
            let ud = unit_disk_graph(&l, r);
            assert!(mst.is_subgraph_of(&rng), "MST ⊄ RNG for seed {seed}");
            assert!(rng.is_subgraph_of(&gg), "RNG ⊄ GG for seed {seed}");
            assert!(gg.is_subgraph_of(&ud), "GG ⊄ UD for seed {seed}");
        }
    }

    #[test]
    fn rng_and_gabriel_and_mst_preserve_connectivity() {
        for seed in [3, 11, 99] {
            let l = scattered(50, 100.0, seed);
            let r = 35.0;
            let full = unit_disk_graph(&l, r);
            for (name, g) in [
                ("mst", euclidean_mst(&l, r)),
                ("rng", relative_neighborhood_graph(&l, r)),
                ("gabriel", gabriel_graph(&l, r)),
            ] {
                assert!(
                    preserves_connectivity(&g, &full),
                    "{name} broke connectivity for seed {seed}"
                );
            }
        }
    }

    #[test]
    fn mst_has_component_minus_one_edges() {
        let l = scattered(30, 50.0, 5);
        let r = 30.0;
        let full = unit_disk_graph(&l, r);
        let mst = euclidean_mst(&l, r);
        let comps = crate::traversal::component_count(&full);
        assert_eq!(mst.edge_count(), l.len() - comps);
    }

    #[test]
    fn knn_can_disconnect() {
        // Two dense pairs far apart plus k=1: the bridge edge is not anyone's
        // nearest neighbor, so k-NN loses it.
        let l = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(11.0, 0.0),
        ]);
        let full = unit_disk_graph(&l, 9.5);
        assert!(is_connected(&full));
        let knn = k_nearest_neighbors(&l, 9.5, 1);
        assert!(!is_connected(&knn));
    }

    #[test]
    fn knn_with_large_k_is_unit_disk() {
        let l = scattered(20, 50.0, 9);
        let full = unit_disk_graph(&l, 25.0);
        let knn = k_nearest_neighbors(&l, 25.0, 19);
        assert_eq!(knn, full);
    }

    #[test]
    fn empty_layout_ok() {
        let l = Layout::default();
        assert_eq!(euclidean_mst(&l, 1.0).node_count(), 0);
        assert_eq!(relative_neighborhood_graph(&l, 1.0).node_count(), 0);
        assert_eq!(gabriel_graph(&l, 1.0).node_count(), 0);
        assert_eq!(k_nearest_neighbors(&l, 1.0, 3).node_count(), 0);
        assert_eq!(minimum_energy_graph(&l, 1.0, 2.0, 0.0).node_count(), 0);
    }

    #[test]
    fn minimum_energy_equals_gabriel_for_free_space_no_overhead() {
        // Classical fact: with p(d) = d² and free relaying, a relay w beats
        // the direct edge iff d(u,w)² + d(w,v)² < d(u,v)² iff w is strictly
        // inside the circle with diameter uv — the Gabriel criterion.
        for seed in [1, 4, 9] {
            let l = scattered(35, 120.0, seed);
            let r = 60.0;
            assert_eq!(
                minimum_energy_graph(&l, r, 2.0, 0.0),
                gabriel_graph(&l, r),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn relay_overhead_keeps_more_edges() {
        // Charging for relaying makes two-hop routes less attractive, so
        // the graph with overhead is a supergraph of the free one.
        let l = scattered(30, 100.0, 7);
        let free = minimum_energy_graph(&l, 50.0, 2.0, 0.0);
        let charged = minimum_energy_graph(&l, 50.0, 2.0, 200.0);
        assert!(free.is_subgraph_of(&charged));
        assert!(charged.edge_count() >= free.edge_count());
    }

    #[test]
    fn higher_exponent_prunes_more() {
        // Steeper path loss favors relaying: n = 4 keeps at most the n = 2
        // edge set (relays only get MORE attractive for long edges), and on
        // scattered layouts strictly fewer.
        let l = scattered(40, 100.0, 3);
        let n2 = minimum_energy_graph(&l, 60.0, 2.0, 0.0);
        let n4 = minimum_energy_graph(&l, 60.0, 4.0, 0.0);
        assert!(n4.is_subgraph_of(&n2));
        assert!(n4.edge_count() < n2.edge_count());
    }

    #[test]
    fn minimum_energy_preserves_connectivity() {
        for seed in [2, 6] {
            let l = scattered(40, 110.0, seed);
            let r = 45.0;
            let full = unit_disk_graph(&l, r);
            for overhead in [0.0, 100.0] {
                let g = minimum_energy_graph(&l, r, 2.0, overhead);
                assert!(
                    preserves_connectivity(&g, &full),
                    "seed {seed}, overhead {overhead}"
                );
            }
        }
    }
}
