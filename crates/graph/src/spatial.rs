//! Uniform-grid spatial index over node positions.
//!
//! The scaling bottleneck of every construction in this repository is the
//! same query: *which nodes lie within distance `r` of a point?* The naive
//! answer scans all `n` nodes, which makes [`unit_disk_graph`] and the
//! simulator's broadcast delivery `O(n²)` — fine for the paper's 100-node
//! networks (§5), fatal at the 10⁴–10⁵ nodes the churn experiments run.
//!
//! [`SpatialGrid`] buckets node IDs by square cell of a fixed side
//! (typically the maximum radio range `R`). A disk query of radius `r ≤ R`
//! then touches at most the 3 × 3 block of cells around the center, so
//! queries cost `O(candidates)` instead of `O(n)`, and [`SpatialGrid::update`]
//! maintains the index incrementally as nodes move — the operation mobility
//! models perform millions of times.
//!
//! The index stores only IDs, never positions: the caller (who owns the
//! [`Layout`]) filters candidates by exact distance. This keeps the grid
//! impossible to de-synchronize from positions *except* through the
//! `insert`/`remove`/`update` calls themselves, which the owner performs
//! alongside its own position writes.
//!
//! [`unit_disk_graph`]: crate::unit_disk::unit_disk_graph

use std::collections::HashMap;

use cbtc_geom::Point2;

use crate::{Layout, NodeId};

/// A uniform grid over the plane bucketing node IDs by cell.
///
/// # Example
///
/// ```
/// use cbtc_geom::Point2;
/// use cbtc_graph::{Layout, NodeId, SpatialGrid};
///
/// let layout = Layout::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(30.0, 40.0),
///     Point2::new(900.0, 900.0),
/// ]);
/// let grid = SpatialGrid::from_layout(&layout, 100.0);
/// let mut hits = Vec::new();
/// grid.candidates_within(Point2::new(0.0, 0.0), 60.0, &mut hits);
/// // Candidate cells cover the query disk; the far node is never visited.
/// assert!(hits.contains(&NodeId::new(0)));
/// assert!(hits.contains(&NodeId::new(1)));
/// assert!(!hits.contains(&NodeId::new(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpatialGrid {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<NodeId>>,
    len: usize,
}

impl SpatialGrid {
    /// Creates an empty grid with square cells of side `cell`.
    ///
    /// Pick `cell` close to the dominant query radius: queries of radius
    /// `r` touch `⌈r/cell⌉ + 1` cells per axis, so a cell much smaller
    /// than `r` visits many cells and a cell much larger dilutes each
    /// bucket with far-away nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `cell` is positive and finite.
    pub fn new(cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        SpatialGrid {
            cell,
            buckets: HashMap::new(),
            len: 0,
        }
    }

    /// Builds a grid containing every node of `layout`.
    ///
    /// # Panics
    ///
    /// Panics unless `cell` is positive and finite.
    pub fn from_layout(layout: &Layout, cell: f64) -> Self {
        let mut grid = SpatialGrid::new(cell);
        for (id, p) in layout.iter() {
            grid.insert(id, p);
        }
        grid
    }

    /// The cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: Point2) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Indexes `id` at position `p`.
    ///
    /// The caller must not insert an ID that is already present (the grid
    /// does not deduplicate; a double insert would make the ID appear
    /// twice in query results until both copies are removed).
    pub fn insert(&mut self, id: NodeId, p: Point2) {
        self.buckets.entry(self.cell_of(p)).or_default().push(id);
        self.len += 1;
    }

    /// Removes `id`, which was last indexed at position `p`. Returns
    /// whether the ID was found in `p`'s cell.
    pub fn remove(&mut self, id: NodeId, p: Point2) -> bool {
        let key = self.cell_of(p);
        let Some(bucket) = self.buckets.get_mut(&key) else {
            return false;
        };
        let Some(i) = bucket.iter().position(|&x| x == id) else {
            return false;
        };
        bucket.swap_remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        self.len -= 1;
        true
    }

    /// Re-indexes `id` after it moved from `from` to `to` — the
    /// incremental-maintenance operation mobility models drive. A move
    /// within one cell is free.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not indexed at `from` (the index would silently
    /// diverge from the caller's positions otherwise).
    pub fn update(&mut self, id: NodeId, from: Point2, to: Point2) {
        if self.cell_of(from) == self.cell_of(to) {
            return;
        }
        assert!(
            self.remove(id, from),
            "node {id} is not indexed at {from}; grid out of sync with positions"
        );
        self.insert(id, to);
    }

    /// Appends to `out` every indexed ID whose cell intersects the disk of
    /// radius `radius` around `center` — a superset of the IDs within the
    /// disk. The caller filters by exact distance; `out` is appended in
    /// deterministic (cell-scan) order but not sorted.
    ///
    /// # Panics
    ///
    /// Panics unless `radius` is finite and non-negative.
    pub fn candidates_within(&self, center: Point2, radius: f64, out: &mut Vec<NodeId>) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        let (cx0, cy0) = self.cell_of(Point2::new(center.x - radius, center.y - radius));
        let (cx1, cy1) = self.cell_of(Point2::new(center.x + radius, center.y + radius));
        // When the query disk spans more cells than the grid holds nodes,
        // scanning buckets directly is cheaper than scanning empty cells.
        let span = (cx1 - cx0 + 1) as u64 * (cy1 - cy0 + 1) as u64;
        if span > self.buckets.len() as u64 {
            // Deterministic regardless of HashMap order: collect, then sort.
            let start = out.len();
            for (&(cx, cy), bucket) in &self.buckets {
                if (cx0..=cx1).contains(&cx) && (cy0..=cy1).contains(&cy) {
                    out.extend_from_slice(bucket);
                }
            }
            out[start..].sort_unstable();
            return;
        }
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }

    /// Appends to `out` every indexed ID in a cell at Chebyshev distance
    /// exactly `ring` from the cell containing `center` — the shell query
    /// underlying output-sensitive neighbor enumeration. Ring `0` is the
    /// center cell itself; ring `k ≥ 1` is the square annulus of `8k`
    /// cells around it.
    ///
    /// Scanning rings `0, 1, 2, …` enumerates candidates in roughly
    /// increasing distance: every node in a ring `> k` is at least
    /// [`SpatialGrid::ring_min_distance`]`(center, k + 1)` away, so a
    /// caller that consumes candidates nearest-first (see
    /// [`SpatialGrid::shell_scan`]) can stop as soon as its query resolves
    /// — without ever touching the farther cells.
    pub fn candidates_in_ring(&self, center: Point2, ring: u32, out: &mut Vec<NodeId>) {
        let (cx, cy) = self.cell_of(center);
        let mut take = |x: i64, y: i64| {
            if let Some(bucket) = self.buckets.get(&(x, y)) {
                out.extend_from_slice(bucket);
            }
        };
        if ring == 0 {
            take(cx, cy);
            return;
        }
        let k = i64::from(ring);
        for x in (cx - k)..=(cx + k) {
            take(x, cy - k);
            take(x, cy + k);
        }
        for y in (cy - k + 1)..=(cy + k - 1) {
            take(cx - k, y);
            take(cx + k, y);
        }
    }

    /// A lower bound on the distance from `center` to any point of any
    /// cell in ring `ring` *or beyond*: the distance from `center` to the
    /// boundary of the block of cells covered by rings `0..ring`.
    ///
    /// Monotone in `ring`; `0` for rings `0` and (when `center` sits on a
    /// cell edge) `1`.
    pub fn ring_min_distance(&self, center: Point2, ring: u32) -> f64 {
        if ring == 0 {
            return 0.0;
        }
        let (cx, cy) = self.cell_of(center);
        let k = i64::from(ring) - 1;
        let x_lo = (cx - k) as f64 * self.cell;
        let x_hi = (cx + k + 1) as f64 * self.cell;
        let y_lo = (cy - k) as f64 * self.cell;
        let y_hi = (cy + k + 1) as f64 * self.cell;
        (center.x - x_lo)
            .min(x_hi - center.x)
            .min(center.y - y_lo)
            .min(y_hi - center.y)
            .max(0.0)
    }

    /// The largest ring that can contain a node within `radius` of a
    /// center point: rings beyond `⌊radius/cell⌋ + 1` lie entirely outside
    /// the query disk.
    pub fn rings_to_cover(&self, radius: f64) -> u32 {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        ((radius / self.cell).floor() as u32).saturating_add(1)
    }

    /// Starts an expanding shell scan: candidates within `radius` of
    /// `center`, delivered ring by ring in roughly increasing distance.
    ///
    /// # Panics
    ///
    /// Panics unless `radius` is finite and non-negative.
    pub fn shell_scan(&self, center: Point2, radius: f64) -> ShellScan<'_> {
        ShellScan {
            max_ring: self.rings_to_cover(radius),
            grid: self,
            center,
            next_ring: 0,
        }
    }

    /// The IDs within exact distance `radius` of node `u` (excluding `u`
    /// itself), sorted by ID. Convenience wrapper over
    /// [`SpatialGrid::candidates_within`] + distance filtering against
    /// `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for `layout` or `radius` is invalid.
    pub fn neighbors_within(&self, layout: &Layout, u: NodeId, radius: f64) -> Vec<NodeId> {
        let center = layout.position(u);
        let r2 = radius * radius;
        let mut out = Vec::new();
        self.candidates_within(center, radius, &mut out);
        out.retain(|&v| v != u && layout.position(v).distance_squared(center) <= r2);
        out.sort_unstable();
        out
    }
}

/// An in-progress expanding shell (annulus) scan over a [`SpatialGrid`].
///
/// Created by [`SpatialGrid::shell_scan`]. Each [`ShellScan::scan_next`]
/// call appends the candidates of the next Chebyshev ring;
/// [`ShellScan::guaranteed_radius`] reports the distance below which the
/// already-scanned rings are *complete* — every indexed node closer than
/// that bound has been delivered. This is the contract the
/// output-sensitive CBTC growing phase needs: consume candidates
/// nearest-first, scan further rings only while the decision is still
/// open, and never enumerate the far side of the layout at all.
///
/// # Example
///
/// ```
/// use cbtc_geom::Point2;
/// use cbtc_graph::{Layout, SpatialGrid};
///
/// let layout = Layout::new(vec![Point2::new(5.0, 5.0), Point2::new(95.0, 5.0)]);
/// let grid = SpatialGrid::from_layout(&layout, 10.0);
/// let mut scan = grid.shell_scan(Point2::new(5.0, 5.0), 100.0);
/// let mut out = Vec::new();
/// // Ring 0 finds the co-located node; the far node waits in ring 9.
/// assert!(scan.scan_next(&mut out));
/// assert_eq!(out.len(), 1);
/// assert!(scan.guaranteed_radius() > 0.0);
/// while scan.scan_next(&mut out) {}
/// assert_eq!(out.len(), 2);
/// assert_eq!(scan.guaranteed_radius(), f64::INFINITY);
/// ```
#[derive(Debug, Clone)]
pub struct ShellScan<'g> {
    grid: &'g SpatialGrid,
    center: Point2,
    next_ring: u32,
    max_ring: u32,
}

impl ShellScan<'_> {
    /// Appends the next ring's candidates to `out`. Returns `false` once
    /// every ring intersecting the query disk has been scanned (in which
    /// case `out` is untouched).
    pub fn scan_next(&mut self, out: &mut Vec<NodeId>) -> bool {
        if self.next_ring > self.max_ring {
            return false;
        }
        self.grid
            .candidates_in_ring(self.center, self.next_ring, out);
        self.next_ring += 1;
        true
    }

    /// Every indexed node *within the query radius* and strictly closer
    /// to the center than this bound has already been delivered by
    /// [`ShellScan::scan_next`]. Infinite once the scan is exhausted (the
    /// query disk is fully covered).
    pub fn guaranteed_radius(&self) -> f64 {
        if self.next_ring > self.max_ring {
            f64::INFINITY
        } else {
            self.grid.ring_min_distance(self.center, self.next_ring)
        }
    }
}

/// A static cell list: the bulk-construction counterpart of
/// [`SpatialGrid`].
///
/// Where `SpatialGrid` hashes cells so it can grow and shrink under
/// incremental updates, `CellList` lays the node IDs of a *fixed* layout
/// out in one flat CSR array over the layout's bounding box — built with a
/// counting sort in `O(n)`, queried with contiguous row slices. Use it
/// when the whole layout is indexed once and thrown away (graph
/// construction, per-probe snapshots); use `SpatialGrid` when positions
/// mutate.
///
/// [`CellList::try_from_layout`] declines layouts whose bounding box spans
/// far more cells than there are nodes (a dense array over a sparse box
/// would waste memory); callers fall back to [`SpatialGrid`].
#[derive(Debug, Clone)]
pub struct CellList {
    cell: f64,
    min_cx: i64,
    min_cy: i64,
    cols: usize,
    rows: usize,
    /// CSR offsets, row-major over cells; `len = cols·rows + 1`.
    starts: Vec<u32>,
    /// Node IDs grouped by cell, in layout order within each cell.
    ids: Vec<NodeId>,
}

impl CellList {
    /// Builds a cell list over `layout` with square cells of side `cell`,
    /// or `None` when the bounding box is too sparse for a dense grid
    /// (more than `max(4n, 1024)` cells).
    ///
    /// # Panics
    ///
    /// Panics unless `cell` is positive and finite.
    pub fn try_from_layout(layout: &Layout, cell: f64) -> Option<CellList> {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        let cell_of = |p: Point2| -> (i64, i64) {
            ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
        };
        if layout.is_empty() {
            return Some(CellList {
                cell,
                min_cx: 0,
                min_cy: 0,
                cols: 0,
                rows: 0,
                starts: vec![0],
                ids: Vec::new(),
            });
        }
        let (mut min_cx, mut min_cy) = (i64::MAX, i64::MAX);
        let (mut max_cx, mut max_cy) = (i64::MIN, i64::MIN);
        for (_, p) in layout.iter() {
            let (cx, cy) = cell_of(p);
            min_cx = min_cx.min(cx);
            min_cy = min_cy.min(cy);
            max_cx = max_cx.max(cx);
            max_cy = max_cy.max(cy);
        }
        let cols = i128::from(max_cx) - i128::from(min_cx) + 1;
        let rows = i128::from(max_cy) - i128::from(min_cy) + 1;
        let cap = (4 * layout.len() as i128).max(1024);
        if cols * rows > cap {
            return None;
        }
        let (cols, rows) = (cols as usize, rows as usize);
        // Counting sort of node IDs into row-major cells.
        let index_of = |p: Point2| -> usize {
            let (cx, cy) = cell_of(p);
            (cy - min_cy) as usize * cols + (cx - min_cx) as usize
        };
        let mut starts = vec![0u32; cols * rows + 1];
        for (_, p) in layout.iter() {
            starts[index_of(p) + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut cursor = starts.clone();
        let mut ids = vec![NodeId::new(0); layout.len()];
        for (id, p) in layout.iter() {
            let c = index_of(p);
            ids[cursor[c] as usize] = id;
            cursor[c] += 1;
        }
        Some(CellList {
            cell,
            min_cx,
            min_cy,
            cols,
            rows,
            starts,
            ids,
        })
    }

    /// Appends to `out` every indexed ID whose cell intersects the disk of
    /// radius `radius` around `center` — same contract as
    /// [`SpatialGrid::candidates_within`].
    ///
    /// # Panics
    ///
    /// Panics unless `radius` is finite and non-negative.
    pub fn candidates_within(&self, center: Point2, radius: f64, out: &mut Vec<NodeId>) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        if self.cols == 0 {
            return;
        }
        let cx0 = (((center.x - radius) / self.cell).floor() as i64).max(self.min_cx);
        let cx1 = (((center.x + radius) / self.cell).floor() as i64)
            .min(self.min_cx + self.cols as i64 - 1);
        let cy0 = (((center.y - radius) / self.cell).floor() as i64).max(self.min_cy);
        let cy1 = (((center.y + radius) / self.cell).floor() as i64)
            .min(self.min_cy + self.rows as i64 - 1);
        for cy in cy0..=cy1 {
            if cx0 > cx1 {
                break;
            }
            // Cells of one row are consecutive in the CSR layout, so the
            // whole row span is a single contiguous slice.
            let row = (cy - self.min_cy) as usize * self.cols;
            let lo = row + (cx0 - self.min_cx) as usize;
            let hi = row + (cx1 - self.min_cx) as usize;
            out.extend_from_slice(
                &self.ids[self.starts[lo] as usize..self.starts[hi + 1] as usize],
            );
        }
    }

    /// Calls `f(u, v)` exactly once for every unordered pair at distance
    /// at most `radius`, with positions read from `layout`. Pairs are
    /// enumerated cell against forward-neighbor cell, so each candidate
    /// pair is distance-tested once — the classic cell-list sweep.
    ///
    /// # Panics
    ///
    /// Panics if `radius > cell` (the sweep only inspects adjacent cells)
    /// or `layout` does not match the indexed layout's length.
    pub fn for_each_pair_within(
        &self,
        layout: &Layout,
        radius: f64,
        mut f: impl FnMut(NodeId, NodeId),
    ) {
        assert!(
            radius <= self.cell,
            "pair sweep requires radius ≤ cell ({radius} > {})",
            self.cell
        );
        assert_eq!(layout.len(), self.ids.len(), "layout/index size mismatch");
        let r2 = radius * radius;
        let slice = |cx: i64, cy: i64| -> &[NodeId] {
            if cx < self.min_cx
                || cy < self.min_cy
                || cx >= self.min_cx + self.cols as i64
                || cy >= self.min_cy + self.rows as i64
            {
                return &[];
            }
            let c = (cy - self.min_cy) as usize * self.cols + (cx - self.min_cx) as usize;
            &self.ids[self.starts[c] as usize..self.starts[c + 1] as usize]
        };
        for cy in self.min_cy..self.min_cy + self.rows as i64 {
            for cx in self.min_cx..self.min_cx + self.cols as i64 {
                let here = slice(cx, cy);
                if here.is_empty() {
                    continue;
                }
                // Within-cell pairs.
                for (i, &u) in here.iter().enumerate() {
                    let pu = layout.position(u);
                    for &v in &here[i + 1..] {
                        if pu.distance_squared(layout.position(v)) <= r2 {
                            f(u, v);
                        }
                    }
                }
                // Cross pairs against the four forward neighbors (E, NW,
                // N, NE); the backward four were handled when those cells
                // were `here`.
                for (dx, dy) in [(1, 0), (-1, 1), (0, 1), (1, 1)] {
                    for &v in slice(cx + dx, cy + dy) {
                        let pv = layout.position(v);
                        for &u in here {
                            if layout.position(u).distance_squared(pv) <= r2 {
                                f(u, v);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(n(0), Point2::new(5.0, 5.0));
        g.insert(n(1), Point2::new(15.0, 5.0));
        assert_eq!(g.len(), 2);
        let mut out = Vec::new();
        g.candidates_within(Point2::new(5.0, 5.0), 10.0, &mut out);
        assert!(out.contains(&n(0)) && out.contains(&n(1)));
        assert!(g.remove(n(1), Point2::new(15.0, 5.0)));
        assert!(!g.remove(n(1), Point2::new(15.0, 5.0)), "already gone");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn update_moves_between_cells() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(n(0), Point2::new(5.0, 5.0));
        g.update(n(0), Point2::new(5.0, 5.0), Point2::new(95.0, 95.0));
        let mut out = Vec::new();
        g.candidates_within(Point2::new(5.0, 5.0), 1.0, &mut out);
        assert!(out.is_empty());
        g.candidates_within(Point2::new(95.0, 95.0), 1.0, &mut out);
        assert_eq!(out, vec![n(0)]);
    }

    #[test]
    fn update_within_cell_is_a_noop_on_structure() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(n(0), Point2::new(1.0, 1.0));
        g.update(n(0), Point2::new(1.0, 1.0), Point2::new(9.0, 9.0));
        let mut out = Vec::new();
        g.candidates_within(Point2::new(9.0, 9.0), 0.0, &mut out);
        assert_eq!(out, vec![n(0)]);
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn update_from_wrong_cell_panics() {
        let mut g = SpatialGrid::new(10.0);
        g.insert(n(0), Point2::new(1.0, 1.0));
        g.update(n(0), Point2::new(50.0, 50.0), Point2::new(95.0, 95.0));
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut g = SpatialGrid::new(10.0);
        // Around the origin, floor() must separate (−ε) from (+ε) cells
        // without losing points to rounding-toward-zero.
        g.insert(n(0), Point2::new(-0.5, -0.5));
        g.insert(n(1), Point2::new(0.5, 0.5));
        let mut out = Vec::new();
        g.candidates_within(Point2::new(0.0, 0.0), 1.0, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn colocated_points_share_a_bucket() {
        let mut g = SpatialGrid::new(5.0);
        for i in 0..4 {
            g.insert(n(i), Point2::new(2.0, 2.0));
        }
        let mut out = Vec::new();
        g.candidates_within(Point2::new(2.0, 2.0), 0.0, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn neighbors_within_filters_and_sorts() {
        let layout = Layout::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 4.0), // distance 5
            Point2::new(5.0, 0.0), // distance 5 (boundary: included)
            Point2::new(5.1, 0.0), // distance 5.1 (excluded)
            Point2::new(0.0, 0.0), // co-located (included)
        ]);
        let grid = SpatialGrid::from_layout(&layout, 5.0);
        assert_eq!(
            grid.neighbors_within(&layout, n(0), 5.0),
            vec![n(1), n(2), n(4)]
        );
    }

    #[test]
    fn giant_radius_does_not_scan_empty_cells() {
        // Two points, cell 1.0, query radius 1e9: the span short-circuit
        // must answer by scanning the two buckets, not 10¹⁸ cells.
        let mut g = SpatialGrid::new(1.0);
        g.insert(n(7), Point2::new(0.0, 0.0));
        g.insert(n(3), Point2::new(100.0, 100.0));
        let mut out = Vec::new();
        g.candidates_within(Point2::new(0.0, 0.0), 1e9, &mut out);
        assert_eq!(out, vec![n(3), n(7)], "bucket-scan path sorts its output");
    }

    #[test]
    #[should_panic(expected = "cell side")]
    fn zero_cell_rejected() {
        let _ = SpatialGrid::new(0.0);
    }

    fn scattered(count: usize, side: f64, seed: u64) -> Layout {
        let mut state = seed.max(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..count)
            .map(|_| Point2::new(next() * side, next() * side))
            .collect()
    }

    #[test]
    fn cell_list_matches_spatial_grid_queries() {
        let layout = scattered(120, 300.0, 5);
        let cell = 40.0;
        let list = CellList::try_from_layout(&layout, cell).expect("dense enough");
        let grid = SpatialGrid::from_layout(&layout, cell);
        for (_, center) in layout.iter().take(20) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            list.candidates_within(center, 40.0, &mut a);
            grid.candidates_within(center, 40.0, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cell_list_declines_sparse_layouts() {
        let layout = Layout::new(vec![Point2::new(0.0, 0.0), Point2::new(1e7, 1e7)]);
        assert!(CellList::try_from_layout(&layout, 1.0).is_none());
        // …but a cell size matched to the spread is fine.
        assert!(CellList::try_from_layout(&layout, 1e7).is_some());
    }

    #[test]
    fn cell_list_handles_empty_and_single_layouts() {
        let empty = CellList::try_from_layout(&Layout::default(), 5.0).unwrap();
        let mut out = Vec::new();
        empty.candidates_within(Point2::ORIGIN, 100.0, &mut out);
        assert!(out.is_empty());
        empty.for_each_pair_within(&Layout::default(), 5.0, |_, _| panic!("no pairs"));

        let one = Layout::new(vec![Point2::new(3.0, 3.0)]);
        let list = CellList::try_from_layout(&one, 5.0).unwrap();
        list.for_each_pair_within(&one, 5.0, |_, _| panic!("no pairs"));
        list.candidates_within(Point2::new(3.0, 3.0), 1.0, &mut out);
        assert_eq!(out, vec![n(0)]);
    }

    #[test]
    fn pair_sweep_matches_brute_force() {
        for seed in [1, 2, 3] {
            let layout = scattered(80, 200.0, seed);
            let radius = 35.0;
            let list = CellList::try_from_layout(&layout, radius).expect("dense enough");
            let mut pairs = Vec::new();
            list.for_each_pair_within(&layout, radius, |u, v| {
                pairs.push((u.min(v), u.max(v)));
            });
            pairs.sort_unstable();
            let before = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), before, "each pair must be visited once");
            let mut brute = Vec::new();
            let r2 = radius * radius;
            for (u, pu) in layout.iter() {
                for (v, pv) in layout.iter() {
                    if u < v && pu.distance_squared(pv) <= r2 {
                        brute.push((u, v));
                    }
                }
            }
            assert_eq!(pairs, brute, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "pair sweep requires")]
    fn pair_sweep_rejects_radius_beyond_cell() {
        let layout = Layout::new(vec![Point2::new(0.0, 0.0)]);
        let list = CellList::try_from_layout(&layout, 5.0).unwrap();
        list.for_each_pair_within(&layout, 6.0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "query radius")]
    fn nan_radius_rejected() {
        let g = SpatialGrid::new(1.0);
        let mut out = Vec::new();
        g.candidates_within(Point2::ORIGIN, f64::NAN, &mut out);
    }

    #[test]
    fn rings_partition_the_plane() {
        // Every indexed node appears in exactly one ring, and the union of
        // rings 0..=k equals the (2k+1)² cell block query.
        let layout = scattered(150, 120.0, 9);
        let grid = SpatialGrid::from_layout(&layout, 10.0);
        let center = Point2::new(60.0, 60.0);
        let mut union = Vec::new();
        for ring in 0..=12u32 {
            let before = union.len();
            grid.candidates_in_ring(center, ring, &mut union);
            // Each ring's nodes are no closer than the bound for that ring.
            let bound = grid.ring_min_distance(center, ring);
            for &v in &union[before..] {
                assert!(
                    layout.position(v).distance(center) >= bound,
                    "ring {ring} node {v} closer than bound {bound}"
                );
            }
        }
        let mut sorted = union.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), before, "rings must not overlap");
        assert_eq!(sorted.len(), 150, "rings 0..=12 cover the whole field");
    }

    #[test]
    fn ring_min_distance_is_monotone_and_anchored() {
        let grid = SpatialGrid::new(10.0);
        let on_edge = Point2::new(20.0, 5.0); // x exactly on a cell edge
        assert_eq!(grid.ring_min_distance(on_edge, 0), 0.0);
        assert_eq!(grid.ring_min_distance(on_edge, 1), 0.0, "edge point");
        let mut last = 0.0;
        for ring in 0..10 {
            let d = grid.ring_min_distance(on_edge, ring);
            assert!(d >= last, "monotone in ring");
            last = d;
        }
        // An interior point has a strictly positive ring-1 bound.
        let interior = Point2::new(23.0, 5.0);
        assert!(grid.ring_min_distance(interior, 1) > 0.0);
        assert_eq!(grid.ring_min_distance(interior, 1), 3.0);
    }

    #[test]
    fn shell_scan_delivers_everything_with_valid_guarantees() {
        let layout = scattered(200, 250.0, 3);
        let grid = SpatialGrid::from_layout(&layout, 15.0);
        let center = layout.position(n(0));
        let radius = 90.0;
        let mut scan = grid.shell_scan(center, radius);
        let mut seen = Vec::new();
        loop {
            let guaranteed = scan.guaranteed_radius();
            // Everything within the radius and closer than the guarantee
            // must already be delivered.
            for (v, p) in layout.iter() {
                let d = p.distance(center);
                if d <= radius && d < guaranteed {
                    assert!(seen.contains(&v), "node {v} at {d} missing at {guaranteed}");
                }
            }
            if !scan.scan_next(&mut seen) {
                break;
            }
        }
        assert_eq!(scan.guaranteed_radius(), f64::INFINITY);
        let mut expect: Vec<NodeId> = layout
            .iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(v, _)| v)
            .collect();
        seen.retain(|&v| layout.position(v).distance(center) <= radius);
        seen.sort_unstable();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }
}
