//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition surface this workspace's benches
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) over a simple wall-clock harness: each benchmark is
//! warmed up briefly, then timed over a fixed number of samples, and the
//! median/min per-iteration times are printed. No statistics, plots or
//! baselines — just enough to keep `cargo bench` meaningful offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks (prefix shared in the report).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An ID from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing context passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `f`, recording one sample per call batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for ≥ ~1ms per sample so timer noise stays small.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.iters_per_sample = iters;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher::default();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        eprintln!("  {name}: no samples recorded");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample.max(1) as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    eprintln!(
        "  {name}: median {} / min {} ({} samples × {} iters)",
        fmt_time(median),
        fmt_time(min),
        per_iter.len(),
        b.iters_per_sample
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3u32) * 7));
    }
}
