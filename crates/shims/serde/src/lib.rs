//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace member
//! provides the subset of serde's surface the CBTC workspace uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits, routed through a single
//!   self-describing [`Value`] tree instead of serde's visitor machinery;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   shim (non-generic structs and enums, serde's externally-tagged enum
//!   representation);
//! * [`de::DeserializeOwned`] as a bound alias.
//!
//! The companion `serde_json` shim renders [`Value`] to JSON and parses it
//! back, which is all the experiment harness needs for its artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the intermediate representation every
/// serialization passes through (mirrors `serde_json::Value`, plus
/// distinct integer variants so round-trips preserve exact values).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number (finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view as `f64` (any integer or float variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A numeric view as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// A numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Whether this is a sequence (`serde_json::Value::is_array`).
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Seq(_))
    }

    /// Whether this is a map (`serde_json::Value::is_object`).
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Map(_))
    }

    /// Looks up a key in a map value; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Map access; missing keys and non-maps index to `Null` (as in
    /// `serde_json`).
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Sequence access; out-of-bounds and non-sequences index to `Null`.
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_seq().and_then(|s| s.get(i)).unwrap_or(&NULL)
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form deserialization error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered to a [`Value`].
pub trait Serialize {
    /// Converts `self` to the intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate representation.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Bound aliases matching `serde::de`.
pub mod de {
    /// Deserializable without borrowing from the input (all shim types).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Looks up `key` in map entries and deserializes it (derive-macro helper).
pub fn map_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::custom(format!("missing field `{key}` in {ty}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "BTreeSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "tuple length mismatch: expected {expected}, got {}", seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<u32>::from_value(&s.to_value()).unwrap(), s);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let t = (1u32, -2i32, 3.5f64);
        assert_eq!(<(u32, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn value_indexing() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v["a"], Value::UInt(1));
        assert_eq!(v["missing"], Value::Null);
        assert!(Value::Seq(vec![]).is_array());
        assert!(v.is_object());
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
    }
}
