//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the serde shim's [`Value`] tree to JSON text and parses JSON
//! back into it. Floats are written with Rust's shortest round-trip
//! formatting and always carry a decimal point (or exponent), so a value
//! that left as `Float` parses back as `Float` and numeric round-trips are
//! exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Renders a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Renders a value as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Builds a [`Value`] object literal, `serde_json::json!`-style.
///
/// Supports the flat shapes the workspace uses: `json!({ "key": expr, … })`,
/// `json!([expr, …])`, and `json!(expr)`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![$($crate::to_value(&$val)),*])
    };
    ($val:expr) => {
        $crate::to_value(&$val)
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("cannot represent {f} in JSON")));
            }
            // `{:?}` is Rust's shortest round-trip form and always includes
            // a '.' or 'e', keeping the Float-ness visible to the parser.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!("expected , or ] at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected , or }} at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| Error::new("invalid UTF-8"))?
            .char_indices();
        loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| Error::new("unterminated string"))?;
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{other}`")));
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, text) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::UInt(42), "42"),
            (Value::Int(-7), "-7"),
            (Value::Float(1.5), "1.5"),
            (Value::Str("a\"b\n".into()), "\"a\\\"b\\n\""),
        ] {
            assert_eq!(to_string(&v).unwrap(), text);
            assert_eq!(from_str::<Value>(text).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_their_floatness() {
        let v = Value::Float(1500.0);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "1500.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
        // Shortest round-trip formatting is exact.
        let tricky = Value::Float(0.1 + 0.2);
        let back: Value = from_str(&to_string(&tricky).unwrap()).unwrap();
        assert_eq!(back, tricky);
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::Map(vec![
            (
                "xs".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("name".into(), Value::Str("hi".into())),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str::<Value>(&text).unwrap(), v);
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u32, 2u32), (3, 4)];
        let text = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<(u32, u32)>>(&text).unwrap(), xs);
    }

    #[test]
    fn json_macro_shapes() {
        let doc = json!({ "a": 1u32, "b": [1u32, 2u32], "c": "x" });
        assert_eq!(doc["a"], Value::UInt(1));
        assert!(doc["b"].is_array());
        let arr = json!([1u32, 2u32]);
        assert_eq!(arr[1], Value::UInt(2));
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }
}
