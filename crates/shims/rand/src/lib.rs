//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member provides the small slice of the rand 0.8 API the CBTC workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range`, `gen` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic across platforms, which is all the
//! simulation code requires. It is **not** the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12), and it is not cryptographically secure;
//! experiments seeded here are reproducible against this workspace only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample from the "standard" distribution of `T` (uniform over the
    /// value range for integers, `[0, 1)` for floats, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// Types with a canonical "standard" distribution (the shim's analogue of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one standard-distributed sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that can be sampled uniformly (the shim's analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n: usize = rng.gen_range(2usize..9);
            assert!((2..9).contains(&n));
            let m: u64 = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&m));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
