//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the sampled inputs' debug output unavailable, so tests should
//! include context in their assertion messages. Sampling is deterministic
//! per test (seeded from the test name, overridable via the
//! `PROPTEST_SEED` environment variable), which keeps CI stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The deterministic source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from a test name (stable across runs), or from
    /// `PROPTEST_SEED` when set.
    pub fn deterministic(name: &str) -> Self {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                return TestRng(StdRng::seed_from_u64(seed));
            }
        }
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single sampled case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another sample.
    Reject,
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Upper bound on rejected samples before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(64).max(1024),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the result.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy: `size` samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, …)`
/// block is run for the configured number of accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                let __strategy = ($($strat,)+);
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __config.cases {
                    let ($($pat,)+) = $crate::Strategy::sample(&__strategy, &mut __rng);
                    let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected <= __config.max_global_rejects,
                                "too many prop_assume! rejections ({} after {} accepted cases)",
                                __rejected,
                                __accepted
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion within a property (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::deterministic("strategies_sample_in_bounds");
        let s = (0.0f64..10.0).prop_map(|x| x * 2.0);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((0.0..20.0).contains(&v));
        }
        let pairs = (1usize..5).prop_flat_map(|n| collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = pairs.sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|x| *x < 10));
        }
        let j = Just(41u8);
        assert_eq!(j.sample(&mut rng), 41);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..10, 10u32..20), x in 0.0f64..1.0) {
            prop_assume!(a != 5);
            prop_assert!(a < 10);
            prop_assert!(b >= 10);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
        }
    }
}
