//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the Value-based traits of the sibling `serde` shim, without `syn` or
//! `quote` (neither is available offline). The token stream is parsed by
//! hand, which is tractable because the supported shapes are exactly what
//! this workspace uses:
//!
//! * non-generic structs with named fields → externally a map;
//! * non-generic newtype structs → transparent (the inner value);
//! * non-generic tuple structs (arity ≥ 2) → a sequence;
//! * non-generic enums with unit, tuple and struct variants → serde's
//!   externally-tagged representation (`"Variant"` or
//!   `{"Variant": payload}`).
//!
//! Generic items are rejected with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attribute sequences (doc comments included).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
                           // The bracket group (or, defensively, anything) that follows.
            self.pos += 1;
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in path)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}` \
                 (see crates/shims/serde_derive)"
            ));
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    parse_tuple_fields(g.stream())
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("expected struct or enum, found `{other}`")),
    }
}

/// Splits a field-list token stream on top-level commas, tracking `<>`
/// depth so commas inside generic arguments don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut groups: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth: i64 = 0;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    groups.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        groups.last_mut().expect("non-empty").push(tok);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let mut names = Vec::new();
    for group in split_top_level(stream) {
        let mut c = Cursor {
            tokens: group,
            pos: 0,
        };
        c.skip_attributes();
        c.skip_visibility();
        names.push(c.expect_ident()?);
    }
    Ok(Fields::Named(names))
}

fn parse_tuple_fields(stream: TokenStream) -> Fields {
    let n = split_top_level(stream).len();
    Fields::Tuple(n)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for group in split_top_level(stream) {
        let mut c = Cursor {
            tokens: group,
            pos: 0,
        };
        c.skip_attributes();
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                parse_tuple_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => map_expr(names, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), {payload})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let payload = map_expr(fnames, |f| f.to_string());
                        format!(
                            "{name}::{vname} {{ {fields} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), {payload})]),",
                            fields = fnames.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// `Value::Map(vec![("f", to_value(<accessor f>)), ...])`
fn map_expr(names: &[String], accessor: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({}))",
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                format!(
                    "let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                     if __seq.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"expected {n} elements for {name}, got {{}}\", __seq.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let fields: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("{f}: ::serde::map_field(__m, {f:?}, {name:?})?"))
                    .collect();
                format!(
                    "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                     ::std::result::Result::Ok({name} {{ {fields} }})",
                    fields = fields.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __seq = __payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                                 if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element sequence\", {name:?})); }}\n\
                                 {name}::{vname}({elems}) }}",
                                elems = elems.join(", ")
                            )
                        };
                        data_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({build}),\n"
                        ));
                    }
                    Fields::Named(fnames) => {
                        let fields: Vec<String> = fnames
                            .iter()
                            .map(|f| format!("{f}: ::serde::map_field(__mm, {f:?}, {name:?})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __mm = __payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {fields} }})\n\
                             }},\n",
                            fields = fields.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant tag\", {name:?})),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
