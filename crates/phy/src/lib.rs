//! # cbtc-phy
//!
//! A stochastic physical layer for the CBTC reproduction.
//!
//! The paper idealizes the radio as the deterministic power law
//! `p(d) = S·dⁿ`: every link inside range succeeds and concurrent
//! transmissions never collide. The paper's own structural results —
//! asymmetric-edge removal preserving connectivity (§3.2) and the
//! `α ≤ 5π/6` bound (§2) — are precisely the properties stressed when the
//! unit-disk assumption breaks; related work (Sethu & Gerety on
//! non-uniform path loss, Chu & Sethu on lifetime) shows non-ideal
//! propagation is where cone-based schemes earn or lose their guarantees.
//!
//! This crate supplies the non-ideal channel, built entirely from
//! **frozen deterministic fields** (pure functions of a seed and a link
//! identity) so every run replays bit-for-bit at any thread count:
//!
//! * [`Shadowing`] — log-normal large-scale fading, frozen per link,
//!   reciprocal or independently drawn per direction (genuinely
//!   asymmetric links);
//! * [`Fading`] — Rayleigh / Rician small-scale fading, drawn per packet;
//! * [`PrrCurve`] — the packet-reception-rate curve over SNR margin
//!   (hard ideal threshold, or a logistic transition region);
//! * [`InterferenceField`] — the SINR engine: per-slot transmissions in a
//!   spatial grid, per-receiver interference sums with a range cutoff
//!   (output-sensitive at 10⁴+ nodes);
//! * [`PhyProfile`] — the serializable description every consumer
//!   (simulator, construction, lifetime engine, benchmarks) configures
//!   itself from.
//!
//! The σ = 0 / perfect-PRR configuration ([`PhyProfile::ideal`]) is
//! **exactly** the paper's radio: every gain is the literal constant
//! `1.0` and thresholds compare identically, so the phy pipeline
//! reproduces the ideal-radio code path bit for bit — the equivalence the
//! workspace's property tests pin down.
//!
//! # Paper map
//!
//! | item | relation to the paper |
//! |------|------------------------|
//! | [`Shadowing`], [`Fading`] | beyond the paper: replaces §1's `p(d) = S·dⁿ` with a stochastic channel (Rappaport's log-normal + Rayleigh/Rician models) |
//! | [`PrrCurve`] | beyond the paper: softens §2's reception set `{v : p(d(u,v)) ≤ p}` into a delivery probability |
//! | [`InterferenceField`] | beyond the paper: §2 assumes collision-free broadcast; this adds SINR-based loss |
//! | [`PhyProfile::ideal`] | §1–§2's radio exactly (the bit-identical baseline) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fading;
pub mod hash;
mod profile;
mod prr;
mod shadowing;
mod sinr;

pub use fading::Fading;
pub use profile::{CsmaProfile, InterferenceProfile, PhyProfile, StochasticChannel};
pub use prr::PrrCurve;
pub use shadowing::{Shadowing, ShadowingMode, SHADOWING_CLAMP_SIGMAS};
pub use sinr::InterferenceField;
