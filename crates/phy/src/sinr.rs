//! The SINR interference engine: per-receiver interference sums over the
//! transmissions of one slot.
//!
//! When several nodes transmit in the same slot, each receiver sees the
//! others' energy as noise: a packet is decoded when its
//! signal-to-interference-plus-noise ratio clears the receiver threshold,
//! i.e. when `signal ≥ S + ΣI` — equivalently, interference raises the
//! effective threshold by the *relative interference* `ΣI / S`.
//!
//! [`InterferenceField`] holds the transmissions of one slot in a
//! [`SpatialGrid`] keyed by transmission index, so a receiver's sum only
//! visits transmitters within the configured interference cutoff — the
//! query stays output-sensitive at 10⁴+ nodes exactly like broadcast
//! delivery does. Energy from beyond the cutoff (bounded by
//! `reception_power(P, cutoff)` per transmitter) is ignored, the standard
//! bounded-interference approximation.

use cbtc_geom::Point2;
use cbtc_graph::{NodeId, SpatialGrid};
use cbtc_radio::{LinkGain, PathLoss, Power};

/// One registered transmission.
#[derive(Debug, Clone, Copy)]
struct Transmission {
    origin: NodeId,
    position: Point2,
    power: Power,
}

/// The concurrent transmissions of one slot, spatially indexed for
/// output-sensitive per-receiver interference queries.
///
/// The grid buckets *transmission indices* (not node IDs): a node that
/// transmits twice in one slot contributes twice, and exclusion is by
/// origin node at query time.
///
/// # Example
///
/// ```
/// use cbtc_geom::Point2;
/// use cbtc_graph::NodeId;
/// use cbtc_phy::InterferenceField;
/// use cbtc_radio::{IdealGain, Power, PowerLaw};
///
/// let model = PowerLaw::paper_default();
/// let mut field = InterferenceField::new(500.0);
/// field.register(NodeId::new(0), Point2::new(0.0, 0.0), Power::new(250_000.0));
/// field.register(NodeId::new(1), Point2::new(100.0, 0.0), Power::new(250_000.0));
///
/// // Node 1's packet at receiver node 2, 50 units away, suffers node 0's
/// // energy.
/// let rel = field.relative_interference(
///     &model, Point2::new(150.0, 0.0), NodeId::new(2), NodeId::new(1), 1000.0, &IdealGain);
/// assert!(rel > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct InterferenceField {
    grid: SpatialGrid,
    transmissions: Vec<Transmission>,
    scratch: Vec<NodeId>,
}

impl InterferenceField {
    /// Creates an empty field whose spatial index uses square cells of
    /// side `cell` (pick the dominant query radius, typically the
    /// interference cutoff or the radio range).
    ///
    /// # Panics
    ///
    /// Panics unless `cell` is positive and finite.
    pub fn new(cell: f64) -> Self {
        InterferenceField {
            grid: SpatialGrid::new(cell),
            transmissions: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of registered transmissions.
    pub fn len(&self) -> usize {
        self.transmissions.len()
    }

    /// Whether the slot holds no transmissions.
    pub fn is_empty(&self) -> bool {
        self.transmissions.is_empty()
    }

    /// Forgets all transmissions (start of a new slot). Keeps allocations.
    pub fn clear(&mut self) {
        for (i, t) in self.transmissions.iter().enumerate() {
            self.grid.remove(NodeId::new(i as u32), t.position);
        }
        self.transmissions.clear();
    }

    /// Registers a transmission by `origin` from `position` at `power`.
    pub fn register(&mut self, origin: NodeId, position: Point2, power: Power) {
        let index = NodeId::new(self.transmissions.len() as u32);
        self.grid.insert(index, position);
        self.transmissions.push(Transmission {
            origin,
            position,
            power,
        });
    }

    /// Whether any transmission by a node other than `origin` was
    /// registered within `cs_range` of `position` — the carrier-sense
    /// predicate of a listen-before-talk MAC.
    pub fn carrier_busy(&mut self, position: Point2, origin: NodeId, cs_range: f64) -> bool {
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.grid
            .candidates_within(position, cs_range, &mut candidates);
        let r2 = cs_range * cs_range;
        let busy = candidates.iter().any(|&i| {
            let t = &self.transmissions[i.index()];
            t.origin != origin && t.position.distance_squared(position) <= r2
        });
        self.scratch = candidates;
        busy
    }

    /// The relative interference `ΣI / S` seen by `receiver` (at
    /// `position`) for a packet whose wanted sender is `sender` — the sum
    /// over every other slot transmission within `cutoff` of its received
    /// power (after path loss and the interferer→receiver link gain),
    /// divided by the model's sensitivity.
    ///
    /// The receiver's own node is not excluded from the sum — if it
    /// transmitted in this slot, its own near-field energy drowns any
    /// reception, which is exactly half-duplex behaviour — only the
    /// wanted packet's sender is.
    pub fn relative_interference<M: PathLoss>(
        &mut self,
        model: &M,
        position: Point2,
        receiver: NodeId,
        sender: NodeId,
        cutoff: f64,
        gain: &dyn LinkGain,
    ) -> f64 {
        if self.transmissions.is_empty() {
            return 0.0;
        }
        let sensitivity = model
            .reception_power(model.max_power(), model.max_range())
            .linear();
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.grid
            .candidates_within(position, cutoff, &mut candidates);
        // Deterministic accumulation order regardless of grid internals.
        candidates.sort_unstable();
        let r2 = cutoff * cutoff;
        let mut sum = 0.0;
        for &i in &candidates {
            let t = &self.transmissions[i.index()];
            if t.origin == sender {
                continue;
            }
            let d2 = t.position.distance_squared(position);
            if d2 > r2 {
                continue;
            }
            let d = d2.sqrt();
            let rx = model.reception_power(t.power, d).linear();
            sum += rx * gain.link_gain(t.origin.raw() as u64, receiver.raw() as u64);
        }
        self.scratch = candidates;
        if sensitivity > 0.0 {
            sum / sensitivity
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_radio::{IdealGain, PowerLaw};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_field_is_silent() {
        let model = PowerLaw::paper_default();
        let mut f = InterferenceField::new(500.0);
        assert!(f.is_empty());
        assert_eq!(
            f.relative_interference(&model, Point2::new(0.0, 0.0), n(9), n(0), 1e4, &IdealGain),
            0.0
        );
        assert!(!f.carrier_busy(Point2::new(0.0, 0.0), n(0), 1e4));
    }

    #[test]
    fn sum_matches_brute_force() {
        let model = PowerLaw::paper_default();
        let mut f = InterferenceField::new(500.0);
        let txs = [
            (0u32, Point2::new(0.0, 0.0), 250_000.0),
            (1, Point2::new(300.0, 100.0), 90_000.0),
            (2, Point2::new(-200.0, 50.0), 40_000.0),
            (3, Point2::new(900.0, 900.0), 250_000.0),
        ];
        for &(id, p, pw) in &txs {
            f.register(n(id), p, Power::new(pw));
        }
        let receiver = Point2::new(100.0, 0.0);
        let cutoff = 5_000.0;
        let got = f.relative_interference(&model, receiver, n(8), n(1), cutoff, &IdealGain);
        let want: f64 = txs
            .iter()
            .filter(|&&(id, _, _)| id != 1)
            .map(|&(_, p, pw)| {
                model
                    .reception_power(Power::new(pw), p.distance_squared(receiver).sqrt())
                    .linear()
            })
            .sum::<f64>()
            / 1.0; // sensitivity S = 1 under the paper radio
        assert!((got - want).abs() < 1e-9 * want.max(1.0), "{got} vs {want}");
    }

    #[test]
    fn cutoff_excludes_far_transmitters() {
        let model = PowerLaw::paper_default();
        let mut f = InterferenceField::new(500.0);
        f.register(n(0), Point2::new(0.0, 0.0), Power::new(250_000.0));
        f.register(n(1), Point2::new(10_000.0, 0.0), Power::new(250_000.0));
        let rx = Point2::new(100.0, 0.0);
        let near_only = f.relative_interference(&model, rx, n(8), n(9), 1_000.0, &IdealGain);
        let with_far = f.relative_interference(&model, rx, n(8), n(9), 20_000.0, &IdealGain);
        assert!(with_far > near_only, "far transmitter must be cut off");
    }

    #[test]
    fn gain_is_evaluated_on_the_interferer_to_receiver_link() {
        /// Attenuates only links *into* node 7 by 10×.
        #[derive(Debug)]
        struct Into7Quiet;
        impl LinkGain for Into7Quiet {
            fn link_gain(&self, _from: u64, to: u64) -> f64 {
                if to == 7 {
                    0.1
                } else {
                    1.0
                }
            }
        }
        let model = PowerLaw::paper_default();
        let mut f = InterferenceField::new(500.0);
        f.register(n(0), Point2::new(0.0, 0.0), Power::new(40_000.0));
        let rx_pos = Point2::new(100.0, 0.0);
        let loud = f.relative_interference(&model, rx_pos, n(8), n(1), 1_000.0, &Into7Quiet);
        let quiet = f.relative_interference(&model, rx_pos, n(7), n(1), 1_000.0, &Into7Quiet);
        assert!(
            (quiet - loud * 0.1).abs() < 1e-12,
            "interference must pass through the interferer→receiver gain: {quiet} vs {loud}"
        );
    }

    #[test]
    fn carrier_sense_and_clear() {
        let mut f = InterferenceField::new(500.0);
        f.register(n(0), Point2::new(0.0, 0.0), Power::new(1_000.0));
        // Own transmission does not make the carrier busy for its origin.
        assert!(!f.carrier_busy(Point2::new(10.0, 0.0), n(0), 100.0));
        assert!(f.carrier_busy(Point2::new(10.0, 0.0), n(1), 100.0));
        assert!(!f.carrier_busy(Point2::new(500.0, 0.0), n(1), 100.0));
        f.clear();
        assert!(f.is_empty());
        assert!(!f.carrier_busy(Point2::new(10.0, 0.0), n(1), 100.0));
    }

    #[test]
    fn double_transmission_by_one_node_counts_twice() {
        let model = PowerLaw::paper_default();
        let mut f = InterferenceField::new(500.0);
        f.register(n(0), Point2::new(0.0, 0.0), Power::new(40_000.0));
        f.register(n(0), Point2::new(0.0, 0.0), Power::new(40_000.0));
        let rx = Point2::new(100.0, 0.0);
        let one = model.reception_power(Power::new(40_000.0), 100.0).linear();
        let got = f.relative_interference(&model, rx, n(8), n(9), 1_000.0, &IdealGain);
        assert!((got - 2.0 * one).abs() < 1e-9);
    }
}
