//! Packet-reception-rate curves: mapping SNR margin to delivery
//! probability.
//!
//! Real receivers do not cut off at a hard threshold: around sensitivity
//! there is a *transition region* (typically a few dB wide) where the
//! packet error rate climbs from ~0 to ~1. [`PrrCurve::Logistic`] models
//! that with a logistic in the dB margin, clamped to exact 0/1 outside a
//! finite band so the simulator can skip random draws for certain
//! outcomes. [`PrrCurve::Perfect`] is the paper's hard threshold and
//! reproduces the unit-disk reception set bit for bit.

use cbtc_radio::Prr;
use serde::{Deserialize, Serialize};

/// Width (in units of `width_db`) beyond which the logistic is clamped to
/// exactly 0 or 1. At ±8 widths the un-clamped logistic is within 3e-4 of
/// the clamp value.
const LOGISTIC_CLAMP_WIDTHS: f64 = 8.0;

/// A PRR curve over the received-signal-to-required-power margin.
///
/// # Example
///
/// ```
/// use cbtc_phy::PrrCurve;
/// use cbtc_radio::Prr;
///
/// let perfect = PrrCurve::Perfect;
/// assert_eq!(perfect.delivery_probability(1.0, 1.0), 1.0);
/// assert_eq!(perfect.delivery_probability(0.99, 1.0), 0.0);
///
/// let soft = PrrCurve::paper_transition();
/// let at_threshold = soft.delivery_probability(10.0, 10.0);
/// assert!(at_threshold > 0.3 && at_threshold < 0.7);
/// assert_eq!(soft.delivery_probability(1e6, 1.0), 1.0); // deep in-range
/// assert_eq!(soft.delivery_probability(1.0, 1e6), 0.0); // deep out
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrrCurve {
    /// Hard threshold: delivered iff `signal ≥ threshold` — the paper's
    /// reception set, exactly.
    Perfect,
    /// Logistic transition: `PRR = 1 / (1 + exp(-(margin_dB - midpoint) /
    /// width))` where `margin_dB = 10·log₁₀(signal / threshold)`, clamped
    /// to exact 0/1 outside ±8 widths of the midpoint.
    Logistic {
        /// The dB margin at which PRR = 0.5 (0 = at sensitivity).
        midpoint_db: f64,
        /// The transition steepness in dB (smaller = sharper).
        width_db: f64,
    },
}

impl PrrCurve {
    /// A representative soft receiver: the 50% point sits at the
    /// sensitivity threshold with a 1.5 dB-wide logistic transition —
    /// about a 10 dB span from PRR ≈ 0.01 to ≈ 0.99, matching measured
    /// low-power-radio transition regions.
    pub fn paper_transition() -> Self {
        PrrCurve::Logistic {
            midpoint_db: 0.0,
            width_db: 1.5,
        }
    }

    /// Whether the curve is the hard ideal threshold.
    pub fn is_perfect(&self) -> bool {
        matches!(self, PrrCurve::Perfect)
    }

    /// The smallest `signal / threshold` ratio at which delivery is still
    /// possible (PRR > 0) — the factor by which a spatial query must
    /// extend its reach radius beyond the deterministic range. Exactly
    /// `1.0` for [`PrrCurve::Perfect`].
    pub fn min_viable_ratio(&self) -> f64 {
        match *self {
            PrrCurve::Perfect => 1.0,
            PrrCurve::Logistic {
                midpoint_db,
                width_db,
            } => 10f64.powf((midpoint_db - LOGISTIC_CLAMP_WIDTHS * width_db) / 10.0),
        }
    }
}

impl Prr for PrrCurve {
    fn delivery_probability(&self, signal: f64, threshold: f64) -> f64 {
        match *self {
            PrrCurve::Perfect => {
                if signal >= threshold {
                    1.0
                } else {
                    0.0
                }
            }
            PrrCurve::Logistic {
                midpoint_db,
                width_db,
            } => {
                assert!(
                    width_db.is_finite() && width_db > 0.0,
                    "logistic width must be positive, got {width_db}"
                );
                if threshold <= 0.0 {
                    return 1.0;
                }
                if signal <= 0.0 {
                    return 0.0;
                }
                let margin_db = 10.0 * (signal / threshold).log10();
                let x = (margin_db - midpoint_db) / width_db;
                if x >= LOGISTIC_CLAMP_WIDTHS {
                    1.0
                } else if x <= -LOGISTIC_CLAMP_WIDTHS {
                    0.0
                } else {
                    1.0 / (1.0 + (-x).exp())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matches_unit_disk_threshold() {
        let p = PrrCurve::Perfect;
        assert_eq!(p.delivery_probability(250_000.0, 250_000.0), 1.0);
        assert_eq!(p.delivery_probability(249_999.9, 250_000.0), 0.0);
    }

    #[test]
    fn logistic_is_monotone_in_margin() {
        let p = PrrCurve::paper_transition();
        let mut last = -1.0;
        for db in -20..=20 {
            let signal = 10f64.powf(db as f64 / 10.0);
            let prr = p.delivery_probability(signal, 1.0);
            assert!(prr >= last, "PRR not monotone at {db} dB");
            last = prr;
        }
    }

    #[test]
    fn logistic_clamps_to_exact_zero_and_one() {
        let p = PrrCurve::paper_transition();
        assert_eq!(p.delivery_probability(1e9, 1.0), 1.0);
        assert_eq!(p.delivery_probability(1e-9, 1.0), 0.0);
    }

    #[test]
    fn logistic_midpoint_is_half() {
        let p = PrrCurve::Logistic {
            midpoint_db: 3.0,
            width_db: 2.0,
        };
        let signal = 10f64.powf(0.3); // +3 dB
        let prr = p.delivery_probability(signal, 1.0);
        assert!((prr - 0.5).abs() < 1e-6, "midpoint PRR {prr}");
    }

    #[test]
    fn min_viable_ratio_brackets_the_clamp() {
        assert_eq!(PrrCurve::Perfect.min_viable_ratio(), 1.0);
        let p = PrrCurve::paper_transition();
        let r = p.min_viable_ratio();
        assert!(r < 1.0);
        assert!(p.delivery_probability(r * 1.01, 1.0) > 0.0);
        assert_eq!(p.delivery_probability(r * 0.99, 1.0), 0.0);
    }

    #[test]
    fn interference_raises_the_threshold() {
        // The same signal against a 3 dB-raised threshold must fare worse.
        let p = PrrCurve::paper_transition();
        let clean = p.delivery_probability(2.0, 1.0);
        let jammed = p.delivery_probability(2.0, 2.0);
        assert!(jammed < clean);
    }
}
