//! The crate's deterministic hashing substrate.
//!
//! Every stochastic quantity in this crate — a link's frozen shadowing
//! gain, a packet's fading draw — is a *pure function* of a seed and an
//! identity tuple, never of call order. That is what makes phy runs
//! reproducible across thread counts, replay, and incremental
//! reconstruction: the "random field" is frozen at seed time and merely
//! read thereafter.

/// One SplitMix64 scramble step.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a seed with up to three identity words into one well-scrambled
/// 64-bit value.
#[inline]
pub fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = splitmix(seed ^ 0x1234_5678_9ABC_DEF0);
    z = splitmix(z ^ a.wrapping_mul(0xFF51_AFD7_ED55_8CCD));
    z = splitmix(z ^ b.wrapping_mul(0xC4CE_B9FE_1A85_EC53));
    splitmix(z ^ c.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// A uniform `f64` in `(0, 1]` from 64 hash bits (never exactly zero, so
/// it is safe under `ln`).
#[inline]
pub fn unit_open(bits: u64) -> f64 {
    (((bits >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A standard-normal sample from two hash streams (Box–Muller), clamped
/// to `±clamp` standard deviations.
///
/// The clamp keeps the derived gains within a finite band, which is what
/// lets spatial queries bound their search radius; 3.2σ truncation
/// discards well under 0.2% of the tail mass.
#[inline]
pub fn clamped_normal(bits_a: u64, bits_b: u64, clamp: f64) -> f64 {
    let u1 = unit_open(bits_a);
    let u2 = unit_open(bits_b);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.clamp(-clamp, clamp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(1, 2, 3, 4), mix(1, 2, 3, 4));
        assert_ne!(mix(1, 2, 3, 4), mix(2, 2, 3, 4));
        assert_ne!(mix(1, 2, 3, 4), mix(1, 3, 2, 4));
        assert_ne!(mix(1, 2, 3, 4), mix(1, 2, 3, 5));
    }

    #[test]
    fn unit_open_stays_in_half_open_interval() {
        for bits in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let u = unit_open(bits);
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
        }
    }

    #[test]
    fn clamped_normal_statistics() {
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| clamped_normal(mix(7, i, 0, 0), mix(7, i, 1, 0), 3.2))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| z * z).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert!(samples.iter().all(|z| z.abs() <= 3.2));
        // The clamp actually binds somewhere in a large sample's tails.
        assert!(samples.iter().any(|z| z.abs() > 2.5));
    }
}
