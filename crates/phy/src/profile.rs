//! [`PhyProfile`]: the serializable description of a physical layer.
//!
//! Every phy consumer — the discrete-event simulator, the topology
//! construction, the lifetime engine, benchmark JSON — configures itself
//! from this one plain-data struct, so a profile written into a report
//! reproduces the run exactly.

use cbtc_radio::LinkGain;
use serde::{Deserialize, Serialize};

use crate::{Fading, PrrCurve, Shadowing, ShadowingMode};

/// Interference-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceProfile {
    /// Interference cutoff as a multiple of the radio range `R`:
    /// transmitters beyond `range_factor · R` of a receiver are ignored.
    pub range_factor: f64,
}

impl Default for InterferenceProfile {
    fn default() -> Self {
        // Twice the radio range captures every interferer that can move a
        // threshold-region packet by more than a fraction of a dB.
        InterferenceProfile { range_factor: 2.0 }
    }
}

/// Slotted-CSMA (listen-before-talk) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsmaProfile {
    /// Carrier-sense range as a multiple of the radio range `R`.
    pub cs_range_factor: f64,
    /// Largest random backoff, in slots (a deferred transmission retries
    /// after `1 + uniform(0..max_backoff)` slots).
    pub max_backoff: u64,
    /// Sense attempts before transmitting regardless (broadcast beacons
    /// must eventually air).
    pub max_attempts: u32,
}

impl Default for CsmaProfile {
    fn default() -> Self {
        CsmaProfile {
            cs_range_factor: 1.0,
            max_backoff: 16,
            max_attempts: 5,
        }
    }
}

/// A complete physical-layer description.
///
/// # Example
///
/// ```
/// use cbtc_phy::PhyProfile;
/// use cbtc_radio::LinkGain;
///
/// // The ideal profile reproduces the paper's radio exactly.
/// let ideal = PhyProfile::ideal();
/// assert_eq!(ideal.channel().link_gain(1, 2), 1.0);
///
/// // A 6 dB shadowed profile has genuinely lossy, asymmetric links.
/// let rough = PhyProfile::shadowed(6.0, 42);
/// assert!(rough.channel().max_gain() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyProfile {
    /// Log-normal shadowing standard deviation in dB (0 = none).
    pub sigma_db: f64,
    /// Whether link shadowing is reciprocal or per-direction.
    pub shadowing_mode: ShadowingMode,
    /// Per-packet multipath fading model.
    pub fading: Fading,
    /// The packet-reception-rate curve.
    pub prr: PrrCurve,
    /// Seed of every frozen random field (shadowing, fading, MAC backoff,
    /// angle-of-arrival error).
    pub seed: u64,
    /// Maximum angle-of-arrival error in radians (0 = the paper's exact
    /// directional sensing). Consumers build a seeded
    /// `cbtc_radio::DirectionSensor` from this, so the per-link error
    /// field is reproducible at any thread count.
    pub aoa_error: f64,
    /// SINR interference engine; `None` = concurrent transmissions never
    /// collide (the paper's model).
    pub interference: Option<InterferenceProfile>,
    /// Slotted CSMA listen-before-talk; `None` = transmit immediately.
    pub csma: Option<CsmaProfile>,
}

impl PhyProfile {
    /// The paper's radio expressed as a phy profile: no shadowing, no
    /// fading, hard reception threshold, no interference, no MAC. Runs
    /// through the phy pipeline with this profile are **bit-identical**
    /// to runs that bypass it.
    pub fn ideal() -> Self {
        PhyProfile {
            sigma_db: 0.0,
            shadowing_mode: ShadowingMode::Reciprocal,
            fading: Fading::None,
            prr: PrrCurve::Perfect,
            seed: 0,
            aoa_error: 0.0,
            interference: None,
            csma: None,
        }
    }

    /// Shadowing only: independently drawn per direction (asymmetric
    /// links), hard threshold, no fading/interference/MAC. The profile
    /// the construction-robustness sweep uses.
    pub fn shadowed(sigma_db: f64, seed: u64) -> Self {
        PhyProfile {
            sigma_db,
            shadowing_mode: ShadowingMode::Independent,
            ..PhyProfile::ideal().with_seed(seed)
        }
    }

    /// The full stochastic stack: independent shadowing, Rician fading
    /// (K = 6), the soft PRR transition, SINR interference and slotted
    /// CSMA — the profile the protocol-overhead experiments use.
    pub fn realistic(sigma_db: f64, seed: u64) -> Self {
        PhyProfile {
            sigma_db,
            shadowing_mode: ShadowingMode::Independent,
            fading: Fading::Rician { k: 6.0 },
            prr: PrrCurve::paper_transition(),
            seed,
            aoa_error: 0.02,
            interference: Some(InterferenceProfile::default()),
            csma: Some(CsmaProfile::default()),
        }
    }

    /// The profile with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The frozen shadowing field this profile describes.
    pub fn shadowing(&self) -> Shadowing {
        Shadowing::new(self.sigma_db, self.shadowing_mode, self.seed)
    }

    /// The angle-of-arrival sensor this profile describes: exact when
    /// `aoa_error` is 0, otherwise a bounded-error sensor seeded from the
    /// profile — the one seeding rule every consumer (simulator,
    /// construction, probes) shares, so their error fields can never
    /// silently diverge.
    pub fn sensor(&self) -> cbtc_radio::DirectionSensor {
        if self.aoa_error > 0.0 {
            cbtc_radio::DirectionSensor::with_error_bound_seeded(self.aoa_error, self.seed)
        } else {
            cbtc_radio::DirectionSensor::exact()
        }
    }

    /// The combined link/packet gain channel this profile describes.
    pub fn channel(&self) -> StochasticChannel {
        StochasticChannel {
            shadowing: self.shadowing(),
            fading: self.fading,
            seed: self.seed,
        }
    }

    /// Whether this profile is exactly the ideal radio (every gain 1,
    /// hard threshold, exact bearings): the phy pipeline then reproduces
    /// the ideal path bit for bit.
    pub fn is_ideal_radio(&self) -> bool {
        self.sigma_db == 0.0
            && self.fading == Fading::None
            && self.prr.is_perfect()
            && self.aoa_error == 0.0
    }
}

/// Shadowing and fading composed behind the [`LinkGain`] interface — what
/// the simulator's delivery pipeline consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticChannel {
    shadowing: Shadowing,
    fading: Fading,
    seed: u64,
}

impl StochasticChannel {
    /// The shadowing component.
    pub fn shadowing(&self) -> &Shadowing {
        &self.shadowing
    }

    /// The fading component.
    pub fn fading(&self) -> &Fading {
        &self.fading
    }
}

impl LinkGain for StochasticChannel {
    fn link_gain(&self, from: u64, to: u64) -> f64 {
        self.shadowing.link_gain(from, to)
    }

    fn max_gain(&self) -> f64 {
        self.shadowing.max_gain()
    }

    fn packet_gain(&self, from: u64, to: u64, token: u64) -> f64 {
        self.fading.packet_gain(from, to, token, self.seed)
    }

    fn max_packet_gain(&self) -> f64 {
        self.fading.max_gain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtc_radio::Prr;

    #[test]
    fn ideal_profile_is_ideal() {
        let p = PhyProfile::ideal();
        assert!(p.is_ideal_radio());
        let ch = p.channel();
        assert_eq!(ch.link_gain(1, 2), 1.0);
        assert_eq!(ch.packet_gain(1, 2, 3), 1.0);
        assert_eq!(ch.max_gain(), 1.0);
        assert_eq!(ch.max_packet_gain(), 1.0);
        assert!(p.interference.is_none() && p.csma.is_none());
    }

    #[test]
    fn shadowed_profile_draws_asymmetric_gains() {
        let p = PhyProfile::shadowed(8.0, 5);
        assert!(!p.is_ideal_radio());
        let ch = p.channel();
        let differs = (0..50u64).any(|i| ch.link_gain(i, i + 1) != ch.link_gain(i + 1, i));
        assert!(differs);
        // Still a hard threshold.
        assert_eq!(p.prr.delivery_probability(1.0, 1.0), 1.0);
    }

    #[test]
    fn realistic_profile_has_all_stages() {
        let p = PhyProfile::realistic(6.0, 1);
        assert!(p.interference.is_some());
        assert!(p.csma.is_some());
        assert!(!p.prr.is_perfect());
        let ch = p.channel();
        assert_ne!(ch.packet_gain(1, 2, 0), ch.packet_gain(1, 2, 1));
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = PhyProfile::realistic(4.0, 9);
        let json = serde_json::to_string(&p).unwrap();
        let back: PhyProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
