//! Small-scale multipath fading: per-packet power gains.
//!
//! Where shadowing is frozen per link, multipath fading varies packet to
//! packet: the superposition of reflected paths at the receiver adds a
//! random amplitude per transmission. The two classical models:
//!
//! * **Rayleigh** — no line-of-sight component; the power gain is
//!   exponentially distributed with mean 1 (deep fades are common);
//! * **Rician(K)** — a line-of-sight path `K` times stronger than the
//!   scattered energy; as `K → ∞` the channel hardens toward the ideal.
//!
//! Draws are deterministic in `(seed, link, packet token)` so that runs
//! replay bit-for-bit; the token is supplied by the caller (the simulator
//! numbers transmissions).

use serde::{Deserialize, Serialize};

use crate::hash::{mix, unit_open};

/// Floor on any fading power gain. A true Rayleigh fade can be
/// arbitrarily deep; the floor (-40 dB) keeps logs and SINR arithmetic
/// finite without visibly distorting the distribution.
const FADING_FLOOR: f64 = 1e-4;

/// Ceiling on any fading power gain (+13 dB), the upper-tail counterpart
/// of the floor; it bounds the reach expansion a spatial query must cover.
const FADING_CEIL: f64 = 20.0;

/// A per-packet multipath fading model.
///
/// # Example
///
/// ```
/// use cbtc_phy::Fading;
///
/// let none = Fading::None;
/// assert_eq!(none.packet_gain(1, 2, 99, 0), 1.0);
///
/// let rayleigh = Fading::Rayleigh;
/// let g = rayleigh.packet_gain(1, 2, 99, 7);
/// assert!(g > 0.0);
/// assert_eq!(g, rayleigh.packet_gain(1, 2, 99, 7)); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fading {
    /// No multipath fading: every packet gain is exactly 1.
    None,
    /// Rayleigh fading: power gain `~ Exp(1)`.
    Rayleigh,
    /// Rician fading with line-of-sight factor `k ≥ 0` (`k = 0` degrades
    /// to Rayleigh; large `k` hardens toward no fading). Mean power 1.
    Rician {
        /// The K-factor: ratio of line-of-sight to scattered power.
        k: f64,
    },
}

impl Fading {
    /// The per-packet power gain of the directed link for packet `token`,
    /// drawn deterministically from `seed`.
    pub fn packet_gain(&self, from: u64, to: u64, token: u64, seed: u64) -> f64 {
        match *self {
            Fading::None => 1.0,
            Fading::Rayleigh => {
                let u = unit_open(mix(seed, from ^ (to << 32), token, 0xFAD0));
                (-u.ln()).clamp(FADING_FLOOR, FADING_CEIL)
            }
            Fading::Rician { k } => {
                assert!(k.is_finite() && k >= 0.0, "Rician K must be ≥ 0, got {k}");
                // Amplitude = |(ν + X) + iY| with ν² = K/(K+1) and
                // X, Y ~ N(0, σ²), 2σ² = 1/(K+1): mean power exactly 1.
                let nu = (k / (k + 1.0)).sqrt();
                let sigma = (0.5 / (k + 1.0)).sqrt();
                let x = sigma
                    * crate::hash::clamped_normal(
                        mix(seed, from ^ (to << 32), token, 0xFAD1),
                        mix(seed, from ^ (to << 32), token, 0xFAD2),
                        6.0,
                    );
                let y = sigma
                    * crate::hash::clamped_normal(
                        mix(seed, from ^ (to << 32), token, 0xFAD3),
                        mix(seed, from ^ (to << 32), token, 0xFAD4),
                        6.0,
                    );
                ((nu + x).powi(2) + y.powi(2)).clamp(FADING_FLOOR, FADING_CEIL)
            }
        }
    }

    /// An upper bound on [`Fading::packet_gain`].
    pub fn max_gain(&self) -> f64 {
        match self {
            Fading::None => 1.0,
            _ => FADING_CEIL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_exactly_unity() {
        assert_eq!(Fading::None.packet_gain(1, 2, 3, 4), 1.0);
        assert_eq!(Fading::None.max_gain(), 1.0);
    }

    #[test]
    fn rayleigh_mean_power_is_one() {
        let n = 20_000u64;
        let mean = (0..n)
            .map(|t| Fading::Rayleigh.packet_gain(1, 2, t, 9))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rician_hardens_with_k() {
        let spread = |fading: Fading| -> f64 {
            let n = 5_000u64;
            let samples: Vec<f64> = (0..n).map(|t| fading.packet_gain(1, 2, t, 9)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            (samples.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
        };
        let rayleigh = spread(Fading::Rayleigh);
        let rician10 = spread(Fading::Rician { k: 10.0 });
        assert!(
            rician10 < rayleigh / 2.0,
            "K=10 spread {rician10} vs Rayleigh {rayleigh}"
        );
        // Mean stays ≈ 1 regardless of K.
        let n = 10_000u64;
        let mean = (0..n)
            .map(|t| Fading::Rician { k: 5.0 }.packet_gain(1, 2, t, 9))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "Rician mean {mean}");
    }

    #[test]
    fn draws_vary_per_packet_but_replay() {
        let f = Fading::Rayleigh;
        assert_ne!(f.packet_gain(1, 2, 0, 9), f.packet_gain(1, 2, 1, 9));
        assert_eq!(f.packet_gain(1, 2, 5, 9), f.packet_gain(1, 2, 5, 9));
        assert_ne!(f.packet_gain(1, 2, 5, 9), f.packet_gain(1, 2, 5, 10));
    }

    #[test]
    fn gains_stay_inside_clamp_band() {
        for t in 0..2_000u64 {
            let g = Fading::Rayleigh.packet_gain(3, 4, t, 1);
            assert!((1e-4..=20.0).contains(&g), "gain {g}");
        }
    }
}
