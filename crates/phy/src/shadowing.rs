//! Log-normal shadowing: the frozen per-link gain field.
//!
//! Large-scale fading by obstacles multiplies each link's received power
//! by a factor that is log-normally distributed across links — the
//! standard model (Rappaport): `gain_dB ~ N(0, σ²)` with σ typically
//! 4–12 dB outdoors. Crucially the factor is *frozen*: the obstacle field
//! does not change during a run, so the gain is a deterministic function
//! of the link identity and a seed, not a per-packet draw.
//!
//! Two reciprocity modes:
//!
//! * [`ShadowingMode::Reciprocal`] — `gain(u→v) = gain(v→u)`, the
//!   physical default for a static channel (reciprocity theorem);
//! * [`ShadowingMode::Independent`] — the two directions draw
//!   independently, producing genuinely **asymmetric links**. This is the
//!   regime that stresses CBTC's asymmetric-edge-removal optimization
//!   (§3.2): a node may hear a neighbor it cannot reach back.

use cbtc_radio::LinkGain;
use serde::{Deserialize, Serialize};

use crate::hash::{clamped_normal, mix};

/// Truncation of the shadowing normal, in standard deviations. Keeps
/// every gain inside a finite band so spatial queries can bound their
/// search radius; the discarded tail mass is < 0.2%.
pub const SHADOWING_CLAMP_SIGMAS: f64 = 3.2;

/// Whether the two directions of a link share one shadowing draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShadowingMode {
    /// One draw per unordered pair: `gain(u→v) = gain(v→u)`.
    Reciprocal,
    /// Independent draws per ordered pair: links are asymmetric.
    Independent,
}

/// A frozen log-normal shadowing field over directed links.
///
/// # Example
///
/// ```
/// use cbtc_phy::{Shadowing, ShadowingMode};
/// use cbtc_radio::LinkGain;
///
/// let field = Shadowing::new(6.0, ShadowingMode::Reciprocal, 42);
/// let g = field.link_gain(3, 9);
/// assert_eq!(g, field.link_gain(9, 3)); // reciprocal
/// assert!(g > 0.0 && g <= field.max_gain());
///
/// // σ = 0 is *exactly* the ideal radio.
/// let ideal = Shadowing::new(0.0, ShadowingMode::Independent, 42);
/// assert_eq!(ideal.link_gain(3, 9), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shadowing {
    sigma_db: f64,
    mode: ShadowingMode,
    seed: u64,
}

impl Shadowing {
    /// Creates a shadowing field with standard deviation `sigma_db`
    /// (decibels) in the given reciprocity mode, frozen at `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma_db` is finite and non-negative.
    pub fn new(sigma_db: f64, mode: ShadowingMode, seed: u64) -> Self {
        assert!(
            sigma_db.is_finite() && sigma_db >= 0.0,
            "shadowing σ must be finite and non-negative, got {sigma_db}"
        );
        Shadowing {
            sigma_db,
            mode,
            seed,
        }
    }

    /// The ideal field: σ = 0, every gain exactly 1.
    pub fn ideal() -> Self {
        Shadowing::new(0.0, ShadowingMode::Reciprocal, 0)
    }

    /// The standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// The reciprocity mode.
    pub fn mode(&self) -> ShadowingMode {
        self.mode
    }

    /// The seed the field is frozen at.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shadowing deviation of the directed link in dB (the normal
    /// draw scaled by σ, before conversion to a linear gain).
    pub fn deviation_db(&self, from: u64, to: u64) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        let (a, b) = match self.mode {
            ShadowingMode::Reciprocal => (from.min(to), from.max(to)),
            ShadowingMode::Independent => (from, to),
        };
        let z = clamped_normal(
            mix(self.seed, a, b, 0x5AD0),
            mix(self.seed, a, b, 0x5AD1),
            SHADOWING_CLAMP_SIGMAS,
        );
        self.sigma_db * z
    }

    /// The smallest gain the field can produce.
    pub fn min_gain(&self) -> f64 {
        if self.sigma_db == 0.0 {
            1.0
        } else {
            10f64.powf(-self.sigma_db * SHADOWING_CLAMP_SIGMAS / 10.0)
        }
    }
}

impl LinkGain for Shadowing {
    fn link_gain(&self, from: u64, to: u64) -> f64 {
        if self.sigma_db == 0.0 {
            return 1.0;
        }
        10f64.powf(self.deviation_db(from, to) / 10.0)
    }

    fn max_gain(&self) -> f64 {
        if self.sigma_db == 0.0 {
            1.0
        } else {
            10f64.powf(self.sigma_db * SHADOWING_CLAMP_SIGMAS / 10.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_zero_is_exactly_ideal() {
        let s = Shadowing::ideal();
        for (a, b) in [(0u64, 1u64), (5, 2), (1000, 1000)] {
            assert_eq!(s.link_gain(a, b), 1.0);
        }
        assert_eq!(s.max_gain(), 1.0);
        assert_eq!(s.min_gain(), 1.0);
    }

    #[test]
    fn reciprocal_mode_is_symmetric() {
        let s = Shadowing::new(8.0, ShadowingMode::Reciprocal, 3);
        for i in 0..100u64 {
            assert_eq!(s.link_gain(i, i + 7), s.link_gain(i + 7, i));
        }
    }

    #[test]
    fn independent_mode_is_asymmetric() {
        let s = Shadowing::new(8.0, ShadowingMode::Independent, 3);
        let asymmetric = (0..100u64).filter(|&i| s.link_gain(i, i + 7) != s.link_gain(i + 7, i));
        assert!(asymmetric.count() > 90, "directions should rarely collide");
    }

    #[test]
    fn gains_respect_bounds_and_determinism() {
        let s = Shadowing::new(6.0, ShadowingMode::Independent, 11);
        for i in 0..500u64 {
            let g = s.link_gain(i, i + 1);
            assert!(g >= s.min_gain() && g <= s.max_gain(), "gain {g}");
            assert_eq!(g, s.link_gain(i, i + 1));
        }
    }

    #[test]
    fn deviation_statistics_match_sigma() {
        let sigma = 6.0;
        let s = Shadowing::new(sigma, ShadowingMode::Independent, 5);
        let n = 10_000u64;
        let devs: Vec<f64> = (0..n).map(|i| s.deviation_db(i, i + 13)).collect();
        let mean = devs.iter().sum::<f64>() / n as f64;
        let std = (devs.iter().map(|d| d * d).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.2, "mean {mean} dB");
        assert!((std - sigma).abs() < 0.2, "std {std} dB vs σ {sigma}");
    }

    #[test]
    fn seeds_select_different_fields() {
        let a = Shadowing::new(6.0, ShadowingMode::Reciprocal, 1);
        let b = Shadowing::new(6.0, ShadowingMode::Reciprocal, 2);
        assert!((0..50u64).any(|i| a.link_gain(i, i + 1) != b.link_gain(i, i + 1)));
    }

    #[test]
    #[should_panic(expected = "shadowing σ")]
    fn negative_sigma_rejected() {
        let _ = Shadowing::new(-1.0, ShadowingMode::Reciprocal, 0);
    }
}
